"""Parameter-sweep utilities for benches and characterization scripts.

Thin, dependency-free helpers that keep every bench's sweep loop
identical: run a function over a parameter grid, collect named result
columns, and render an aligned text table (the "same rows the paper
reports" output format required of the benchmark harness).

Two execution paths share one result format: :func:`sweep` is the
serial loop, :func:`run_parallel` fans the same grid out through
:class:`repro.engine.BatchExecutor` (optionally memoized through a
:class:`repro.engine.ResultCache`) and must return element-for-element
identical results — that determinism is the engine's contract and is
pinned by ``tests/engine``.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np


@dataclass
class SweepResult:
    """Columnar results of a parameter sweep."""

    parameter_name: str
    parameters: list
    columns: dict[str, list] = field(default_factory=dict)

    def column(self, name: str) -> np.ndarray:
        """One result column as an array."""
        return np.asarray(self.columns[name], dtype=float)

    def rows(self) -> list[tuple]:
        """Row tuples: (parameter, col1, col2, ...)."""
        names = list(self.columns)
        return [
            (p, *[self.columns[n][i] for n in names])
            for i, p in enumerate(self.parameters)
        ]

    def format_table(self) -> str:
        """Aligned text table of the sweep.

        Column widths adapt to the header names so long labels never run
        together.
        """
        names = list(self.columns)
        p_width = max(12, len(self.parameter_name) + 2)
        widths = [max(14, len(n) + 2) for n in names]
        header = f"{self.parameter_name:>{p_width}s}" + "".join(
            f"{n:>{w + 1}s}" for n, w in zip(names, widths)
        )
        lines = [header, "-" * len(header)]
        for i, p in enumerate(self.parameters):
            cells = [f"{p:>{p_width}.4g}" if not isinstance(p, str) else f"{p:>{p_width}s}"]
            for n, w in zip(names, widths):
                value = self.columns[n][i]
                if isinstance(value, str):
                    cells.append(f"{value:>{w}s} ")
                else:
                    cells.append(f"{value:>{w}.5g} ")
            lines.append("".join(cells))
        return "\n".join(lines)


def sweep(
    parameter_name: str,
    values: Iterable,
    evaluate: Callable[[object], Mapping[str, object]],
) -> SweepResult:
    """Evaluate ``evaluate(v)`` over values; collect dict results by key.

    Every call must return the same keys; a missing key raises
    immediately so a half-filled table never silently prints.
    """
    result = SweepResult(parameter_name=parameter_name, parameters=[])
    expected: list[str] | None = None
    for value in values:
        outcome = evaluate(value)
        if expected is None:
            expected = list(outcome)
            for key in expected:
                result.columns[key] = []
        if list(outcome) != expected:
            raise KeyError(
                f"sweep result keys changed: expected {expected}, "
                f"got {list(outcome)}"
            )
        result.parameters.append(value)
        for key in expected:
            result.columns[key].append(outcome[key])
    return result


def _collect(parameters: list, outcomes: list[Mapping], parameter_name: str) -> SweepResult:
    """Assemble ordered (parameter, mapping) pairs into a SweepResult.

    Applies the same same-keys-everywhere check as the serial loop so a
    half-filled table never silently prints.
    """
    result = SweepResult(parameter_name=parameter_name, parameters=[])
    expected: list[str] | None = None
    for value, outcome in zip(parameters, outcomes):
        if expected is None:
            expected = list(outcome)
            for key in expected:
                result.columns[key] = []
        if list(outcome) != expected:
            raise KeyError(
                f"sweep result keys changed: expected {expected}, "
                f"got {list(outcome)}"
            )
        result.parameters.append(value)
        for key in expected:
            result.columns[key].append(outcome[key])
    return result


def _cache_parameter(value):
    """The cache-key form of one grid point.

    Spec grid points are keyed by their declarative dict form
    (the :func:`repro.config.spec_hash` contract): the key captures the
    *full device description*, not the Python object, so equal specs hit
    regardless of how they were constructed.
    """
    from ..config.specs import Spec

    if isinstance(value, Spec):
        return value.to_dict()
    return value


def run_sweep_outcomes(
    values: Iterable,
    evaluate: Callable[[object], Mapping[str, object]],
    *,
    workers: int | None = None,
    backend: str = "process",
    cache=None,
    cache_extra=None,
    timeout: float | None = None,
    retry=None,
    progress=None,
    cancel=None,
) -> list:
    """Outcome-level sweep: one :class:`~repro.engine.TaskOutcome` per point.

    The JobStore-routed execution path of the service layer
    (:mod:`repro.service`): unlike :func:`run_parallel` it never raises
    on a failed point — every grid point settles as a
    :class:`~repro.engine.TaskOutcome` in grid order, cache hits marked
    ``cached=True`` (with ``retries=0`` and no executor dispatch), and
    the caller decides what a failure means.  :func:`run_parallel` is a
    thin unwrap of this function, so both paths share one cache-keying
    and dispatch implementation.

    Parameters
    ----------
    progress:
        Optional per-outcome hook (see
        :meth:`repro.engine.BatchExecutor.map`).  Also called for cache
        hits, so a job's progress feed covers every point; outcome
        indices are always *grid* indices, even for the dispatched
        subset.
    cancel:
        Optional cooperative cancellation probe, polled between tasks;
        cancelled points settle as :class:`~repro.errors.TaskCancelled`
        outcomes.  Cache hits are served even when cancellation fires
        first — a hit costs one read and keeps resumed jobs monotonic.
    """
    from ..engine import BatchExecutor, TaskOutcome

    grid = list(values)
    outcomes: list = [None] * len(grid)

    pending_indices = list(range(len(grid)))
    keys = None
    if cache is not None:
        keys = [
            cache.key_for(evaluate, _cache_parameter(v), cache_extra)
            for v in grid
        ]
        pending_indices = []
        for i, key in enumerate(keys):
            hit = cache.get(key)
            if hit is cache.MISS:
                pending_indices.append(i)
            else:
                outcomes[i] = TaskOutcome(
                    index=i, parameter=grid[i], value=hit, cached=True
                )
                if progress is not None:
                    progress(outcomes[i])

    if pending_indices:
        executor = BatchExecutor(
            workers=workers, backend=backend, timeout=timeout, retry=retry
        )

        def regrid(outcome):
            """An executor outcome re-indexed into the full grid."""
            return TaskOutcome(
                index=pending_indices[outcome.index],
                parameter=outcome.parameter,
                value=outcome.value,
                error=outcome.error,
                retries=outcome.retries,
            )

        hook = None
        if progress is not None:
            def hook(outcome):
                progress(regrid(outcome))

        batch = executor.map(
            evaluate,
            [grid[i] for i in pending_indices],
            progress=hook,
            cancel=cancel,
        )
        for outcome in batch.outcomes:
            full = regrid(outcome)
            outcomes[full.index] = full
            if cache is not None and full.ok:
                cache.put(keys[full.index], full.value)

    return outcomes


def run_parallel(
    parameter_name: str,
    values: Iterable,
    evaluate: Callable[[object], Mapping[str, object]],
    *,
    workers: int | None = None,
    backend: str = "process",
    cache=None,
    cache_extra=None,
    timeout: float | None = None,
    retry=None,
) -> SweepResult:
    """Parallel :func:`sweep`: same grid, same result, fanned out.

    Runs ``evaluate`` over ``values`` through a
    :class:`repro.engine.BatchExecutor` and returns a
    :class:`SweepResult` element-for-element identical to the serial
    :func:`sweep` (results are collected in grid order; any task error
    is re-raised exactly as the serial loop would have raised it).

    Parameters
    ----------
    workers / backend:
        Executor configuration; ``workers<=1`` degrades to the serial
        path with zero pool overhead.  The ``process`` backend needs a
        picklable ``evaluate`` (module-level function or a
        ``functools.partial`` of one).
    cache:
        Optional :class:`repro.engine.ResultCache`.  Hits skip the
        executor entirely; only the missing grid points are dispatched,
        and their results are stored back.  Keys include ``evaluate``'s
        qualified name and ``cache_extra`` (pass config objects the
        function closes over, so context changes invalidate correctly).
    timeout / retry:
        Per-task watchdog [s] and retry policy
        (:class:`repro.engine.RetryPolicy` or an int), forwarded to the
        executor: a hung point is killed, a crashed point re-dispatched
        with deterministic backoff, and only a point that *stays* dead
        after its retry budget re-raises here.
    """
    grid = list(values)
    outcomes = run_sweep_outcomes(
        grid,
        evaluate,
        workers=workers,
        backend=backend,
        cache=cache,
        cache_extra=cache_extra,
        timeout=timeout,
        retry=retry,
    )
    # re-raise the first (grid-order) task error, like the serial loop
    return _collect(grid, [o.unwrap() for o in outcomes], parameter_name)


def override_grid(base_spec, path: str, values: Iterable) -> list:
    """Specs derived from one base, ``path`` set to each of ``values``.

    The grid a spec-first sweep runs over: each point is the *entire*
    device description with exactly one dotted-path field changed.
    Invalid values fail here, eagerly, with the offending path in the
    error — not mid-sweep inside a worker process.
    """
    return [base_spec.with_overrides({path: v}) for v in values]


def run_spec_sweep(
    base_spec,
    path: str,
    values: Iterable,
    evaluate: Callable[[object], Mapping[str, object]],
    *,
    parameter_name: str | None = None,
    workers: int | None = None,
    backend: str = "process",
    cache=None,
    cache_extra=None,
    timeout: float | None = None,
    retry=None,
) -> SweepResult:
    """Sweep one dotted spec path over ``values``.

    ``evaluate`` receives the fully-overridden spec at each grid point
    (build it with :func:`repro.config.build`); the returned table's
    parameter column holds the raw swept values, so it prints exactly
    like a plain :func:`sweep`.  With a ``cache``, each point is keyed
    by the spec's dict form — the full device description — so a warm
    re-run of the same grid is 100 % hits with zero stores.
    ``timeout``/``retry`` forward to the executor (see
    :func:`run_parallel`).
    """
    raw = list(values)
    result = run_parallel(
        parameter_name if parameter_name is not None else path,
        override_grid(base_spec, path, raw),
        evaluate,
        workers=workers,
        backend=backend,
        cache=cache,
        cache_extra=cache_extra,
        timeout=timeout,
        retry=retry,
    )
    result.parameters = raw
    return result


# -- batched sweep planner ---------------------------------------------------


def plan_chunks(n_points: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` grid slices covering ``n_points``.

    The fabric's unit of leasing: a worker leases one chunk, runs its
    points as one batched kernel call, and completes or requeues it
    atomically.  Chunk boundaries never affect results — every point is
    cached under its own spec-keyed entry — so the planner is free to
    pick any partition; contiguous slices keep the store rows readable
    and the per-chunk batches shape-coherent.
    """
    if n_points < 0:
        raise ValueError(f"n_points must be >= 0, got {n_points}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (start, min(start + chunk_size, n_points))
        for start in range(0, n_points, chunk_size)
    ]


#: Pristine built-loop templates, keyed by (device spec hash).  Building
#: a loop from a spec is the dominant whole-pipeline cost of a batched
#: closed-loop sweep (mode-shape integrals, Butterworth design inside
#: auto-gain) and is a pure function of the spec — so the batch path
#: builds each distinct device once and deep-copies the never-run
#: template per evaluation.  Copies are bit-identical to fresh builds
#: (same floats, same pristine state), preserving the engine's
#: bit-exactness contract; the serial ``__call__`` path stays
#: memo-free as the reference.
_LOOP_TEMPLATES: OrderedDict[str, object] = OrderedDict()
_LOOP_TEMPLATES_LOCK = threading.Lock()
_LOOP_TEMPLATE_ENTRIES = 128


def _reset_loop_templates() -> None:
    """Drop all memoized loop templates (test isolation)."""
    with _LOOP_TEMPLATES_LOCK:
        _LOOP_TEMPLATES.clear()


def loop_headline(spec, record) -> dict:
    """Default per-point reduction of one closed-loop run.

    Module-level on purpose: the reduce function is part of the cache
    key (and must be picklable for process pools), so it needs a stable
    qualified name — closures and lambdas are rejected by
    :class:`repro.engine.ResultCache`.
    """
    return {
        "amplitude_m": record.steady_amplitude(),
        "drive_v_rms": float(np.sqrt(np.mean(np.square(record.drive_voltage)))),
    }


@dataclass(frozen=True)
class LoopSweepTask:
    """Spec -> headline-numbers task that knows how to run as one batch.

    The sweep planner of the batched kernel path: pass an instance as
    the ``evaluate`` of :func:`run_parallel`/:func:`run_spec_sweep` with
    ``backend="kernel-batch"`` and the whole pending grid is handed to
    :func:`repro.feedback.run_batch` in ONE call — specs whose loops
    lower to the same program shape (:func:`repro.engine.batch_signature`)
    share a single compiled kernel dispatch; non-lowerable specs fall
    back per instance without poisoning the batch.

    The planner composes with the cache contract for free:
    :func:`run_parallel` consults the :class:`repro.engine.ResultCache`
    *before* dispatching, so only uncached grid points ever enter the
    batch, and results fan back under the same spec-keyed entries the
    serial path writes.  A frozen dataclass (rather than a closure) so
    the task itself — duration, reduce function, backend — is part of
    each point's cache key.

    Parameters
    ----------
    duration:
        Seconds of closed-loop settling to simulate per point.
    reduce:
        ``(spec, record) -> mapping`` turning one
        :class:`~repro.feedback.LoopRecord` into table columns.  Must be
        a module-level function (cache keying + pickling).
    initial_kick:
        Initial tip displacement [m]; ``None`` uses the loop default.
    backend:
        Loop backend for solo calls and the batch (``"auto"`` resolves
        per :data:`repro.engine.AUTO_ORDER`).
    """

    duration: float
    reduce: Callable = loop_headline
    initial_kick: float | None = None
    backend: str = "auto"

    def _loop_for(self, spec):
        from ..config import build

        return build(spec).build_loop()

    def _amortized_loop_for(self, spec):
        """A fresh loop via the pristine-template memo (batch path only).

        Falls back to a plain build when the spec cannot hash or the
        template cannot deep-copy (exotic custom blocks) — amortization
        must never change which sweeps succeed.
        """
        from ..config import spec_hash

        try:
            key = spec_hash(spec)
        except Exception:  # noqa: BLE001 - unhashable spec: no memo
            return self._loop_for(spec)
        with _LOOP_TEMPLATES_LOCK:
            template = _LOOP_TEMPLATES.get(key)
            if template is not None:
                _LOOP_TEMPLATES.move_to_end(key)
        if template is None:
            loop = self._loop_for(spec)
            try:
                template = copy.deepcopy(loop)
            except Exception:  # noqa: BLE001 - uncopyable loop: no memo
                return loop
            with _LOOP_TEMPLATES_LOCK:
                _LOOP_TEMPLATES[key] = template
                while len(_LOOP_TEMPLATES) > _LOOP_TEMPLATE_ENTRIES:
                    _LOOP_TEMPLATES.popitem(last=False)
            return loop
        try:
            return copy.deepcopy(template)
        except Exception:  # noqa: BLE001 - uncopyable loop: no memo
            return self._loop_for(spec)

    def __call__(self, spec) -> Mapping[str, object]:
        """One grid point, solo — the serial/thread/process path."""
        loop = self._loop_for(spec)
        record = loop.run(self.duration, self.initial_kick, backend=self.backend)
        return self.reduce(spec, record)

    def batch_call(self, specs, threads: int | None = None) -> list[tuple]:
        """The whole grid as one batched kernel call.

        The ``BatchExecutor(backend="kernel-batch")`` protocol: returns
        one ``(value, error)`` pair per spec, in order.  Specs that fail
        to *build* are captured per instance (the batch still runs for
        the rest); specs that build but cannot *lower* are handled
        inside :func:`repro.feedback.run_batch` (per-instance reference
        fallback, reason logged and counted).
        """
        specs = list(specs)
        loops: list = [None] * len(specs)
        errors: dict[int, Exception] = {}
        for i, spec in enumerate(specs):
            try:
                loops[i] = self._amortized_loop_for(spec)
            except Exception as err:  # noqa: BLE001 - per-task capture
                errors[i] = err

        good = [i for i in range(len(specs)) if i not in errors]
        records: dict[int, object] = {}
        if good:
            from ..feedback.loop import run_batch

            batch_records = run_batch(
                [loops[i] for i in good],
                self.duration,
                initial_kick=self.initial_kick,
                backend=self.backend,
                threads=threads,
            )
            records.update(zip(good, batch_records))

        pairs: list[tuple] = []
        for i, spec in enumerate(specs):
            if i in errors:
                pairs.append((None, errors[i]))
                continue
            try:
                pairs.append((self.reduce(spec, records[i]), None))
            except Exception as err:  # noqa: BLE001 - per-task capture
                pairs.append((None, err))
        return pairs


def geometric_space(start: float, stop: float, count: int) -> np.ndarray:
    """Log-spaced grid including both endpoints."""
    if start <= 0.0 or stop <= 0.0:
        raise ValueError("geometric_space needs positive endpoints")
    return np.geomspace(start, stop, count)
