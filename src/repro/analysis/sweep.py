"""Parameter-sweep utilities for benches and characterization scripts.

Thin, dependency-free helpers that keep every bench's sweep loop
identical: run a function over a parameter grid, collect named result
columns, and render an aligned text table (the "same rows the paper
reports" output format required of the benchmark harness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np


@dataclass
class SweepResult:
    """Columnar results of a parameter sweep."""

    parameter_name: str
    parameters: list
    columns: dict[str, list] = field(default_factory=dict)

    def column(self, name: str) -> np.ndarray:
        """One result column as an array."""
        return np.asarray(self.columns[name], dtype=float)

    def rows(self) -> list[tuple]:
        """Row tuples: (parameter, col1, col2, ...)."""
        names = list(self.columns)
        return [
            (p, *[self.columns[n][i] for n in names])
            for i, p in enumerate(self.parameters)
        ]

    def format_table(self) -> str:
        """Aligned text table of the sweep.

        Column widths adapt to the header names so long labels never run
        together.
        """
        names = list(self.columns)
        p_width = max(12, len(self.parameter_name) + 2)
        widths = [max(14, len(n) + 2) for n in names]
        header = f"{self.parameter_name:>{p_width}s}" + "".join(
            f"{n:>{w + 1}s}" for n, w in zip(names, widths)
        )
        lines = [header, "-" * len(header)]
        for i, p in enumerate(self.parameters):
            cells = [f"{p:>{p_width}.4g}" if not isinstance(p, str) else f"{p:>{p_width}s}"]
            for n, w in zip(names, widths):
                value = self.columns[n][i]
                if isinstance(value, str):
                    cells.append(f"{value:>{w}s} ")
                else:
                    cells.append(f"{value:>{w}.5g} ")
            lines.append("".join(cells))
        return "\n".join(lines)


def sweep(
    parameter_name: str,
    values: Iterable,
    evaluate: Callable[[object], Mapping[str, object]],
) -> SweepResult:
    """Evaluate ``evaluate(v)`` over values; collect dict results by key.

    Every call must return the same keys; a missing key raises
    immediately so a half-filled table never silently prints.
    """
    result = SweepResult(parameter_name=parameter_name, parameters=[])
    expected: list[str] | None = None
    for value in values:
        outcome = evaluate(value)
        if expected is None:
            expected = list(outcome)
            for key in expected:
                result.columns[key] = []
        if list(outcome) != expected:
            raise KeyError(
                f"sweep result keys changed: expected {expected}, "
                f"got {list(outcome)}"
            )
        result.parameters.append(value)
        for key in expected:
            result.columns[key].append(outcome[key])
    return result


def geometric_space(start: float, stop: float, count: int) -> np.ndarray:
    """Log-spaced grid including both endpoints."""
    if start <= 0.0 or stop <= 0.0:
        raise ValueError("geometric_space needs positive endpoints")
    return np.geomspace(start, stop, count)
