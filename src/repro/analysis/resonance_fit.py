"""Resonance-curve measurement and fitting (open-loop characterization).

Before the Fig. 5 loop is closed, a real bring-up measures the
cantilever's response curve: drive the coil with tones across a span,
record the bridge amplitude at each, and fit the driven-oscillator
magnitude

    |H(f)| = A f0^2 / sqrt((f0^2 - f^2)^2 + (f f0 / Q)^2)

to extract ``f0`` and ``Q``.  This module provides both halves: the
swept-sine measurement (on any force-to-displacement resonator model)
and the non-linear least-squares fit, cross-validated in the tests
against the ring-down estimator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from ..errors import ConvergenceError, SignalError
from ..mechanics.dynamics import ModalResonator
from ..units import require_positive


@dataclass(frozen=True)
class ResonanceFit:
    """Result of a Lorentzian fit to a measured response curve."""

    frequency: float
    quality_factor: float
    peak_amplitude: float
    residual_rms: float


def _magnitude_model(f, f0, q, a):
    return (
        a * f0**2 / np.sqrt((f0**2 - f**2) ** 2 + (f * f0 / q) ** 2)
    )


def fit_resonance(
    frequencies: np.ndarray, amplitudes: np.ndarray
) -> ResonanceFit:
    """Fit ``f0``, ``Q``, and the drive scale to a measured magnitude curve.

    Initial guesses come from the peak location and the half-power
    width, so the fit converges from any reasonable sweep.

    Raises
    ------
    ConvergenceError
        If the optimizer fails or returns unphysical parameters.
    """
    f = np.asarray(frequencies, dtype=float)
    a = np.asarray(amplitudes, dtype=float)
    if f.shape != a.shape or len(f) < 5:
        raise SignalError("need matching arrays of at least 5 sweep points")
    if np.any(a < 0.0):
        raise SignalError("amplitudes must be non-negative")

    i_peak = int(np.argmax(a))
    f0_guess = float(f[i_peak])
    peak = float(a[i_peak])
    half = peak / math.sqrt(2.0)
    above = f[a >= half]
    width = float(above[-1] - above[0]) if len(above) >= 2 else f0_guess / 10.0
    q_guess = max(0.6, f0_guess / max(width, 1e-12))

    try:
        popt, _ = curve_fit(
            _magnitude_model,
            f,
            a,
            p0=(f0_guess, q_guess, peak / q_guess),
            maxfev=20000,
        )
    except RuntimeError as exc:
        raise ConvergenceError(f"resonance fit failed: {exc}") from exc

    f0, q, scale = (float(v) for v in popt)
    q = abs(q)
    if not (0.0 < f0 < 2.0 * f.max()) or q <= 0.0:
        raise ConvergenceError(
            f"resonance fit returned unphysical parameters f0={f0}, Q={q}"
        )
    residuals = a - _magnitude_model(f, f0, q, scale)
    return ResonanceFit(
        frequency=f0,
        quality_factor=q,
        peak_amplitude=float(_magnitude_model(np.asarray([f0]), f0, q, scale)[0]),
        residual_rms=float(np.sqrt(np.mean(residuals**2))),
    )


def _swept_sine_batched(
    resonator: ModalResonator,
    f: np.ndarray,
    force_amplitude: float,
    settle_cycles: float,
    measure_cycles: float,
    threads: int | None,
) -> np.ndarray:
    """All tones of a swept-sine measurement as ONE batched kernel call.

    Each tone becomes an open-loop kernel instance: the force waveform
    enters through the noise slot (``coef = 0`` so the bridge node *is*
    the force sample, exactly), the actuator is the identity
    (``R = 1 Ohm``, no current limit, ``1 N/A``), and the mode update is
    the very arithmetic of :meth:`ModalResonator.step` — so every
    displacement waveform is bit-identical to the per-sample Python
    drive, which the golden suite pins.  Raises
    :class:`~repro.errors.LoweringError` for subclassed/patched
    resonators (the caller falls back to the Python loop).
    """
    from ..engine.kernel import FusedLoopKernel, KernelBatch
    from ..feedback.loop import lower_resonator_mode

    h = resonator.timestep
    kernels, ns, forces, n_settles = [], [], [], []
    for fi in f:
        resonator.reset()
        mode = lower_resonator_mode(resonator, 0.0)
        kernels.append(FusedLoopKernel(
            pre_stages=[], limiter_stages=[], buffer_stages=[],
            modes=[mode],
            act_r=1.0, act_imax=math.inf, act_fpc=1.0,
            include_taps=False,
        ))
        n_settle = max(1, int(round(settle_cycles / (fi * h))))
        n_measure = max(2, int(round(measure_cycles / (fi * h))))
        t = np.arange(n_settle + n_measure) * h
        forces.append(force_amplitude * np.sin(2.0 * math.pi * fi * t))
        ns.append(n_settle + n_measure)
        n_settles.append(n_settle)

    results = KernelBatch(kernels, ns, forces).run(threads=threads)
    amplitudes = np.empty(len(f))
    for i, result in enumerate(results):
        steady = result.displacement[n_settles[i]:]
        amplitudes[i] = math.sqrt(2.0) * float(np.std(steady))
    resonator.reset()
    return amplitudes


def swept_sine_response(
    resonator: ModalResonator,
    frequencies: np.ndarray,
    force_amplitude: float,
    settle_cycles: float = None,
    measure_cycles: float = 40.0,
    backend: str = "auto",
    threads: int | None = None,
) -> np.ndarray:
    """Measure the steady-state amplitude at each drive frequency [m].

    Drives the time-domain resonator with a tone, waits several decay
    times, and reads the rms amplitude — exactly the bring-up experiment,
    run on the model.

    ``backend="auto"`` (default) runs all tones as one batched kernel
    call (bit-identical to the per-sample drive, ~10-40x faster);
    ``backend="reference"`` forces the per-sample Python path.
    Resonators the kernel cannot prove equivalent (subclassed or
    patched ``step``) fall back to the reference path with the reason
    logged and counted.
    """
    require_positive("force_amplitude", force_amplitude)
    f = np.asarray(frequencies, dtype=float)
    h = resonator.timestep
    if settle_cycles is None:
        settle_cycles = 8.0 * resonator.quality_factor

    if backend != "reference" and len(f):
        from ..engine.kernel import resolve_backend, record_fallback
        from ..errors import LoweringError

        if resolve_backend(backend) != "reference":
            try:
                return _swept_sine_batched(
                    resonator, f, force_amplitude,
                    settle_cycles, measure_cycles, threads,
                )
            except LoweringError as err:
                record_fallback(str(err))

    amplitudes = np.empty(len(f))
    for i, fi in enumerate(f):
        resonator.reset()
        n_settle = max(1, int(round(settle_cycles / (fi * h))))
        n_measure = max(2, int(round(measure_cycles / (fi * h))))
        t = np.arange(n_settle + n_measure) * h
        force = force_amplitude * np.sin(2.0 * math.pi * fi * t)
        x = resonator.run(force)
        steady = x[n_settle:]
        amplitudes[i] = math.sqrt(2.0) * float(np.std(steady))
    resonator.reset()
    return amplitudes


def measure_resonance(
    resonator: ModalResonator,
    span_factor: float = 0.4,
    points: int = 41,
    force_amplitude: float = 1e-9,
    backend: str = "auto",
) -> ResonanceFit:
    """Full bring-up: sweep around the expected resonance and fit.

    The sweep is centred on the resonator's (possibly mistuned) nominal
    frequency with a fractional span wide enough to capture the skirt.
    ``backend`` selects the swept-sine execution path (see
    :func:`swept_sine_response`); the batched default is bit-identical.
    """
    require_positive("span_factor", span_factor)
    if points < 7:
        raise SignalError("a resonance sweep needs at least 7 points")
    f0 = resonator.natural_frequency
    frequencies = np.linspace(
        f0 * (1.0 - span_factor), f0 * (1.0 + span_factor), points
    )
    amplitudes = swept_sine_response(
        resonator, frequencies, force_amplitude, backend=backend
    )
    return fit_resonance(frequencies, amplitudes)
