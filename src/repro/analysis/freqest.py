"""Frequency estimators for oscillator waveforms.

The on-chip readout is the digital counter
(:mod:`repro.circuits.counter`); offline analysis wants better
estimators for the same records: interpolated zero-crossing averaging
and FFT-peak with parabolic interpolation.  Cross-checking all three on
the same waveform is how the tests pin the loop's oscillation frequency.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuits.counter import comparator_edges
from ..circuits.signal import Signal
from ..errors import SignalError


def zero_crossing_frequency(signal: Signal, hysteresis: float = 0.0) -> float:
    """Mean frequency from interpolated rising zero crossings [Hz].

    Uses the comparator model of the counter but averages *all* periods,
    so the quantization is set by edge interpolation rather than gate
    counting.
    """
    edges = comparator_edges(signal, threshold=0.0, hysteresis=hysteresis)
    if len(edges) < 2:
        raise SignalError("fewer than two rising edges; cannot estimate frequency")
    return float((len(edges) - 1) / (edges[-1] - edges[0]))


def fft_peak_frequency(signal: Signal, window: str = "hann") -> float:
    """Frequency of the dominant spectral line, parabolic-interpolated [Hz].

    Windowed FFT plus a three-point parabolic fit on the log magnitude
    around the peak bin; resolves far below the bin spacing for a clean
    tone.
    """
    x = signal.samples - np.mean(signal.samples)
    n = len(x)
    if n < 8:
        raise SignalError("signal too short for spectral estimation")
    if window == "hann":
        x = x * np.hanning(n)
    elif window != "none":
        raise SignalError(f"unknown window {window!r}")

    spectrum = np.abs(np.fft.rfft(x))
    k = int(np.argmax(spectrum[1:])) + 1  # skip DC
    if k == 0 or k >= len(spectrum) - 1:
        raise SignalError("spectral peak at the edge of the band")

    s_m, s_0, s_p = spectrum[k - 1], spectrum[k], spectrum[k + 1]
    if s_m <= 0.0 or s_0 <= 0.0 or s_p <= 0.0:
        delta = 0.0
    else:
        lm, l0, lp = math.log(s_m), math.log(s_0), math.log(s_p)
        denominator = lm - 2.0 * l0 + lp
        delta = 0.0 if denominator == 0.0 else 0.5 * (lm - lp) / denominator
    return (k + delta) * signal.sample_rate / n


def ring_down_quality_factor(signal: Signal, frequency: float) -> float:
    """Q from the exponential decay of a ring-down record.

    Fits ``ln(envelope)`` vs time; ``Q = pi f tau``.  The envelope is the
    per-cycle peak amplitude.
    """
    env = signal.amplitude_envelope(window_cycles=1.0, frequency=frequency)
    if len(env) < 4:
        raise SignalError("too few cycles for a ring-down fit")
    # keep the clean part of the decay (above 5 % of the start)
    mask = env > 0.05 * env[0]
    env = env[mask]
    if len(env) < 4:
        raise SignalError("decay too fast for a ring-down fit")
    t = np.arange(len(env)) / frequency
    slope = np.polyfit(t, np.log(env), 1)[0]
    if slope >= 0.0:
        raise SignalError("envelope is not decaying; not a ring-down record")
    tau = -1.0 / slope
    return math.pi * frequency * tau
