"""Sensor calibration: responsivity, noise floor, limit of detection.

The quantities a biosensor datasheet reports, computed from the models:

* **static responsivity** — output volts per N/m of surface stress (and
  per molar analyte concentration at the assay operating point);
* **resonant responsivity** — Hz per kg (and Hz per nM);
* **noise floor** — rms output noise in the measurement band;
* **limit of detection** — 3-sigma noise divided by responsivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..biochem.analytes import Analyte
from ..biochem.functionalization import FunctionalizedSurface
from ..units import require_positive


@dataclass(frozen=True)
class DetectionLimit:
    """Limit-of-detection summary for one sensor configuration."""

    responsivity: float
    noise_rms: float
    lod: float
    units: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return (
            f"responsivity {self.responsivity:.4g}, noise {self.noise_rms:.4g}, "
            f"LOD {self.lod:.4g} [{self.units}]"
        )


def limit_of_detection(
    responsivity: float, noise_rms: float, units: str, sigma: float = 3.0
) -> DetectionLimit:
    """``LOD = sigma * noise / |responsivity|``."""
    if responsivity == 0.0:
        raise ValueError("zero responsivity cannot detect anything")
    require_positive("noise_rms", noise_rms) if noise_rms else None
    return DetectionLimit(
        responsivity=responsivity,
        noise_rms=noise_rms,
        lod=sigma * noise_rms / abs(responsivity),
        units=units,
    )


def concentration_responsivity(
    surface: FunctionalizedSurface,
    per_coverage_responsivity: float,
    operating_concentration: float,
) -> float:
    """Small-signal output change per unit concentration change.

    Chains the sensor's per-coverage responsivity (output per unit theta,
    e.g. volts or hertz) through the slope of the Langmuir isotherm at
    the operating concentration:
    ``d theta / dC = K_D / (C + K_D)^2``.
    """
    analyte = surface.analyte
    kd = analyte.dissociation_constant
    slope = kd / (operating_concentration + kd) ** 2
    return per_coverage_responsivity * slope


def coverage_lod_to_concentration(
    coverage_lod: float, analyte: Analyte
) -> float:
    """Concentration [molecules/m^3] producing an equilibrium coverage
    equal to a coverage LOD.

    Inverts the Langmuir isotherm: ``C = K_D theta / (1 - theta)``.
    """
    if not 0.0 < coverage_lod < 1.0:
        raise ValueError("coverage LOD must lie strictly inside (0, 1)")
    return analyte.dissociation_constant * coverage_lod / (1.0 - coverage_lod)


def snr_db(signal_rms: float, noise_rms: float) -> float:
    """Signal-to-noise ratio in dB."""
    require_positive("signal_rms", signal_rms)
    require_positive("noise_rms", noise_rms)
    return 20.0 * math.log10(signal_rms / noise_rms)
