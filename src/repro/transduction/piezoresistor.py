"""Diffused piezoresistors — the bridge elements of the static system.

The static cantilever's Wheatstone bridge uses p-type diffusion resistors
in the crystalline-silicon beam.  Their resistance responds to in-plane
mechanical stress through the piezoresistive coefficients of silicon
(:mod:`repro.materials.silicon`) and to temperature through a TCR; both
enter the readout error budget.

Carrier count (for 1/f noise, see :mod:`repro.transduction.noise`) is
estimated from the diffusion geometry and doping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..materials.silicon import PiezoCoefficients, piezo_coefficients
from ..units import require_positive, require_nonnegative


@dataclass(frozen=True)
class DiffusedResistor:
    """A p-diffusion piezoresistor.

    Parameters
    ----------
    nominal_resistance:
        Resistance at zero stress and reference temperature [Ohm].
    coefficients:
        Longitudinal/transverse piezoresistive coefficients; defaults to
        <110> p-type silicon, the standard CMOS layout orientation.
    tcr:
        Temperature coefficient of resistance [1/K]; p-diffusions are a
        few 1e-3/K, which is why bridges (ratiometric) beat single
        resistors for static sensing.
    length / width / junction_depth:
        Diffusion geometry [m], used for the carrier-count estimate.
    doping:
        Acceptor concentration [1/m^3].
    """

    nominal_resistance: float
    coefficients: PiezoCoefficients = field(
        default_factory=lambda: piezo_coefficients("<110>", "p")
    )
    tcr: float = 2.5e-3
    length: float = 40e-6
    width: float = 4e-6
    junction_depth: float = 0.6e-6
    doping: float = 1e24

    def __post_init__(self) -> None:
        require_positive("nominal_resistance", self.nominal_resistance)
        require_positive("length", self.length)
        require_positive("width", self.width)
        require_positive("junction_depth", self.junction_depth)
        require_positive("doping", self.doping)

    @property
    def carrier_count(self) -> float:
        """Total free carriers in the resistor body (for Hooge 1/f noise)."""
        volume = self.length * self.width * self.junction_depth
        return self.doping * volume

    def fractional_change(
        self,
        sigma_longitudinal: float,
        sigma_transverse: float = 0.0,
        delta_temperature: float = 0.0,
    ) -> float:
        """``dR/R`` for in-plane stress [Pa] and temperature change [K]."""
        return (
            self.coefficients.fractional_resistance_change(
                sigma_longitudinal, sigma_transverse
            )
            + self.tcr * delta_temperature
        )

    def resistance(
        self,
        sigma_longitudinal: float = 0.0,
        sigma_transverse: float = 0.0,
        delta_temperature: float = 0.0,
    ) -> float:
        """Resistance [Ohm] under stress and temperature offset."""
        return self.nominal_resistance * (
            1.0
            + self.fractional_change(
                sigma_longitudinal, sigma_transverse, delta_temperature
            )
        )

    def power_dissipation(self, bias_voltage: float) -> float:
        """Static power [W] with the full bias across this element."""
        require_nonnegative("bias_voltage", bias_voltage)
        return bias_voltage**2 / self.nominal_resistance


def sheet_resistance_to_resistance(
    sheet_resistance: float, squares: float
) -> float:
    """Resistance of a diffusion of given sheet rho [Ohm/sq] and square count.

    A 0.8 um CMOS p-base diffusion runs ~1-2 kOhm/sq, so a practical
    bridge resistor of 10 kOhm needs only ~10 squares — small enough to
    fit four of them at the cantilever clamp.
    """
    require_positive("sheet_resistance", sheet_resistance)
    require_positive("squares", squares)
    return sheet_resistance * squares
