"""Electrical noise of bridge elements: Johnson and Hooge/flicker models.

Two noise mechanisms set the resolution of a piezoresistive readout:

* **Johnson (thermal) noise** — white, ``S_v = 4 k_B T R`` [V^2/Hz].
* **Flicker (1/f) noise** — Hooge's empirical law for a resistor carrying
  a DC bias: ``S_v(f) = alpha_H V^2 / (N f)`` with ``N`` the number of
  free carriers and ``alpha_H`` the (material-quality) Hooge parameter.

MOS-channel resistors have far fewer carriers than diffusions of the
same resistance, so their 1/f corner sits orders of magnitude higher —
the quantitative content behind the paper's "high-pass filters in the
feedback loop improve the signal-to-noise ratio by damping the
low-frequency noise originating in the MOS-based Wheatstone bridge".
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import BOLTZMANN, ROOM_TEMPERATURE
from ..units import require_positive, require_nonnegative

#: Default Hooge parameters: diffused resistors in good crystalline
#: silicon versus surface-channel MOS devices (trap-rich Si/SiO2
#: interface).  Representative literature orders of magnitude.
HOOGE_ALPHA_DIFFUSED: float = 2e-6
HOOGE_ALPHA_MOS: float = 2e-4


def johnson_psd(resistance: float, temperature: float = ROOM_TEMPERATURE) -> float:
    """One-sided thermal-noise voltage PSD ``4 k T R`` [V^2/Hz]."""
    require_positive("resistance", resistance)
    require_positive("temperature", temperature)
    return 4.0 * BOLTZMANN * temperature * resistance


def hooge_psd(
    bias_voltage: float,
    carrier_count: float,
    frequency: np.ndarray,
    hooge_alpha: float,
) -> np.ndarray:
    """One-sided 1/f voltage PSD ``alpha V^2 / (N f)`` [V^2/Hz]."""
    require_nonnegative("bias_voltage", bias_voltage)
    require_positive("carrier_count", carrier_count)
    require_nonnegative("hooge_alpha", hooge_alpha)
    f = np.asarray(frequency, dtype=float)
    if np.any(f <= 0.0):
        raise ValueError("frequencies must be positive for a 1/f PSD")
    return hooge_alpha * bias_voltage**2 / (carrier_count * f)


def element_noise_psd(
    resistance: float,
    bias_voltage: float,
    carrier_count: float,
    frequency: np.ndarray,
    hooge_alpha: float,
    temperature: float = ROOM_TEMPERATURE,
) -> np.ndarray:
    """Total (Johnson + 1/f) voltage PSD of one biased resistor [V^2/Hz]."""
    return johnson_psd(resistance, temperature) + hooge_psd(
        bias_voltage, carrier_count, frequency, hooge_alpha
    )


def corner_frequency(
    resistance: float,
    bias_voltage: float,
    carrier_count: float,
    hooge_alpha: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """1/f corner: frequency where flicker equals thermal noise [Hz]."""
    if bias_voltage == 0.0 or hooge_alpha == 0.0:
        return 0.0
    return (
        hooge_alpha
        * bias_voltage**2
        / (carrier_count * johnson_psd(resistance, temperature))
    )


def integrate_psd(psd: np.ndarray, frequency: np.ndarray) -> float:
    """RMS value [V] of a one-sided PSD integrated over its frequency grid."""
    f = np.asarray(frequency, dtype=float)
    p = np.asarray(psd, dtype=float)
    if f.shape != p.shape:
        raise ValueError("psd and frequency grids must have the same shape")
    return math.sqrt(float(np.trapezoid(p, f)))


def rms_in_band(
    resistance: float,
    bias_voltage: float,
    carrier_count: float,
    hooge_alpha: float,
    f_low: float,
    f_high: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """Closed-form rms noise [V] of one element over [f_low, f_high].

    Thermal part integrates to ``4kTR (f_high - f_low)``; the 1/f part to
    ``alpha V^2 / N * ln(f_high / f_low)``.
    """
    require_positive("f_low", f_low)
    if f_high <= f_low:
        raise ValueError("f_high must exceed f_low")
    thermal = johnson_psd(resistance, temperature) * (f_high - f_low)
    flicker = (
        hooge_alpha * bias_voltage**2 / carrier_count * math.log(f_high / f_low)
    )
    return math.sqrt(thermal + flicker)
