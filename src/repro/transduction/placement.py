"""Bridge placement along the cantilever (paper, Section 3).

"The piezoresistive Wheatstone bridge for the readout of the resonant
oscillation is placed on the clamped edge of the cantilever, where the
maximum mechanical stress is induced.  In case of the static system this
measurement bridge is distributed over the cantilever length and covers
a larger area."

This module quantifies that design choice.  The two operating modes
produce different longitudinal surface-stress profiles:

* **static (surface stress)** — uniform curvature, hence *uniform*
  surface stress along the beam: a distributed bridge loses no signal
  and its larger diffusion area lowers 1/f noise (more carriers).
* **resonant (mode-1 vibration)** — stress follows the mode curvature
  ``phi''(x)``, maximal at the clamp and zero at the tip: a bridge at
  the clamped edge captures the peak; distributing it would average the
  signal down.

``bridge_average_stress`` integrates either profile over the bridge
extent, so benches can sweep placement and reproduce the paper's choice
as the optimum of each mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError
from ..mechanics.geometry import CantileverGeometry
from ..mechanics.modal import eigenvalue, mode_shape_coefficient
from ..mechanics.surface_stress import surface_bending_stress
from ..units import require_fraction


def mode_curvature(mode: int, xi: np.ndarray) -> np.ndarray:
    """Second derivative of the tip-normalized mode shape w.r.t. xi.

    ``phi''(xi) = lambda^2 [cosh + cos - sigma (sinh + sin)](lambda xi)``,
    scaled by the tip-normalization of the mode shape.
    """
    lam = eigenvalue(mode)
    sig = mode_shape_coefficient(mode)
    xi = np.asarray(xi, dtype=float)
    if np.any(xi < -1e-12) or np.any(xi > 1.0 + 1e-12):
        raise GeometryError("normalized position must lie in [0, 1]")
    arg = lam * np.clip(xi, 0.0, 1.0)
    raw = lam**2 * (np.cosh(arg) + np.cos(arg) - sig * (np.sinh(arg) + np.sin(arg)))
    # tip normalization of phi itself
    tip = (
        math.cosh(lam) - math.cos(lam) - sig * (math.sinh(lam) - math.sin(lam))
    )
    return raw / tip


def resonant_surface_stress_profile(
    geometry: CantileverGeometry, tip_amplitude: float, xi: np.ndarray, mode: int = 1
) -> np.ndarray:
    """Longitudinal top-surface stress [Pa] along the beam at peak deflection.

    For tip amplitude ``a``, the local curvature is
    ``kappa(x) = a phi''(xi) / L^2`` and the surface stress is
    ``E_top kappa c_top``.
    """
    stack = geometry.stack
    c_top = stack.total_thickness - stack.neutral_axis
    e_top = stack.layers[-1].material.youngs_modulus
    kappa = tip_amplitude * mode_curvature(mode, xi) / geometry.length**2
    return e_top * kappa * c_top


def static_surface_stress_profile(
    geometry: CantileverGeometry, surface_stress: float, xi: np.ndarray
) -> np.ndarray:
    """Longitudinal top-surface stress [Pa] profile for the static mode.

    Uniform along the beam — returned as an array for API symmetry with
    the resonant profile.
    """
    value = surface_bending_stress(geometry, surface_stress)
    return np.full_like(np.asarray(xi, dtype=float), value)


@dataclass(frozen=True)
class BridgePlacement:
    """Extent of the bridge diffusions along the beam, in normalized x.

    ``start = 0`` is the clamped edge.  The paper's resonant bridge is a
    short segment at the clamp (e.g. 0 .. 0.1); the static bridge is
    distributed (0 .. 0.9).
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        require_fraction("start", self.start)
        require_fraction("end", self.end)
        if self.end <= self.start:
            raise GeometryError("placement end must exceed start")

    @property
    def extent(self) -> float:
        """Normalized length covered by the bridge."""
        return self.end - self.start


#: The paper's two placements.
CLAMPED_EDGE = BridgePlacement(start=0.0, end=0.1)
DISTRIBUTED = BridgePlacement(start=0.0, end=0.9)


def bridge_average_stress(
    geometry: CantileverGeometry,
    placement: BridgePlacement,
    *,
    operation: str,
    surface_stress: float | None = None,
    tip_amplitude: float | None = None,
    mode: int = 1,
    samples: int = 2001,
) -> float:
    """Average longitudinal stress [Pa] over the bridge extent.

    Parameters
    ----------
    operation:
        ``"static"`` (requires ``surface_stress`` [N/m]) or
        ``"resonant"`` (requires ``tip_amplitude`` [m]).
    """
    xi = np.linspace(placement.start, placement.end, samples)
    if operation == "static":
        if surface_stress is None:
            raise GeometryError("static operation requires surface_stress")
        profile = static_surface_stress_profile(geometry, surface_stress, xi)
    elif operation == "resonant":
        if tip_amplitude is None:
            raise GeometryError("resonant operation requires tip_amplitude")
        profile = resonant_surface_stress_profile(geometry, tip_amplitude, xi, mode)
    else:
        raise GeometryError(
            f"operation must be 'static' or 'resonant', got {operation!r}"
        )
    return float(np.trapezoid(profile, xi) / placement.extent)


def placement_signal_noise_gain(
    geometry: CantileverGeometry,
    placement: BridgePlacement,
    *,
    operation: str,
    surface_stress: float | None = None,
    tip_amplitude: float | None = None,
    mode: int = 1,
) -> tuple[float, float]:
    """(signal factor, 1/f-noise factor) of a placement, both relative.

    Signal factor: average stress over the extent relative to the peak
    stress at the clamp.  Noise factor: 1/f voltage noise scales as
    ``1/sqrt(area)``, i.e. ``1/sqrt(extent)`` for fixed width — the
    quantitative reason a *distributed* bridge wins for the static mode
    (signal factor stays 1, noise factor drops) but loses for the
    resonant mode (signal factor collapses faster than noise improves).
    """
    avg = bridge_average_stress(
        geometry,
        placement,
        operation=operation,
        surface_stress=surface_stress,
        tip_amplitude=tip_amplitude,
        mode=mode,
    )
    peak_placement = BridgePlacement(start=0.0, end=1e-3)
    peak = bridge_average_stress(
        geometry,
        peak_placement,
        operation=operation,
        surface_stress=surface_stress,
        tip_amplitude=tip_amplitude,
        mode=mode,
    )
    signal_factor = avg / peak if peak != 0.0 else 0.0
    noise_factor = 1.0 / math.sqrt(placement.extent / peak_placement.extent)
    return signal_factor, noise_factor
