"""PMOS transistors in the linear region as bridge elements (Fig. 5).

For resonant operation "the piezoresistive Wheatstone bridge has been
accomplished by p-channel MOS transistors biased in the linear region,
which has the advantage of a higher resistivity and lower power
consumption compared to diffusion-type silicon resistors" (paper,
Section 3.2).  The price, stated one sentence later, is worse
low-frequency noise — the reason the feedback loop carries high-pass
filters.

The model: a PMOS in deep triode presents

    R_on = 1 / (mu_p C_ox (W/L) (V_ov - V_SD / 2))

and mechanical stress modulates the channel mobility through the same
piezoresistive tensor as bulk p-silicon (current along <110>), so
``dR/R = -d mu/mu = pi_l sigma_l + pi_t sigma_t`` to first order.
Flicker noise uses the carrier count of the inversion layer
``N = C_ox W L V_ov / q`` — orders of magnitude below a diffusion
resistor's, hence the much higher 1/f corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constants import ELEMENTARY_CHARGE
from ..errors import CircuitError
from ..materials.silicon import PiezoCoefficients, piezo_coefficients
from ..units import require_positive


@dataclass(frozen=True)
class MOSBridgeTransistor:
    """A PMOS biased in the linear (triode) region as a bridge resistor.

    Parameters
    ----------
    width / length:
        Channel dimensions [m].
    oxide_capacitance:
        Gate-oxide capacitance per area ``C_ox`` [F/m^2]; ~2 mF/m^2 for a
        0.8 um process (t_ox ~ 17 nm).
    mobility:
        Hole channel mobility [m^2/(V s)].
    threshold_voltage:
        |V_T| of the PMOS [V].
    gate_overdrive:
        ``V_ov = V_SG - |V_T|`` [V]; must be positive (device on).
    drain_source_voltage:
        Operating |V_SD| [V]; must satisfy the triode condition
        ``V_SD < V_ov`` with margin.
    coefficients:
        Piezoresistive coefficients of the channel; defaults to <110>
        p-type (channel current along <110>).
    """

    width: float = 10e-6
    length: float = 20e-6
    oxide_capacitance: float = 2.0e-3
    mobility: float = 0.019
    threshold_voltage: float = 0.85
    gate_overdrive: float = 1.5
    drain_source_voltage: float = 0.1
    coefficients: PiezoCoefficients = field(
        default_factory=lambda: piezo_coefficients("<110>", "p")
    )

    def __post_init__(self) -> None:
        require_positive("width", self.width)
        require_positive("length", self.length)
        require_positive("oxide_capacitance", self.oxide_capacitance)
        require_positive("mobility", self.mobility)
        require_positive("threshold_voltage", self.threshold_voltage)
        require_positive("gate_overdrive", self.gate_overdrive)
        require_positive("drain_source_voltage", self.drain_source_voltage)
        if self.drain_source_voltage >= 0.5 * self.gate_overdrive:
            raise CircuitError(
                "triode bias requires V_SD well below the overdrive: "
                f"V_SD={self.drain_source_voltage} V, V_ov={self.gate_overdrive} V"
            )

    @property
    def nominal_resistance(self) -> float:
        """On-resistance at zero stress [Ohm]."""
        beta = (
            self.mobility
            * self.oxide_capacitance
            * self.width
            / self.length
        )
        return 1.0 / (
            beta * (self.gate_overdrive - self.drain_source_voltage / 2.0)
        )

    @property
    def carrier_count(self) -> float:
        """Inversion-layer carriers ``C_ox W L V_ov / q`` (for 1/f noise)."""
        return (
            self.oxide_capacitance
            * self.width
            * self.length
            * self.gate_overdrive
            / ELEMENTARY_CHARGE
        )

    def fractional_change(
        self, sigma_longitudinal: float, sigma_transverse: float = 0.0
    ) -> float:
        """``dR/R`` from channel-mobility piezoresistance."""
        return self.coefficients.fractional_resistance_change(
            sigma_longitudinal, sigma_transverse
        )

    def resistance(
        self, sigma_longitudinal: float = 0.0, sigma_transverse: float = 0.0
    ) -> float:
        """On-resistance [Ohm] under in-plane stress [Pa]."""
        return self.nominal_resistance * (
            1.0 + self.fractional_change(sigma_longitudinal, sigma_transverse)
        )

    def power_dissipation(self, bias_voltage: float) -> float:
        """Static power [W] with ``bias_voltage`` across the element."""
        return bias_voltage**2 / self.nominal_resistance
