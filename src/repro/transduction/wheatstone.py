"""The integrated Wheatstone bridge.

Both sensor systems of the paper read the cantilever's mechanical
deformation through a Wheatstone bridge of piezoresistive elements —
diffused resistors distributed over the beam for the static system,
PMOS-in-triode devices at the clamped edge for the resonant system.

The model covers the full-bridge and half-bridge topologies, element
mismatch (the dominant source of static offset that the programmable
offset-compensation stage of Fig. 4 must absorb), temperature response,
bridge output impedance, and the combined Johnson + 1/f noise PSD
referred to the bridge output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..constants import ROOM_TEMPERATURE
from ..errors import CircuitError
from ..units import require_positive
from . import noise as noise_model


class BridgeElement(Protocol):
    """Anything that behaves as a stress-sensitive bridge resistor."""

    @property
    def nominal_resistance(self) -> float: ...

    @property
    def carrier_count(self) -> float: ...

    def fractional_change(
        self, sigma_longitudinal: float, sigma_transverse: float = 0.0
    ) -> float: ...


@dataclass(frozen=True)
class BridgeOutput:
    """Differential output of the bridge for one operating point."""

    voltage: float
    common_mode: float
    fractional_unbalance: float


class WheatstoneBridge:
    """Four-element Wheatstone bridge with configurable active arms.

    The bridge is drawn with elements R1..R4: R1 (top left) and R2
    (bottom left) form the left divider, R3 (top right) and R4 (bottom
    right) the right divider; the differential output is
    ``V_left - V_right`` with each mid-node at
    ``V_bias * R_bottom / (R_top + R_bottom)``.

    Parameters
    ----------
    elements:
        The four bridge elements ``(R1, R2, R3, R4)``.
    active:
        Stress-sensitivity sign of each element: +1 if mechanical stress
        increases its resistance contribution, -1 if it decreases (element
        oriented transversally or placed on a reference region), 0 for a
        stress-blind reference element.  The default full active bridge
        ``(-1, +1, +1, -1)`` yields positive output for positive (tensile)
        longitudinal stress; a half bridge is ``(0, +1, 0, -1)`` etc.
    bias_voltage:
        Bridge excitation [V].
    mismatch:
        Fractional nominal-resistance mismatch of each element (static
        manufacturing error); produces the offset the readout must cancel.
    hooge_alpha:
        Hooge parameter used for all elements' 1/f noise.
    """

    def __init__(
        self,
        elements: Sequence[BridgeElement],
        active: Sequence[int] = (-1, 1, 1, -1),
        bias_voltage: float = 3.3,
        mismatch: Sequence[float] = (0.0, 0.0, 0.0, 0.0),
        hooge_alpha: float = noise_model.HOOGE_ALPHA_DIFFUSED,
    ) -> None:
        if len(elements) != 4:
            raise CircuitError("a Wheatstone bridge needs exactly 4 elements")
        if len(active) != 4 or any(a not in (-1, 0, 1) for a in active):
            raise CircuitError("active must be four values from {-1, 0, +1}")
        if len(mismatch) != 4:
            raise CircuitError("mismatch needs exactly 4 entries")
        self.elements = tuple(elements)
        self.active = tuple(int(a) for a in active)
        self.bias_voltage = require_positive("bias_voltage", bias_voltage)
        self.mismatch = tuple(float(m) for m in mismatch)
        self.hooge_alpha = hooge_alpha

    # -- resistances -----------------------------------------------------------

    def _resistances(
        self, sigma_longitudinal: float, sigma_transverse: float
    ) -> list[float]:
        values = []
        for element, sign, mm in zip(self.elements, self.active, self.mismatch):
            change = sign * element.fractional_change(
                sigma_longitudinal, sigma_transverse
            )
            values.append(element.nominal_resistance * (1.0 + mm) * (1.0 + change))
        return values

    # -- outputs ----------------------------------------------------------------

    def output(
        self, sigma_longitudinal: float = 0.0, sigma_transverse: float = 0.0
    ) -> BridgeOutput:
        """Differential bridge output for an in-plane stress state [Pa]."""
        r1, r2, r3, r4 = self._resistances(sigma_longitudinal, sigma_transverse)
        v_left = self.bias_voltage * r2 / (r1 + r2)
        v_right = self.bias_voltage * r4 / (r3 + r4)
        return BridgeOutput(
            voltage=v_left - v_right,
            common_mode=0.5 * (v_left + v_right),
            fractional_unbalance=(v_left - v_right) / self.bias_voltage,
        )

    def output_voltage(
        self, sigma_longitudinal: float = 0.0, sigma_transverse: float = 0.0
    ) -> float:
        """Differential output voltage [V]."""
        return self.output(sigma_longitudinal, sigma_transverse).voltage

    def offset_voltage(self) -> float:
        """Zero-stress output [V]: pure manufacturing mismatch."""
        return self.output_voltage(0.0, 0.0)

    def sensitivity(self) -> float:
        """Small-signal output per unit longitudinal stress [V/Pa].

        Evaluated by symmetric finite difference at a stress scale small
        enough to stay deep in the linear regime.
        """
        probe = 1e3  # Pa; dR/R ~ 1e-7 — utterly linear
        v_plus = self.output_voltage(probe)
        v_minus = self.output_voltage(-probe)
        return (v_plus - v_minus) / (2.0 * probe)

    def active_arm_count(self) -> int:
        """Number of stress-sensitive arms (|sign| = 1)."""
        return sum(abs(a) for a in self.active)

    # -- electrical properties ---------------------------------------------------

    def output_resistance(self) -> float:
        """Differential output resistance of the bridge [Ohm].

        For a bridge of equal nominal arms R this is simply R (two
        parallel pairs in series).
        """
        r1, r2, r3, r4 = (e.nominal_resistance for e in self.elements)
        return r1 * r2 / (r1 + r2) + r3 * r4 / (r3 + r4)

    def supply_current(self) -> float:
        """DC current drawn from the bias source [A]."""
        r1, r2, r3, r4 = (e.nominal_resistance for e in self.elements)
        return self.bias_voltage / (r1 + r2) + self.bias_voltage / (r3 + r4)

    def power_dissipation(self) -> float:
        """Static power of the whole bridge [W].

        The headline quantity of the paper's MOS-vs-diffusion comparison.
        """
        return self.bias_voltage * self.supply_current()

    # -- supply sensitivity -------------------------------------------------------

    def output_with_supply(
        self,
        sigma_longitudinal: float,
        actual_bias: float,
    ) -> float:
        """Output [V] when the excitation deviates from nominal.

        The bridge is a pure divider: its output scales linearly with
        the actual bias, so supply ripple amplitude-modulates both the
        signal *and* the mismatch offset.
        """
        require_positive("actual_bias", actual_bias)
        return (
            self.output_voltage(sigma_longitudinal)
            * actual_bias
            / self.bias_voltage
        )

    def ratiometric_reading(
        self, sigma_longitudinal: float, actual_bias: float
    ) -> float:
        """Supply-referenced (ratiometric) reading: ``V_out / V_bias``.

        An ADC whose reference is the bridge excitation measures this
        quantity; the linear supply dependence cancels exactly — the
        standard instrumentation trick, and one more thing monolithic
        integration makes free (the same on-chip supply feeds both).
        """
        return (
            self.output_with_supply(sigma_longitudinal, actual_bias)
            / actual_bias
        )

    # -- noise --------------------------------------------------------------------

    def noise_psd(
        self, frequency: np.ndarray, temperature: float = ROOM_TEMPERATURE
    ) -> np.ndarray:
        """Output-referred voltage noise PSD [V^2/Hz].

        Johnson noise of the output resistance plus the 1/f noise of the
        four biased elements; each element carries half the bias, and
        each divider's noise couples with a factor 1/4 in power to the
        differential output (two dividers add).
        """
        f = np.asarray(frequency, dtype=float)
        thermal = noise_model.johnson_psd(self.output_resistance(), temperature)
        flicker = np.zeros_like(f)
        for element in self.elements:
            flicker += 0.25 * noise_model.hooge_psd(
                self.bias_voltage / 2.0,
                element.carrier_count,
                f,
                self.hooge_alpha,
            )
        return thermal + flicker

    def noise_rms(
        self,
        f_low: float,
        f_high: float,
        points: int = 2001,
        temperature: float = ROOM_TEMPERATURE,
    ) -> float:
        """RMS output noise [V] over a band, by log-grid integration."""
        require_positive("f_low", f_low)
        if f_high <= f_low:
            raise CircuitError("f_high must exceed f_low")
        f = np.logspace(math.log10(f_low), math.log10(f_high), points)
        return noise_model.integrate_psd(self.noise_psd(f, temperature), f)

    def corner_frequency(self, temperature: float = ROOM_TEMPERATURE) -> float:
        """Bridge-output 1/f corner frequency [Hz]."""
        thermal = noise_model.johnson_psd(self.output_resistance(), temperature)
        flicker_at_1hz = sum(
            0.25
            * noise_model.hooge_psd(
                self.bias_voltage / 2.0,
                element.carrier_count,
                np.asarray([1.0]),
                self.hooge_alpha,
            )[0]
            for element in self.elements
        )
        return flicker_at_1hz / thermal


def matched_bridge(
    element: BridgeElement,
    *,
    active: Sequence[int] = (-1, 1, 1, -1),
    bias_voltage: float = 3.3,
    mismatch_sigma: float = 0.0,
    hooge_alpha: float = noise_model.HOOGE_ALPHA_DIFFUSED,
    seed: int | None = None,
) -> WheatstoneBridge:
    """Bridge of four copies of one element, with optional random mismatch.

    ``mismatch_sigma`` is the per-element fractional standard deviation;
    a 0.8 um process matches adjacent diffusions to ~0.1-1 %.
    """
    if mismatch_sigma:
        rng = np.random.default_rng(seed)
        mismatch = tuple(rng.normal(0.0, mismatch_sigma, size=4))
    else:
        mismatch = (0.0, 0.0, 0.0, 0.0)
    return WheatstoneBridge(
        elements=(element, element, element, element),
        active=active,
        bias_voltage=bias_voltage,
        mismatch=mismatch,
        hooge_alpha=hooge_alpha,
    )
