"""Piezoresistive transduction: bridge elements, bridges, placement, noise."""

from . import noise
from .mos_resistor import MOSBridgeTransistor
from .piezoresistor import DiffusedResistor, sheet_resistance_to_resistance
from .placement import (
    CLAMPED_EDGE,
    DISTRIBUTED,
    BridgePlacement,
    bridge_average_stress,
    mode_curvature,
    placement_signal_noise_gain,
    resonant_surface_stress_profile,
    static_surface_stress_profile,
)
from .wheatstone import BridgeOutput, WheatstoneBridge, matched_bridge

__all__ = [
    "BridgeOutput",
    "BridgePlacement",
    "CLAMPED_EDGE",
    "DISTRIBUTED",
    "DiffusedResistor",
    "MOSBridgeTransistor",
    "WheatstoneBridge",
    "bridge_average_stress",
    "matched_bridge",
    "mode_curvature",
    "noise",
    "placement_signal_noise_gain",
    "resonant_surface_stress_profile",
    "sheet_resistance_to_resistance",
    "static_surface_stress_profile",
]
