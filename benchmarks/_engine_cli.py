"""Shared CLI plumbing for engine-ported benches.

Every ported bench (`bench_ext_process_variation`,
`bench_ext_resonance_curve`, `bench_abl_placement`) accepts the same
engine flags, so `make bench-smoke` and ad-hoc runs drive them
uniformly:

* ``--workers N``   — executor worker count (1 = serial, no pool)
* ``--no-cache``    — disable the on-disk result cache
* ``--cache-dir D`` — cache location (default ``.repro_cache``)
* ``--smoke``       — tiny grid, for the <30 s CI smoke run

Run as scripts the benches print their tables plus a timing report and
the cache counters, so a warm re-run visibly reports hits and zero
stores.
"""

from __future__ import annotations

import argparse

from repro.engine import ResultCache


def engine_argument_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--workers", type=int, default=2,
        help="executor workers (1 = serial; default 2)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default .repro_cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny grid for the CI smoke run",
    )
    return parser


def cache_from_args(args: argparse.Namespace) -> ResultCache | None:
    """The bench's cache, or None when ``--no-cache`` was given."""
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def report_engine_stats(timer, cache: ResultCache | None) -> None:
    """Print the timing table and cache counters every bench ends with."""
    print("\nengine timing:")
    print(timer.format_report())
    if cache is not None:
        print(f"cache: {cache.cache_info()} [{cache.directory}]")
    else:
        print("cache: disabled")
