"""FIG1 — static cantilever bending from analyte-induced surface stress.

Regenerates the physics behind Figure 1: a surface-stress sweep over the
range biomolecular binding produces (0.1 - 50 mN/m) and the resulting
static deflection, uniform surface strain, bridge output, and amplified
chain output.

Shape targets:
* deflection is linear in surface stress (Stoney);
* mN/m-scale stress gives sub-nm to nm deflections — invisible without
  integrated readout;
* the full chain turns those into 10 mV - V outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import geometric_space, sweep
from repro.biochem import FunctionalizedSurface, get_analyte
from repro.core import StaticCantileverSensor
from repro.mechanics.surface_stress import static_response
from repro.units import mN_per_m, to_nm, to_uV


def build_fig1_table(device):
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    sensor = StaticCantileverSensor(surface)
    sensor.calibrate_offset()
    baseline = sensor.output_for_stress(0.0)

    def evaluate(stress_mn_per_m):
        sigma = -mN_per_m(stress_mn_per_m)  # compressive, as binding produces
        r = static_response(device.geometry, sigma)
        return {
            "defl_nm": to_nm(abs(r.tip_deflection)),
            "strain_ppb": abs(r.surface_strain) * 1e9,
            "bridge_uV": to_uV(
                sensor.bridge_voltage(sigma) - sensor.bridge_voltage(0.0)
            ),
            "output_V": sensor.output_for_stress(sigma) - baseline,
        }

    return sweep("stress_mN/m", list(geometric_space(0.1, 50.0, 7)), evaluate)


def test_fig1_static_bending(benchmark, reference_device):
    result = benchmark.pedantic(
        build_fig1_table, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nFIG1: static bending vs surface stress (500x100x5 um beam)")
    print(result.format_table())

    defl = result.column("defl_nm")
    stress = np.asarray(result.parameters)
    # linearity (Stoney): deflection scales 1:1 with stress over the sweep
    ratio = (defl[-1] / defl[0]) / (stress[-1] / stress[0])
    assert ratio == pytest.approx(1.0, rel=1e-6)
    # 5 mN/m produces a ~nm deflection: the "weak sensor signal" premise
    idx = int(np.argmin(np.abs(stress - 5.0)))
    assert 0.1 < defl[idx] < 10.0
    # the chain amplifies to the >= 10 mV scale at mid-sweep
    assert abs(result.column("output_V")[idx]) > 0.01
    # bridge output is microvolts: integration is mandatory
    assert abs(result.column("bridge_uV")[idx]) < 1000.0


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    print(build_fig1_table(reference_cantilever()).format_table())
