"""EXT2 — noise-floor hierarchy: what actually limits each sensor mode.

Extension experiment: stacks every noise source in the library against
each other, per mode, to answer the design question the paper's "high
signal-to-noise ratio" claim raises — high relative to *what*?

Static mode (surface-stress units, 100 Hz band, water):
  thermomechanical (Brownian) floor  vs  bridge Johnson+1/f  vs
  chain input-referred noise.

Resonant mode (mass units, 1 s averaging, water, 300 nm drive):
  thermomechanical phase diffusion  vs  gated-counter quantization.

Shape targets:
* static: the bridge's own 1/f noise dominates, the chain's amplifier
  noise is second, and Brownian motion sits two orders below — the
  floor is electrical, which is exactly why integration (which protects
  the electrical path) pays;
* resonant: the +/-1-count counter dominates the thermomechanical limit
  by orders of magnitude, motivating ABL2's reciprocal counter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.biochem import FunctionalizedSurface, get_analyte
from repro.core import ResonantCantileverSensor, StaticCantileverSensor
from repro.fluidics import immersed_mode
from repro.materials import get_liquid
from repro.mechanics.surface_stress import tip_deflection
from repro.mechanics.thermal_noise import (
    noise_equivalent_surface_stress,
    thermomechanical_frequency_stability,
)


def static_floors(device):
    geometry = device.geometry
    water = get_liquid("water")
    q_wet = immersed_mode(geometry, water).quality_factor

    brownian = noise_equivalent_surface_stress(geometry, q_wet, 100.0)

    surface = FunctionalizedSurface(get_analyte("igg"), geometry)
    sensor = StaticCantileverSensor(surface)
    sensor.characterize_chain()
    chain_stress = sensor.output_noise_rms / sensor.dc_gain / abs(
        sensor.stress_responsivity()
    )
    bridge_rms = sensor.bridge.noise_rms(0.7, 100.0)
    bridge_stress = bridge_rms / abs(sensor.stress_responsivity())
    return brownian, bridge_stress, chain_stress


def resonant_floors(device):
    geometry = device.geometry
    water = get_liquid("water")
    fl = immersed_mode(geometry, water)
    thermo = thermomechanical_frequency_stability(
        geometry, fl, drive_amplitude=300e-9, averaging_time=1.0
    )
    surface = FunctionalizedSurface(get_analyte("igg"), geometry)
    sensor = ResonantCantileverSensor(surface, water)
    counter_lod = sensor.minimum_detectable_mass(gate_time=1.0)
    return thermo.mass_resolution, counter_lod


def test_ext_static_noise_hierarchy(benchmark, reference_device):
    brownian, bridge, chain = benchmark.pedantic(
        static_floors, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nEXT2a: static-mode noise floors (surface-stress units, "
          "100 Hz band, water)")
    print(f"  thermomechanical (Brownian)   : {brownian * 1e6:9.2f} uN/m")
    print(f"  bridge Johnson + 1/f          : {bridge * 1e6:9.2f} uN/m")
    print(f"  full chain, input-referred    : {chain * 1e6:9.2f} uN/m")
    print("  (binding signals are 1000-10000 uN/m)")

    # the electrical path (bridge 1/f worst, then the amplifiers), not
    # physics, sets the floor
    assert bridge > brownian
    assert chain > brownian
    assert brownian < 0.1 * min(bridge, chain)
    # and everything sits below mN/m binding signals
    assert max(bridge, chain) < 1e-3


def test_ext_resonant_noise_hierarchy(benchmark, reference_device):
    thermo_mass, counter_mass = benchmark.pedantic(
        resonant_floors, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nEXT2b: resonant-mode mass floors (water, 1 s averaging)")
    print(f"  thermomechanical limit        : {thermo_mass * 1e15:9.3f} pg")
    print(f"  gated counter (+/-1 count)    : {counter_mass * 1e15:9.1f} pg")
    print("  -> the counter dominates by "
          f"{counter_mass / thermo_mass:.0f}x: better frequency readout "
          "(ABL2), longer gates, or mass labels pay directly")

    assert counter_mass > 100.0 * thermo_mass


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    device = reference_cantilever()
    print(static_floors(device))
    print(resonant_floors(device))
