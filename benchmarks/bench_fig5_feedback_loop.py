"""FIG5 — the resonant feedback loop, closed in the time domain.

Regenerates the behaviour of the Figure 5 block diagram: oscillator
startup from pm-scale motion, amplitude limiting by the non-linear
amplifier, agreement between the small-signal Barkhausen analysis, the
describing-function amplitude prediction, and the sample-by-sample
simulation, the counter readout, and the VGA's adaptation across
liquids of increasing damping.

Shape targets:
* the loop starts and locks within ~2% of the fluid-loaded resonance;
* the measured amplitude matches the describing-function prediction;
* more viscous liquids demand monotonically more VGA gain;
* the counter tracks the oscillation to its +/-1-count resolution;
* the fused kernel reproduces the reference waveform bit-for-bit at
  >= 5x the samples/sec (>= 10x for numba, when installed).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.biochem import FunctionalizedSurface, get_analyte
from repro.circuits import FrequencyCounter
from repro.core import ResonantCantileverSensor
from repro.engine import numba_available
from repro.feedback import analyze, predict_amplitude, predicted_startup_time
from repro.materials import get_liquid


def startup_experiment(device):
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    sensor = ResonantCantileverSensor(surface, get_liquid("water"))
    loop = sensor.build_loop()
    fs = 1.0 / loop.resonator.timestep

    barkhausen = analyze(loop, fs)
    prediction = predict_amplitude(loop, fs)
    startup = predicted_startup_time(loop, fs)
    record = loop.run(duration=0.12)
    counter = FrequencyCounter(gate_time=0.02)
    _, readings = counter.frequency_series(record.bridge_signal())
    return sensor, barkhausen, prediction, startup, record, readings


def test_fig5_startup_and_lock(benchmark, reference_device):
    sensor, barkhausen, prediction, startup, record, readings = benchmark.pedantic(
        startup_experiment, args=(reference_device,), rounds=1, iterations=1
    )
    f_true = sensor.fluid_mode.frequency
    amp_measured = record.steady_amplitude()
    print("\nFIG5: closed-loop startup in water")
    print(f"  fluid-loaded resonance        : {f_true:9.1f} Hz "
          f"(Q = {sensor.fluid_mode.quality_factor:.2f})")
    print(f"  Barkhausen zero-phase point   : "
          f"{barkhausen.oscillation_frequency:9.1f} Hz "
          f"(|L| = {barkhausen.loop_gain_magnitude:.2f})")
    print(f"  predicted tip amplitude       : "
          f"{prediction.tip_amplitude * 1e9:9.1f} nm")
    print(f"  measured tip amplitude        : {amp_measured * 1e9:9.1f} nm")
    print(f"  predicted startup time        : {startup * 1e3:9.2f} ms")
    print(f"  counter readings (20 ms gates): {readings[2:]}")

    assert barkhausen.will_oscillate
    assert startup < 5e-3  # counter valid milliseconds after power-on
    assert barkhausen.oscillation_frequency == pytest.approx(f_true, rel=0.02)
    assert amp_measured == pytest.approx(prediction.tip_amplitude, rel=0.05)
    # counter agrees with the *actual* lock frequency (which sits ~0.5%
    # below the small-signal zero-phase point) to its +/-1-count grid
    from repro.analysis import zero_crossing_frequency

    f_lock = zero_crossing_frequency(record.bridge_signal().settle(0.5))
    settled = readings[2:]
    assert np.all(np.abs(settled - f_lock) <= 2 * 50.0)


def vga_adaptation_experiment(device):
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    rows = []
    for name in ("water", "serum", "glycerol_40pct", "glycerol_60pct"):
        sensor = ResonantCantileverSensor(surface, get_liquid(name))
        loop = sensor.build_loop()  # auto-gains internally
        fs = 1.0 / loop.resonator.timestep
        prediction = predict_amplitude(loop, fs)
        rows.append(
            {
                "liquid": name,
                "Q": sensor.fluid_mode.quality_factor,
                "f_Hz": sensor.fluid_mode.frequency,
                "vga_dB": loop.vga.gain_db,
                "amp_nm": prediction.tip_amplitude * 1e9,
            }
        )
    return rows


def test_fig5_vga_adapts_to_liquids(benchmark, reference_device):
    rows = benchmark.pedantic(
        vga_adaptation_experiment, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nFIG5: VGA adaptation to liquid damping")
    print(f"{'liquid':>16s} {'Q':>7s} {'f [Hz]':>9s} {'VGA [dB]':>9s} {'amp [nm]':>9s}")
    for r in rows:
        print(f"{r['liquid']:>16s} {r['Q']:7.2f} {r['f_Hz']:9.1f} "
              f"{r['vga_dB']:9.1f} {r['amp_nm']:9.1f}")

    qs = [r["Q"] for r in rows]
    gains = [r["vga_dB"] for r in rows]
    # damping rises monotonically through the series...
    assert all(a > b for a, b in zip(qs, qs[1:]))
    # ...and the VGA responds monotonically (allowing equal adjacent
    # steps from the discrete gain grid)
    assert all(a <= b for a, b in zip(gains, gains[1:]))
    assert gains[-1] > gains[0]


def backend_speedup_experiment(device, duration=0.12, repeats=3):
    """Wall-clock samples/sec of each closed-loop backend, same physics.

    Every backend consumes the identical synthesized bridge-noise
    record, so the waveforms must agree bit-for-bit — the speedup is
    pure execution efficiency, not a model change.
    """
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    sensor = ResonantCantileverSensor(surface, get_liquid("water"))
    loop = sensor.build_loop()
    loop.run(0.002, backend="fused")  # warm the one-time compile cache

    def reset_chain():
        # run() re-seeds the noise but deliberately leaves block state
        # alone; equal starting state is what makes the waveforms
        # comparable across backends.
        for block in (loop.dda, *loop.highpasses, loop.phase_lead,
                      loop.vga, loop.limiter, loop.buffer):
            block.reset()

    backends = ["reference", "fused", "interp"]
    if numba_available():  # pragma: no cover - numba-only
        backends.append("numba")

    rows = []
    baseline = None
    for backend in backends:
        best, record = np.inf, None
        for _ in range(repeats if backend != "interp" else 1):
            reset_chain()
            t0 = time.perf_counter()
            record = loop.run(duration, backend=backend)
            best = min(best, time.perf_counter() - t0)
        n = len(record.bridge_voltage)
        info = loop.last_kernel_info
        rows.append(
            {
                "backend": backend,
                "engine": info.engine if info else "python",
                "samples": n,
                "wall_s": best,
                "samples_per_sec": n / best,
                "kernel_samples_per_sec": (
                    info.samples_per_second if info else n / best
                ),
            }
        )
        if backend == "reference":
            baseline = record
        else:
            for name in ("displacement", "bridge_voltage", "drive_voltage"):
                assert np.array_equal(
                    getattr(baseline, name), getattr(record, name)
                ), f"{backend}.{name} diverged from the reference waveform"
    for r in rows:
        r["speedup"] = r["samples_per_sec"] / rows[0]["samples_per_sec"]
    return rows


def test_fig5_backend_speedup(benchmark, reference_device):
    rows = benchmark.pedantic(
        backend_speedup_experiment, args=(reference_device,),
        rounds=1, iterations=1,
    )
    print("\nFIG5: closed-loop backend throughput (identical waveforms)")
    print(f"{'backend':>10s} {'engine':>8s} {'samples':>9s} "
          f"{'wall [s]':>9s} {'samp/s':>12s} {'speedup':>8s}")
    for r in rows:
        print(f"{r['backend']:>10s} {r['engine']:>8s} {r['samples']:9d} "
              f"{r['wall_s']:9.3f} {r['samples_per_sec']:12,.0f} "
              f"{r['speedup']:7.1f}x")

    by_backend = {r["backend"]: r for r in rows}
    assert by_backend["fused"]["speedup"] >= 5.0
    if "numba" in by_backend:  # pragma: no cover - numba-only
        assert by_backend["numba"]["speedup"] >= 10.0


def tracking_experiment(device):
    from repro.biochem import AssayProtocol
    from repro.units import nM

    surface = FunctionalizedSurface(get_analyte("streptavidin"), device.geometry)
    sensor = ResonantCantileverSensor(surface, get_liquid("pbs"))
    protocol = AssayProtocol.injection(nM(100), baseline=120, exposure=1800, wash=120)
    # 30 s gates: 0.033 Hz resolution, enough to resolve the ~0.07 Hz shift
    return sensor, sensor.run_tracking_assay(protocol, gate_time=30.0)


def test_fig5_binding_tracking(benchmark, reference_device):
    sensor, result = benchmark.pedantic(
        tracking_experiment, args=(reference_device,), rounds=1, iterations=1
    )
    true_shift = result.true_frequency[-1] - result.true_frequency[0]
    print("\nFIG5: counter-tracked streptavidin binding (PBS, 30 s gates)")
    print(f"  bound mass at end  : {result.added_mass[-1] * 1e15:8.1f} pg")
    print(f"  true shift         : {true_shift:+8.3f} Hz")
    print(f"  measured shift     : {result.total_shift:+8.3f} Hz")
    print(f"  counter resolution : {1.0 / result.gate_time:8.3f} Hz")
    print(f"  mass responsivity  : "
          f"{sensor.mass_responsivity() * 1e-15 * 1e3:8.3f} mHz/pg")

    assert true_shift < 0.0
    # the counter resolves the shift: measured is negative and within
    # quantization of the truth
    assert result.total_shift < 0.0
    assert abs(result.total_shift - true_shift) <= 3.0 / result.gate_time


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    startup_experiment(reference_cantilever())
