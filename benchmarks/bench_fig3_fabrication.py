"""FIG3 — cantilever structure before and after post-CMOS processing.

Regenerates Figure 3 as data: the full wafer cross-section before
post-processing, the per-step layer removals (backside KOH with
electrochemical etch stop, dielectric RIE, silicon RIE), the released
beam stack, the KOH timing/geometry, and the DRC verdict on the three
added mask layers.

Shape targets:
* before: 11-layer CMOS stack on a 525 um wafer;
* after: the beam is the 5 um n-well silicon alone (etch-stop-defined),
  and the outline trench is a through-hole;
* the backside opening exceeds the membrane by ~1.5 wafer thicknesses
  (54.74-degree sidewalls);
* the reference layout passes the full post-CMOS rule deck.
"""

from __future__ import annotations

import pytest

from repro.fabrication import (
    KOHEtch,
    PostCMOSFlow,
    cantilever_layout,
    post_cmos_rule_deck,
)
from repro.units import um


def run_fig3_flow():
    flow = PostCMOSFlow()
    result = flow.run()
    layout = cantilever_layout(um(500), um(100))
    violations = post_cmos_rule_deck().check(layout)
    return result, layout, violations


def test_fig3_fabrication(benchmark):
    result, layout, violations = benchmark.pedantic(
        run_fig3_flow, rounds=1, iterations=1
    )

    print("\nFIG3: cantilever structure before/after post-processing")
    print("--- before (as-fabricated CMOS): ---")
    print(result.before.describe())
    print("--- after, beam site: ---")
    print(result.beam_site.describe())
    print("--- after, outline trench: ---")
    print(
        result.trench_site.describe()
        if result.trench_site.layers
        else "  (through-hole: all layers removed)"
    )
    print("--- process record: ---")
    for step in result.beam_site.history:
        print(f"  {step}")
    koh = KOHEtch()
    print(f"  KOH etch time: {result.koh_time / 3600.0:.2f} h "
          f"({koh.rate_100 * 60e6:.2f} um/min)")
    opening = layout.bounding_box("backside_etch")
    print(f"  backside opening: {opening.width * 1e6:.0f} x "
          f"{opening.height * 1e6:.0f} um")
    print(f"  DRC violations on the 3 added masks: {len(violations)}")

    # shape assertions
    assert len(result.before.layers) == 11
    assert result.beam_site.layer_names() == ["nwell"]
    assert result.beam_site.total_thickness == pytest.approx(5e-6)
    assert result.trench_site.layers == ()
    assert result.released
    assert 4.0 * 3600 < result.koh_time < 9.0 * 3600
    assert opening.width > 1e-3  # sidewall-dominated opening
    assert violations == []


def test_fig3_dielectric_variant(benchmark):
    """The coil-carrying variant keeps the CMOS back end on the beam."""
    result = benchmark.pedantic(
        lambda: PostCMOSFlow(keep_dielectrics_on_beam=True).run(),
        rounds=1,
        iterations=1,
    )
    print("\nFIG3b: beam with retained dielectrics (coil variant)")
    print(result.beam_site.describe())
    names = result.beam_site.layer_names()
    assert "metal2" in names  # the coil layer survives
    assert "nwell" in names
    assert result.released


if __name__ == "__main__":
    result, layout, violations = run_fig3_flow()
    print(result.before.describe())
    print(result.beam_site.describe())
    print("violations:", violations)
