"""ABL1 — ablation of the bridge placement (paper, Section 3).

The paper places the resonant bridge "on the clamped edge of the
cantilever, where the maximum mechanical stress is induced", while the
static bridge "is distributed over the cantilever length and covers a
larger area".  This bench sweeps the placement for both operating modes
and reports the signal each position collects, plus the area-dependent
1/f-noise factor for the static mode.

Shape targets:
* resonant mode: clamped-edge placement collects several times the
  signal of mid-beam or tip placements of equal area;
* static mode: signal is placement-independent, so the widest bridge
  maximizes SNR through its lower 1/f noise.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import sweep
from repro.transduction import BridgePlacement, bridge_average_stress


def build_resonant_placement_table(geometry):
    def evaluate(start):
        placement = BridgePlacement(start=start, end=start + 0.1)
        signal = abs(
            bridge_average_stress(
                geometry, placement, operation="resonant", tip_amplitude=100e-9
            )
        )
        return {"signal_kPa": signal / 1e3}

    return sweep("start_xi", [0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9], evaluate)


def build_static_extent_table(geometry):
    def evaluate(extent):
        placement = BridgePlacement(start=0.0, end=extent)
        signal = abs(
            bridge_average_stress(
                geometry, placement, operation="static", surface_stress=5e-3
            )
        )
        noise_factor = 1.0 / math.sqrt(extent / 0.1)
        return {
            "signal_kPa": signal / 1e3,
            "rel_1f_noise": noise_factor,
            "rel_snr": (signal / 1e3) / noise_factor,
        }

    return sweep("extent_xi", [0.1, 0.3, 0.5, 0.7, 0.9], evaluate)


def test_abl_placement(benchmark, reference_device):
    geometry = reference_device.geometry

    def experiment():
        return (
            build_resonant_placement_table(geometry),
            build_static_extent_table(geometry),
        )

    resonant, static = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nABL1a: resonant mode — equal-area bridge at varying position "
          "(100 nm tip amplitude)")
    print(resonant.format_table())
    print("\nABL1b: static mode — bridge extent from the clamp (5 mN/m)")
    print(static.format_table())

    res_signal = resonant.column("signal_kPa")
    # clamped edge wins and the signal decays monotonically along the beam
    assert np.argmax(res_signal) == 0
    assert res_signal[0] > 2.5 * res_signal[3]
    assert res_signal[0] > 5.0 * res_signal[4]
    assert np.all(np.diff(res_signal) < 0.0)

    # static: signal flat (placement-independent), SNR rises with extent
    static_signal = static.column("signal_kPa")
    assert np.allclose(static_signal, static_signal[0], rtol=1e-9)
    snr = static.column("rel_snr")
    assert np.all(np.diff(snr) > 0.0)


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    g = reference_cantilever().geometry
    print(build_resonant_placement_table(g).format_table())
    print(build_static_extent_table(g).format_table())
