"""ABL1 — ablation of the bridge placement (paper, Section 3).

The paper places the resonant bridge "on the clamped edge of the
cantilever, where the maximum mechanical stress is induced", while the
static bridge "is distributed over the cantilever length and covers a
larger area".  This bench sweeps the placement for both operating modes
and reports the signal each position collects, plus the area-dependent
1/f-noise factor for the static mode.

Ported to the batch engine: both tables are built with
:func:`repro.analysis.run_parallel` (grid fan-out over the executor,
optional result cache) and are element-for-element identical to the
serial :func:`repro.analysis.sweep`.

Shape targets:
* resonant mode: clamped-edge placement collects several times the
  signal of mid-beam or tip placements of equal area;
* static mode: signal is placement-independent, so the widest bridge
  maximizes SNR through its lower 1/f noise.
"""

from __future__ import annotations

import functools
import math

import numpy as np
import pytest

from repro.analysis import run_parallel, sweep
from repro.engine import ResultCache, StageTimer
from repro.transduction import BridgePlacement, bridge_average_stress

RESONANT_STARTS = [0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9]
STATIC_EXTENTS = [0.1, 0.3, 0.5, 0.7, 0.9]


def resonant_placement_point(start, geometry) -> dict[str, float]:
    """Equal-area bridge at ``start`` in resonant mode (picklable task)."""
    placement = BridgePlacement(start=start, end=start + 0.1)
    signal = abs(
        bridge_average_stress(
            geometry, placement, operation="resonant", tip_amplitude=100e-9
        )
    )
    return {"signal_kPa": signal / 1e3}


def static_extent_point(extent, geometry) -> dict[str, float]:
    """Clamp-anchored bridge of ``extent`` in static mode (picklable task)."""
    placement = BridgePlacement(start=0.0, end=extent)
    signal = abs(
        bridge_average_stress(
            geometry, placement, operation="static", surface_stress=5e-3
        )
    )
    noise_factor = 1.0 / math.sqrt(extent / 0.1)
    return {
        "signal_kPa": signal / 1e3,
        "rel_1f_noise": noise_factor,
        "rel_snr": (signal / 1e3) / noise_factor,
    }


def build_resonant_placement_table(
    geometry, workers: int = 1, cache: ResultCache | None = None
):
    return run_parallel(
        "start_xi",
        RESONANT_STARTS,
        functools.partial(resonant_placement_point, geometry=geometry),
        workers=workers,
        cache=cache,
    )


def build_static_extent_table(
    geometry, workers: int = 1, cache: ResultCache | None = None
):
    return run_parallel(
        "extent_xi",
        STATIC_EXTENTS,
        functools.partial(static_extent_point, geometry=geometry),
        workers=workers,
        cache=cache,
    )


def run_bench(
    workers: int = 1,
    cache: ResultCache | None = None,
    quiet: bool = False,
) -> dict[str, float]:
    """Both placement tables through the engine; returns headline numbers."""
    from repro.config import (
        REFERENCE_CANTILEVER,
        REFERENCE_PROCESS,
        build_cantilever,
    )

    geometry = build_cantilever(REFERENCE_CANTILEVER, REFERENCE_PROCESS).geometry
    timer = StageTimer()
    with timer.stage(f"placement tables (workers={workers})"):
        resonant = build_resonant_placement_table(
            geometry, workers=workers, cache=cache
        )
        static = build_static_extent_table(geometry, workers=workers, cache=cache)
    res_signal = resonant.column("signal_kPa")
    headline = {
        "resonant_clamp_kPa": float(res_signal[0]),
        "resonant_tip_kPa": float(res_signal[-1]),
        "clamp_to_tip_ratio": float(res_signal[0] / res_signal[-1]),
        "static_signal_kPa": float(static.column("signal_kPa")[0]),
        "static_best_rel_snr": float(static.column("rel_snr")[-1]),
    }
    if not quiet:
        print("\nABL1a: resonant mode — equal-area bridge at varying position")
        print(resonant.format_table())
        print("\nABL1b: static mode — bridge extent from the clamp (5 mN/m)")
        print(static.format_table())
        print(timer.format_report())
    return headline


def test_abl_placement(benchmark, reference_device):
    geometry = reference_device.geometry

    def experiment():
        return (
            build_resonant_placement_table(geometry),
            build_static_extent_table(geometry),
        )

    resonant, static = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nABL1a: resonant mode — equal-area bridge at varying position "
          "(100 nm tip amplitude)")
    print(resonant.format_table())
    print("\nABL1b: static mode — bridge extent from the clamp (5 mN/m)")
    print(static.format_table())

    res_signal = resonant.column("signal_kPa")
    # clamped edge wins and the signal decays monotonically along the beam
    assert np.argmax(res_signal) == 0
    assert res_signal[0] > 2.5 * res_signal[3]
    assert res_signal[0] > 5.0 * res_signal[4]
    assert np.all(np.diff(res_signal) < 0.0)

    # static: signal flat (placement-independent), SNR rises with extent
    static_signal = static.column("signal_kPa")
    assert np.allclose(static_signal, static_signal[0], rtol=1e-9)
    snr = static.column("rel_snr")
    assert np.all(np.diff(snr) > 0.0)


def test_abl_placement_parallel_matches_serial(reference_device):
    """run_parallel == sweep, element-for-element, on the real tables."""
    geometry = reference_device.geometry
    serial = sweep(
        "start_xi",
        RESONANT_STARTS,
        functools.partial(resonant_placement_point, geometry=geometry),
    )
    parallel = build_resonant_placement_table(geometry, workers=2)
    assert parallel.parameters == serial.parameters
    assert list(parallel.columns) == list(serial.columns)
    for name in serial.columns:
        np.testing.assert_array_equal(parallel.column(name), serial.column(name))


def main(argv=None) -> int:
    from _engine_cli import cache_from_args, engine_argument_parser, report_engine_stats

    parser = engine_argument_parser(
        "ABL1 bridge-placement tables through the batch engine"
    )
    args = parser.parse_args(argv)
    cache = cache_from_args(args)
    timer = StageTimer()
    with timer.stage("bench"):
        run_bench(workers=args.workers, cache=cache)
    report_engine_stats(timer, cache)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
