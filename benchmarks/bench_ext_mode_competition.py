"""EXT10 — mode competition: the loop's filters pick the mode.

Extension experiment behind EXT5's premise: a self-oscillating loop
locks onto whichever mode satisfies Barkhausen with the most margin.
With the Fig. 5 chain as drawn (differentiating phase conditioner, HP
filters), *higher* modes get *more* electrical gain — so the untamed
loop wakes up on mode 2, not the fundamental.  Band-limiting is not a
nicety; it is the mode-selection mechanism.

The bench closes the loop around modes 1 AND 2 simultaneously (exact
per-mode propagators, shared electrical chain, air operation for clean
high-Q competition) under three filter configurations and reports the
per-mode small-signal loop gains plus the frequency the time-domain
simulation actually locks to.

Shape targets:
* wideband chain: gain(mode2) > gain(mode1) -> locks at ~172 kHz;
* a 40 kHz low-pass added: gain ordering flips -> locks at ~27.5 kHz;
* HP cutoffs raised above mode 1: only mode 2 survives -> ~172 kHz.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.actuation import ActuationCoil, LorentzActuator, PermanentMagnet
from repro.analysis import fft_peak_frequency
from repro.circuits import HighPassFilter, LowPassFilter
from repro.core.presets import resonant_bridge
from repro.feedback import ResonantFeedbackLoop, displacement_to_stress_gain
from repro.feedback.multimode import MultiModeLoop
from repro.fluidics import immersed_mode
from repro.materials import get_liquid
from repro.mechanics import ModalResonator, analyze_modes


def run_configurations(device):
    geometry = device.geometry
    air = get_liquid("air")
    q1 = immersed_mode(geometry, air, 1).quality_factor
    q2 = immersed_mode(geometry, air, 2).quality_factor
    modes = analyze_modes(geometry, 2)
    actuator = LorentzActuator(ActuationCoil(geometry=geometry), PermanentMagnet())

    def make_loop(extra_filters=None, hp_cutoff=None):
        resonator = ModalResonator(
            modes[0].effective_mass,
            modes[0].effective_stiffness,
            q1,
            1.0 / (modes[1].frequency * 40),
        )
        loop = ResonantFeedbackLoop(
            resonator,
            resonant_bridge(mismatch_sigma=0.0),
            displacement_to_stress_gain(geometry),
            actuator,
            include_bridge_noise=False,
        )
        if hp_cutoff is not None:
            loop.highpasses = [
                HighPassFilter(hp_cutoff),
                HighPassFilter(hp_cutoff),
            ]
        if extra_filters:
            loop.highpasses = list(loop.highpasses) + extra_filters
        return loop

    rows = []
    configurations = [
        ("wideband (as drawn)", make_loop()),
        ("+ LP 40 kHz", make_loop(extra_filters=[LowPassFilter(40e3, order=2)])),
        ("HP raised to 60 kHz", make_loop(hp_cutoff=60e3)),
    ]
    for label, loop in configurations:
        mm = MultiModeLoop.for_geometry(geometry, [q1, q2], loop)
        fs = 1.0 / mm.resonators[0].timestep
        gains = mm.modal_loop_gains(fs)
        signal = mm.run(0.015)
        f_lock = fft_peak_frequency(signal.settle(0.5))
        rows.append(
            {
                "config": label,
                "gain_m1": gains[0],
                "gain_m2": gains[1],
                "lock_kHz": f_lock / 1e3,
            }
        )
    f1 = modes[0].frequency
    f2 = modes[1].frequency
    return rows, f1, f2


def test_ext_mode_competition(benchmark, reference_device):
    rows, f1, f2 = benchmark.pedantic(
        run_configurations, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nEXT10: mode competition in the dual-mode loop (air, "
          f"f1 = {f1 / 1e3:.1f} kHz, f2 = {f2 / 1e3:.1f} kHz)")
    print(f"{'configuration':>22s} {'|L| m1':>8s} {'|L| m2':>8s} {'locks at [kHz]':>15s}")
    for r in rows:
        print(f"{r['config']:>22s} {r['gain_m1']:>8.1f} {r['gain_m2']:>8.1f} "
              f"{r['lock_kHz']:>15.2f}")

    wideband, lowpassed, hp_raised = rows
    # wideband: mode 2 wins the gain race and the oscillation
    assert wideband["gain_m2"] > wideband["gain_m1"]
    assert wideband["lock_kHz"] * 1e3 == pytest.approx(f2, rel=0.02)
    # low-passed: ordering flips, fundamental wins
    assert lowpassed["gain_m1"] > 3.0 * lowpassed["gain_m2"]
    assert lowpassed["lock_kHz"] * 1e3 == pytest.approx(f1, rel=0.02)
    # HP raised above f1: mode 2 by design
    assert hp_raised["lock_kHz"] * 1e3 == pytest.approx(f2, rel=0.02)


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    rows, f1, f2 = run_configurations(reference_cantilever())
    for r in rows:
        print(r)
