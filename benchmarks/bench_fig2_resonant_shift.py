"""FIG2 — resonant operation: mass-induced frequency shift.

Regenerates the physics behind Figure 2: an added-mass sweep over the
bound-analyte range (0.1 - 100 pg) and the resulting resonant-frequency
shift, in vacuum and immersed in water, plus the mass responsivity and
the tip-vs-uniform distribution factor.

Shape targets:
* frequency falls monotonically with mass, first-order linear;
* a tip-concentrated mass shifts ~4x more than the same mass spread
  uniformly (mode-1 weighting);
* water immersion blunts the responsivity by the fluid-loading mass
  ratio times the frequency drop (~30x combined for this beam).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import geometric_space, sweep
from repro.fluidics import immersed_mode
from repro.materials import get_liquid
from repro.mechanics import (
    frequency_shift,
    mass_responsivity,
    natural_frequency,
)
from repro.mechanics.modal import analyze_modes, effective_mass_fraction
from repro.units import pg


def build_fig2_table(device):
    geometry = device.geometry
    water = get_liquid("water")
    wet = immersed_mode(geometry, water)
    k_eff = analyze_modes(geometry, 1)[0].effective_stiffness

    def wet_shift(dm):
        m = wet.effective_mass + dm * effective_mass_fraction(1)
        f = float(np.sqrt(k_eff / m)) / (2.0 * np.pi)
        return f - wet.frequency

    def evaluate(mass_pg):
        dm = pg(mass_pg)
        return {
            "df_vac_Hz": frequency_shift(geometry, dm, distribution="uniform"),
            "df_tip_Hz": frequency_shift(geometry, dm, distribution="tip"),
            "df_water_Hz": wet_shift(dm),
        }

    return sweep("mass_pg", list(geometric_space(0.1, 100.0, 7)), evaluate)


def test_fig2_resonant_shift(benchmark, reference_device):
    result = benchmark.pedantic(
        build_fig2_table, args=(reference_device,), rounds=1, iterations=1
    )
    geometry = reference_device.geometry
    f0 = natural_frequency(geometry)
    print(f"\nFIG2: mass-induced frequency shift (f0 = {f0 / 1e3:.2f} kHz)")
    print(result.format_table())
    resp = mass_responsivity(geometry, distribution="uniform")
    print(f"vacuum responsivity: {resp * 1e-15:.3f} Hz/pg (uniform coverage)")

    vac = result.column("df_vac_Hz")
    tip = result.column("df_tip_Hz")
    wet = result.column("df_water_Hz")
    # all shifts are downward and monotone in mass
    assert np.all(vac < 0.0) and np.all(np.diff(vac) < 0.0)
    assert np.all(wet < 0.0)
    # tip mass counts ~4x a uniform layer (1 / effective-mass fraction)
    assert tip[0] / vac[0] == pytest.approx(4.0, rel=0.01)
    # water blunts the responsivity by (m_wet/m_dry) x (f_vac/f_wet):
    # ~9.5 x ~3.1 ~ 30x for this beam
    blunting = vac[-1] / wet[-1]
    assert 15.0 < blunting < 50.0
    # first-order linearity at the small end
    assert vac[1] / vac[0] == pytest.approx(
        result.parameters[1] / result.parameters[0], rel=1e-3
    )


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    print(build_fig2_table(reference_cantilever()).format_table())
