"""EXT8 — specificity: cross-reactivity and what the wash step buys.

Extension experiment on the paper's "specific analyte detection ...
bio-affinity recognition" premise.  A serum sample never contains the
target alone; a structurally related molecule binds the same probe 100x
more weakly but may be present 100-10000x more abundantly.

Two results:

* **equilibrium confusion** — at matched load (C/K_D equal) the
  interferent contributes exactly half of the measured signal: affinity
  alone cannot save a same-order-loaded assay;
* **kinetic rescue (the wash)** — the weak binder unbinds ~100x faster,
  so a buffer wash strips it while the target stays: the reason every
  protocol in :class:`AssayProtocol` ends with a wash step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sweep
from repro.biochem import (
    competitive_transient,
    cross_reactivity,
    get_analyte,
    weakened_analyte,
)
from repro.units import nM


def build_confusion_table():
    igg = get_analyte("igg")
    cross = weakened_analyte(igg, affinity_penalty=100.0)

    def evaluate(excess):
        report = cross_reactivity(igg, nM(1), cross, nM(1) * excess)
        return {
            "theta_target": report.target_coverage,
            "theta_interf": report.interferent_coverage,
            "interf_signal_frac": report.apparent_excess_fraction,
        }

    return sweep("excess_x", [1.0, 10.0, 100.0, 1000.0, 10000.0], evaluate)


def wash_experiment():
    igg = get_analyte("igg")
    cross = weakened_analyte(igg, affinity_penalty=100.0)
    species = [igg, cross]

    # exposure: target 1 nM against 100x interferent excess
    t_load = np.linspace(1.0, 3600.0, 40)
    loaded = competitive_transient(species, [nM(1), nM(100)], t_load)
    theta_loaded = loaded[:, -1]

    # 30 min buffer wash
    t_wash = np.linspace(1.0, 1800.0, 40)
    washed = competitive_transient(
        species, [0.0, 0.0], t_wash, initial_coverages=theta_loaded
    )
    theta_washed = washed[:, -1]
    return theta_loaded, theta_washed


def test_ext_equilibrium_confusion(benchmark):
    table = benchmark.pedantic(build_confusion_table, rounds=1, iterations=1)
    print("\nEXT8a: cross-reactant (100x weaker) at growing excess vs "
          "1 nM target")
    print(table.format_table())

    frac = table.column("interf_signal_frac")
    # matched load (100x excess of the 100x-weaker binder): half the signal
    idx = table.parameters.index(100.0)
    assert frac[idx] == pytest.approx(0.5, abs=0.02)
    # monotone takeover
    assert np.all(np.diff(frac) > 0.0)
    assert frac[-1] > 0.9


def test_ext_wash_rescues_specificity(benchmark):
    theta_loaded, theta_washed = benchmark.pedantic(
        wash_experiment, rounds=1, iterations=1
    )
    before = theta_loaded[1] / theta_loaded.sum()
    after = theta_washed[1] / theta_washed.sum()
    print("\nEXT8b: wash-step discrimination (1 nM target + 100 nM "
          "cross-reactant)")
    print(f"  after exposure : target {theta_loaded[0]:.3f}, "
          f"interferent {theta_loaded[1]:.3f} "
          f"({before * 100:.0f}% of signal is false)")
    print(f"  after 30' wash : target {theta_washed[0]:.3f}, "
          f"interferent {theta_washed[1]:.3f} "
          f"({after * 100:.0f}% of signal is false)")

    # the wash strips the weak binder preferentially
    assert after < 0.35 * before
    # while keeping most of the target
    assert theta_washed[0] > 0.7 * theta_loaded[0]


if __name__ == "__main__":
    print(build_confusion_table().format_table())
    print(wash_experiment())
