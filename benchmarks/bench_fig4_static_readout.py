"""FIG4 — the static readout chain, stage by stage.

Regenerates the behaviour of the Figure 4 block diagram: the per-stage
signal/offset budget for a microvolt bridge input, the chopper's role
(identical chain with chopping disabled rails immediately), the offset
DAC's range/resolution, and the 4-channel mux scan feeding one shared
chain.

Shape targets:
* unchopped, the first stage's own offset times the chain gain slams
  the rails — zero usable signal;
* chopped, the chain delivers ~3900x gain with sub-uV input-referred
  noise in the 100 Hz band;
* the offset DAC absorbs the bridge-mismatch offset to < 1 LSB;
* the mux scan recovers all four channel levels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.biochem import FunctionalizedSurface, get_analyte
from repro.circuits import Amplifier, Chain, LowPassFilter, Signal
from repro.core import BiosensorChip, ChannelConfig, StaticCantileverSensor
from repro.core.presets import (
    CHOP_FREQUENCY,
    CIRCUIT_SAMPLE_RATE,
    first_stage_amplifier,
    reference_cantilever,
    static_readout_blocks,
)


def characterize_chain(device):
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    sensor = StaticCantileverSensor(surface)
    dc_gain, noise_rms = sensor.characterize_chain()
    residual = sensor.calibrate_offset()
    return sensor, dc_gain, noise_rms, residual


def unchopped_comparison():
    """The same first stage without chopping: offset x gain rails out."""
    rng = np.random.default_rng(3)
    chain = Chain(
        [
            first_stage_amplifier(rng),
            LowPassFilter(100.0, order=2),
            Amplifier(gain=10.0, rng=rng),
            Amplifier(gain=5.0, rng=rng),
        ]
    )
    test = Signal.sine(5.0, 0.6, CIRCUIT_SAMPLE_RATE, amplitude=20e-6)
    out = chain.process(test).settle(0.5)
    return out.mean(), out.std()


def test_fig4_chain_budget(benchmark, reference_device):
    sensor, dc_gain, noise_rms, residual = benchmark.pedantic(
        characterize_chain, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nFIG4: static readout chain characterization")
    print(f"  end-to-end DC gain            : {dc_gain:8.0f} V/V")
    print(f"  output noise (100 Hz band)    : {noise_rms * 1e3:8.3f} mV rms")
    print(f"  input-referred noise          : {noise_rms / dc_gain * 1e9:8.1f} nV rms")
    print(f"  bridge mismatch offset        : "
          f"{sensor.bridge_voltage(0.0) * 1e3:8.3f} mV")
    print(f"  residual offset after cal     : {residual * 1e3:8.3f} mV (output)")
    dac = sensor.blocks["offset_dac"]
    print(f"  offset DAC: +/-{dac.full_scale:.1f} V in {dac.bits} bits "
          f"(LSB {dac.lsb * 1e3:.2f} mV)")

    assert 2500.0 < dc_gain < 5000.0
    assert noise_rms / dc_gain < 1e-6  # sub-uV input-referred
    post_gain = sensor.blocks["gain2"].gain * sensor.blocks["gain3"].gain
    assert abs(residual) < 3.0 * dac.lsb * post_gain


def test_fig4_chopper_necessity(benchmark):
    mean_unchopped, std_unchopped = benchmark.pedantic(
        unchopped_comparison, rounds=1, iterations=1
    )
    print("\nFIG4: the same chain WITHOUT chopping")
    print(f"  output mean: {mean_unchopped:+.3f} V (rails at +/-2.5 V)")
    print(f"  signal std : {std_unchopped * 1e3:.4f} mV "
          "(signal crushed against the rail)")
    # 2 mV offset x 5000 = 10 V >> rails: the chain is pinned
    assert abs(mean_unchopped) > 2.0
    # and the 20 uV test tone is destroyed (< 10% of its nominal size)
    nominal = 20e-6 * 5000 / np.sqrt(2.0)
    assert std_unchopped < 0.1 * nominal


def test_fig4_mux_scan(benchmark, reference_device):
    chip = BiosensorChip(
        cantilever=reference_device,
        channels=[
            ChannelConfig(analyte=get_analyte("igg"), label="anti-IgG"),
            ChannelConfig(analyte=get_analyte("crp"), label="anti-CRP"),
            ChannelConfig(analyte=None, label="ref1"),
            ChannelConfig(analyte=None, label="ref2"),
        ],
    )
    muxed, slots = benchmark.pedantic(
        chip.scan_bridges,
        kwargs={"dwell_time": 5e-3, "duration": 0.08},
        rounds=1,
        iterations=1,
    )
    means = chip.mux.demultiplex_means(muxed, slots, settle_fraction=0.5)
    print("\nFIG4: 4-channel mux scan (raw bridge offsets per channel)")
    for ch in range(4):
        expected = chip.sensors[ch].bridge_voltage(0.0)
        print(f"  ch{ch} ({chip.channels[ch].label:>8s}): "
              f"scanned {np.mean(means[ch]) * 1e3:+7.3f} mV, "
              f"direct {expected * 1e3:+7.3f} mV")
        assert np.mean(means[ch]) == pytest.approx(expected, abs=5e-5)
    assert {s.channel for s in slots} == {0, 1, 2, 3}


if __name__ == "__main__":
    sensor, dc_gain, noise_rms, residual = characterize_chain(
        reference_cantilever()
    )
    print(dc_gain, noise_rms, residual)
