"""CLM3 — "a chopper-stabilized amplifier as first stage performs a
low-noise, low-offset amplification of the weak sensor signal".

Sweeps the chop frequency and compares the chopped chain's residual
offset and in-band (0-50 Hz) noise against the identical unchopped
amplifier.

Shape targets:
* unchopped: 2 mV offset x 100 = 0.2 V at the stage output plus a 1/f
  shelf in band;
* chopped at any carrier above the signal band: offset suppressed by
  orders of magnitude;
* in-band noise improves as the carrier climbs past the 1/f corner
  (2 kHz here), then flattens at the white floor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import band_rms, sweep
from repro.circuits import Amplifier, ChopperAmplifier, LowPassFilter, Chain, Signal

FS = 200e3
DURATION = 1.5


def _core(seed):
    return Amplifier(
        gain=100.0,
        gbw=2e6,
        input_offset=2e-3,
        noise_density=25e-9,
        noise_corner=2e3,
        rails=(-2.5, 2.5),
        rng=np.random.default_rng(seed),
    )


def build_chopper_table():
    zero = Signal.constant(0.0, DURATION, FS)

    # unchopped baseline
    plain = _core(seed=1)
    plain_out = plain.process(zero).settle(0.3)
    baseline = {
        "offset_mV": abs(plain_out.mean()) * 1e3,
        "noise_uV": band_rms(plain_out, 0.7, 50.0) * 1e6,
    }

    def evaluate(f_chop_khz):
        chain = Chain(
            [
                ChopperAmplifier(_core(seed=1), f_chop_khz * 1e3),
                LowPassFilter(100.0, order=2),
            ]
        )
        out = chain.process(zero).settle(0.3)
        return {
            "offset_mV": abs(out.mean()) * 1e3,
            "noise_uV": band_rms(out, 0.7, 50.0) * 1e6,
        }

    table = sweep("fchop_kHz", [0.5, 1.0, 2.0, 5.0, 10.0, 20.0], evaluate)
    return baseline, table


def test_claim_chopper(benchmark):
    baseline, table = benchmark.pedantic(build_chopper_table, rounds=1, iterations=1)
    print("\nCLM3: chopper stabilization vs chop frequency "
          "(stage gain 100, 1/f corner 2 kHz)")
    print(f"  unchopped: offset {baseline['offset_mV']:.2f} mV, "
          f"in-band noise {baseline['noise_uV']:.2f} uV rms")
    print(table.format_table())

    offsets = table.column("offset_mV")
    noise = table.column("noise_uV")
    # offset suppressed by >100x at every carrier
    assert np.all(offsets < baseline["offset_mV"] / 100.0)
    # noise improves substantially once the carrier clears the corner
    assert noise[-1] < 0.5 * baseline["noise_uV"]
    # and chopping above the corner beats chopping below it
    assert noise[-1] < noise[0]


if __name__ == "__main__":
    baseline, table = build_chopper_table()
    print(baseline)
    print(table.format_table())
