"""CLM2 — "p-channel MOS transistors biased in the linear region ...
higher resistivity and lower power consumption compared to
diffusion-type silicon resistors".

Compares the two bridge technologies at the same 3.3 V bias: element
resistance, bridge supply current and power, stress sensitivity, and the
price the paper pays one sentence later — the 1/f corner frequency.

Shape targets:
* MOS element resistance > diffusion -> bridge power lower by the same
  factor;
* stress sensitivity comparable (same p-carrier piezo coefficients);
* MOS 1/f corner orders of magnitude above the diffusion corner (the
  motivation for CLM4's high-pass filters).
"""

from __future__ import annotations

import pytest

from repro.transduction import DiffusedResistor, MOSBridgeTransistor, matched_bridge
from repro.transduction.noise import HOOGE_ALPHA_DIFFUSED, HOOGE_ALPHA_MOS


def build_comparison():
    diffused_elem = DiffusedResistor(nominal_resistance=10e3)
    mos_elem = MOSBridgeTransistor()
    diffused = matched_bridge(
        diffused_elem, bias_voltage=3.3, hooge_alpha=HOOGE_ALPHA_DIFFUSED
    )
    mos = matched_bridge(mos_elem, bias_voltage=3.3, hooge_alpha=HOOGE_ALPHA_MOS)

    def row(name, elem, bridge):
        return {
            "technology": name,
            "R_element_kOhm": elem.nominal_resistance / 1e3,
            "supply_uA": bridge.supply_current() * 1e6,
            "power_mW": bridge.power_dissipation() * 1e3,
            "sens_uV_per_MPa": bridge.sensitivity() * 1e6 * 1e6,
            "corner_Hz": bridge.corner_frequency(),
        }

    return [
        row("diffused", diffused_elem, diffused),
        row("pmos_triode", mos_elem, mos),
    ]


def test_claim_mos_bridge(benchmark):
    rows = benchmark.pedantic(build_comparison, rounds=3, iterations=1)
    print("\nCLM2: diffused vs PMOS-triode Wheatstone bridge at 3.3 V")
    keys = list(rows[0])
    print("".join(f"{k:>18s}" for k in keys))
    for r in rows:
        cells = []
        for k in keys:
            v = r[k]
            cells.append(f"{v:>18.4g}" if not isinstance(v, str) else f"{v:>18s}")
        print("".join(cells))

    diffused, mos = rows
    # the paper's claim: higher resistivity, lower power
    assert mos["R_element_kOhm"] > 2.0 * diffused["R_element_kOhm"]
    assert mos["power_mW"] < 0.5 * diffused["power_mW"]
    # sensitivity of the same order (both p-carrier <110>)
    ratio = mos["sens_uV_per_MPa"] / diffused["sens_uV_per_MPa"]
    assert 0.3 < abs(ratio) < 3.0
    # the price: a 1/f corner hundreds of times higher
    assert mos["corner_Hz"] > 100.0 * diffused["corner_Hz"]


if __name__ == "__main__":
    for row in build_comparison():
        print(row)
