"""EXT6 — dual-oscillator temperature compensation.

Extension experiment: the resonant analogue of the static array's
reference beams.  A second (blocked) cantilever oscillator on the same
die shares the temperature but not the binding; reading the frequency
*ratio* cancels the -31 ppm/K TC to the TCF-matching floor.

Shape targets:
* raw readout: a 0.1 K excursion mimics tens of pg of binding;
* ratio readout: the same excursion contributes < 1% of that, while a
  real binding signal passes through unattenuated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sweep
from repro.biochem import FunctionalizedSurface, get_analyte
from repro.core import ResonantCantileverSensor
from repro.environment import DualOscillatorReadout
from repro.materials import get_liquid


def build_compensation_table(device):
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    sensor = ResonantCantileverSensor(surface, get_liquid("water"))
    f0 = sensor.fluid_mode.frequency
    dual = DualOscillatorReadout.for_geometry(device.geometry, f0)
    responsivity = abs(sensor.mass_responsivity())

    binding_shift_frac = -50e-15 * responsivity / f0  # 50 pg event

    def evaluate(delta_t):
        raw_error_hz = dual.raw_thermal_error(delta_t) * f0
        comp_error_hz = dual.compensated_thermal_error(delta_t) * f0
        ratio_with_binding = dual.ratio_readout(delta_t, binding_shift_frac)
        return {
            "raw_err_Hz": raw_error_hz,
            "raw_err_pg": raw_error_hz / responsivity * 1e15,
            "comp_err_Hz": comp_error_hz,
            "comp_err_pg": comp_error_hz / responsivity * 1e15,
            "binding_in_ratio": (ratio_with_binding - 1.0) / binding_shift_frac,
        }

    table = sweep("dT_K", [0.01, 0.1, 0.5, 1.0, 5.0], evaluate)
    return dual, responsivity, table


def test_ext_dual_oscillator(benchmark, reference_device):
    dual, responsivity, table = benchmark.pedantic(
        build_compensation_table, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nEXT6: raw vs frequency-ratio readout under temperature "
          f"excursions (TCF = {dual.tcf * 1e6:.1f} ppm/K, "
          f"mismatch {dual.tcf_mismatch * 1e9:.0f} ppb/K)")
    print(table.format_table())
    print("  ('binding_in_ratio' ~ 1 means a real 50 pg signal passes "
          "the compensation unattenuated)")

    raw_pg = table.column("raw_err_pg")
    comp_pg = table.column("comp_err_pg")
    # a 0.1 K excursion mimics tens of pg raw, sub-pg compensated
    idx = table.parameters.index(0.1)
    assert raw_pg[idx] > 10.0
    assert comp_pg[idx] < 0.05 * raw_pg[idx]
    # the binding signal itself survives; the TCF-mismatch floor eats
    # ~2% of this 50 pg signal per kelvin of excursion
    binding = table.column("binding_in_ratio")
    for dt, value in zip(table.parameters, binding):
        if dt <= 1.0:
            assert abs(value - 1.0) < 0.05
    assert abs(binding[-1] - 1.0) < 0.2  # even 5 K leaves 89% of it


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    _, _, table = build_compensation_table(reference_cantilever())
    print(table.format_table())
