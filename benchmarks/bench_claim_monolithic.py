"""CLM1 — "monolithic integrated readout ... lowers the sensitivity to
external interference".

The same 50 uV bridge signal is read through the on-chip path and
through a bond-wire/cable path to an external amplifier, under growing
ambient interference (mains-band pickup).  The bench reports output SNR
for both paths across interference amplitude.

Shape targets:
* the monolithic path wins by > 40 dB at every interference level;
* the external path degrades below usability (SNR < 10 dB) at the
  100 mV interference a lab bench routinely has; the monolithic path
  barely notices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sweep
from repro.circuits import Signal
from repro.core import compare_paths

FS = 100e3


def build_interference_table():
    bridge_signal = Signal.sine(10.0, 0.5, FS, amplitude=50e-6)

    def evaluate(interference_mv):
        interferer = Signal.sine(50.0, 0.5, FS, amplitude=interference_mv * 1e-3)
        mono, ext = compare_paths(bridge_signal, interferer)
        return {
            "mono_snr_dB": mono.snr_db,
            "ext_snr_dB": ext.snr_db,
            "advantage_dB": mono.snr_db - ext.snr_db,
        }

    return sweep("interf_mV", [1.0, 10.0, 100.0, 1000.0], evaluate)


def test_claim_monolithic_interference(benchmark):
    result = benchmark.pedantic(build_interference_table, rounds=1, iterations=1)
    print("\nCLM1: monolithic vs external readout under interference")
    print(result.format_table())

    mono = result.column("mono_snr_dB")
    ext = result.column("ext_snr_dB")
    # monolithic wins everywhere, massively
    assert np.all(mono - ext > 40.0)
    # at 100 mV interference: external unusable, monolithic fine
    idx = result.parameters.index(100.0)
    assert ext[idx] < 10.0
    assert mono[idx] > 40.0
    # both degrade monotonically with interference
    assert np.all(np.diff(ext) < 0.0)


if __name__ == "__main__":
    print(build_interference_table().format_table())
