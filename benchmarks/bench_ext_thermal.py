"""EXT1 — thermal error channels, and what referencing buys.

Extension experiment beyond the paper's figures: quantifies every
temperature channel of the chip (frequency TC, bimorph bending of
coated beams, bridge TCR-mismatch drift) and shows the two design
decisions the paper makes against them — bare-silicon beams for the
static system and reference cantilevers in the array.

Shape targets:
* bare silicon beam: zero bimorph drift; the coated (coil) variant
  drifts by tens of nm/K — larger than typical binding signals;
* bridge drift ~20 uV/K rides on *every* channel and cancels in the
  referenced difference;
* resonant frequency TC ~ -30 ppm/K, i.e. ~-0.9 Hz/K: visible on a
  counter at long gates, also cancelled by a reference oscillator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sweep
from repro.environment import (
    bimorph_tip_drift,
    bridge_offset_drift,
    frequency_drift,
    frequency_temperature_coefficient,
)
from repro.fabrication import PostCMOSFlow, fabricate_cantilever
from repro.mechanics.surface_stress import tip_deflection
from repro.units import um


def build_thermal_table(device):
    bare = device.geometry
    coated = fabricate_cantilever(
        um(500), um(100), PostCMOSFlow(keep_dielectrics_on_beam=True)
    ).geometry

    def evaluate(delta_t):
        return {
            "df_Hz": frequency_drift(bare, delta_t),
            "bare_drift_nm": bimorph_tip_drift(bare, delta_t) * 1e9,
            "coated_drift_nm": bimorph_tip_drift(coated, delta_t) * 1e9,
            "bridge_drift_uV": bridge_offset_drift(3.3, 2.5e-3, 0.01, delta_t)
            * 1e6,
        }

    return bare, coated, sweep("dT_K", [0.01, 0.1, 0.5, 1.0, 5.0], evaluate)


def test_ext_thermal_channels(benchmark, reference_device):
    bare, coated, table = benchmark.pedantic(
        build_thermal_table, args=(reference_device,), rounds=1, iterations=1
    )
    tcf = frequency_temperature_coefficient(bare)
    print("\nEXT1: thermal error channels "
          f"(frequency TC = {tcf * 1e6:.1f} ppm/K)")
    print(table.format_table())
    binding_signal_nm = abs(tip_deflection(bare, 5e-3)) * 1e9
    print(f"  (a 5 mN/m binding event deflects {binding_signal_nm:.2f} nm "
          "for scale)")

    # bare silicon: thermally inert in bending
    assert np.allclose(table.column("bare_drift_nm"), 0.0, atol=1e-6)
    # coated beam at 1 K drifts more than the binding signal
    idx = table.parameters.index(1.0)
    assert abs(table.column("coated_drift_nm")[idx]) > binding_signal_nm
    # frequency TC in the literature band for silicon
    assert -40e-6 < tcf < -25e-6
    # bridge drift at 1 K comparable to uV-scale binding signals
    assert table.column("bridge_drift_uV")[idx] > 5.0


def referencing_experiment(device):
    """Common-mode temperature ramp on active + reference channels."""
    from repro.biochem import AssayProtocol, get_analyte
    from repro.core import BiosensorChip, ChannelConfig
    from repro.units import nM

    chip = BiosensorChip(
        cantilever=device,
        channels=[
            ChannelConfig(analyte=get_analyte("igg"), label="active"),
            ChannelConfig(analyte=get_analyte("crp"), label="active2"),
            ChannelConfig(analyte=None, label="ref1"),
            ChannelConfig(analyte=None, label="ref2"),
        ],
        temperature_drift=100e-6,  # V/s at the output: a rough cell warm-up
    )
    chip.calibrate()
    protocol = AssayProtocol.injection(nM(20), baseline=120, exposure=900, wash=120)
    result = chip.run_array_assay(protocol, sample_interval=10.0, include_noise=False)
    raw_step = result.channel_outputs[0][-1] - result.channel_outputs[0][0]
    ref_step = result.referenced(0)[-1] - result.referenced(0)[0]
    return raw_step, ref_step


def test_ext_referencing_cancels_thermal(benchmark, reference_device):
    raw_step, ref_step = benchmark.pedantic(
        referencing_experiment, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nEXT1b: array referencing under a thermal ramp")
    print(f"  raw active-channel step       : {raw_step * 1e3:+8.2f} mV "
          "(drift-dominated)")
    print(f"  referenced step               : {ref_step * 1e3:+8.2f} mV "
          "(binding only)")
    # drift swamps the raw signal but vanishes in the difference
    assert abs(raw_step) > 3.0 * abs(ref_step)
    assert ref_step < 0.0  # the compressive binding signal survives


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    _, _, table = build_thermal_table(reference_cantilever())
    print(table.format_table())
