"""CLM4 — "high-pass filters in the feedback loop improve the
signal-to-noise ratio by damping the low-frequency noise originating in
the MOS-based Wheatstone bridge".

Two measurements:

1. **Noise-path transfer (open chain).**  The MOS bridge's synthesized
   thermal + 1/f noise is run through the loop's electrical chain
   (DDA -> [HP filters] -> phase conditioning -> VGA) with and without
   the high-pass filters, and the low-frequency residue at the limiter
   input is compared — the directly claimed effect, isolated from the
   oscillation line.
2. **Closed-loop stability.**  The full loop runs with noise injected,
   with and without the filters, and the counter's gate-to-gate Allan
   deviation is compared — the system-level payoff.

Shape targets: the filters cut the sub-kHz noise residue by an order of
magnitude and measurably improve the closed-loop frequency stability.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import allan_deviation, band_rms, fractional_frequencies
from repro.biochem import FunctionalizedSurface, get_analyte
from repro.circuits import FrequencyCounter, Signal
from repro.circuits.noise import amplifier_input_noise
from repro.core import ResonantCantileverSensor
from repro.core.presets import reference_cantilever
from repro.materials import get_liquid


def open_chain_noise_residue(device, with_highpass):
    """RMS LF noise at the limiter input for a pure bridge-noise input."""
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    sensor = ResonantCantileverSensor(surface, get_liquid("water"))
    loop = sensor.build_loop()
    fs = 1.0 / loop.resonator.timestep
    f0 = loop.resonator.natural_frequency

    rng = np.random.default_rng(7)
    n = int(0.5 * fs)
    corner = loop.bridge.corner_frequency()
    white = float(loop.bridge.noise_psd(np.asarray([f0]))[0])
    noise = Signal(
        amplifier_input_noise(white / (1.0 + corner / f0), corner, n, fs, rng),
        fs,
    )

    loop.dda.prepare(fs)
    stage = loop.dda.process(noise)
    if with_highpass:
        for hp in loop.highpasses:
            hp.reset()
            stage = hp.process(stage)
    loop.phase_lead.reset()
    stage = loop.phase_lead.process(stage)
    stage = loop.vga.process(stage)
    # the deep-LF band (< f0/30), where the 1/f shelf lives
    return band_rms(stage.settle(0.2), 5.0, 300.0)


def closed_loop_stability(device, with_highpass):
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    sensor = ResonantCantileverSensor(surface, get_liquid("water"))
    loop = sensor.build_loop()
    loop.include_bridge_noise = True
    if not with_highpass:
        loop.highpasses = []
    fs = 1.0 / loop.resonator.timestep
    loop.auto_gain(fs)
    record = loop.run(duration=0.3)
    counter = FrequencyCounter(gate_time=0.02)
    _, readings = counter.frequency_series(record.bridge_signal())
    readings = readings[3:]
    y = fractional_frequencies(readings, float(np.mean(readings)))
    return allan_deviation(y, 1)


def test_claim_hp_filters(benchmark, reference_device):
    def experiment():
        return (
            open_chain_noise_residue(reference_device, True),
            open_chain_noise_residue(reference_device, False),
            closed_loop_stability(reference_device, True),
            closed_loop_stability(reference_device, False),
        )

    lf_with, lf_without, sigma_with, sigma_without = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    print("\nCLM4: high-pass filters vs the MOS bridge's LF noise")
    print(f"  LF (<300 Hz) residue at limiter input, with HP   : "
          f"{lf_with * 1e6:9.3f} uV rms")
    print(f"  LF (<300 Hz) residue at limiter input, without HP: "
          f"{lf_without * 1e6:9.3f} uV rms")
    print(f"  closed-loop Allan dev (20 ms gates), with HP     : "
          f"{sigma_with:.3e}")
    print(f"  closed-loop Allan dev (20 ms gates), without HP  : "
          f"{sigma_without:.3e}")

    # the filters strip the LF residue by an order of magnitude
    assert lf_with < 0.1 * lf_without
    # and the closed-loop frequency stability improves
    assert sigma_with < 0.9 * sigma_without


if __name__ == "__main__":
    device = reference_cantilever()
    print(open_chain_noise_residue(device, True))
    print(open_chain_noise_residue(device, False))
