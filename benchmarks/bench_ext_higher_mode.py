"""EXT5 — higher-mode operation: mass responsivity for free.

Extension experiment: the same cantilever, the same loop architecture,
operated on vibration mode 2 instead of mode 1.  Higher modes buy mass
responsivity (f is larger, the fluid-loading penalty shrinks at higher
Reynolds number) without any fabrication change — the high-pass/
band-limiting choices in the Fig. 5 loop are what select the mode.

Shape targets:
* mode 2 sits ~6x above mode 1 in liquid with roughly double the Q;
* mass responsivity improves >4x, counter-limited LOD likewise;
* the identical loop architecture locks on mode 2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.biochem import FunctionalizedSurface, get_analyte
from repro.core import ResonantCantileverSensor
from repro.materials import get_liquid


def characterize_modes(device):
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    water = get_liquid("water")
    rows = []
    for mode in (1, 2):
        sensor = ResonantCantileverSensor(surface, water, mode=mode)
        mean_f, _ = sensor.measure_frequency(gate_time=0.02, gates=3)
        rows.append(
            {
                "mode": mode,
                "f_wet_Hz": sensor.fluid_mode.frequency,
                "Q": sensor.fluid_mode.quality_factor,
                "resp_mHz_per_pg": abs(sensor.mass_responsivity()) * 1e-15 * 1e3,
                "lod_pg_10s": sensor.minimum_detectable_mass(10.0) * 1e15,
                "loop_lock_Hz": mean_f,
            }
        )
    return rows


def test_ext_higher_mode(benchmark, reference_device):
    rows = benchmark.pedantic(
        characterize_modes, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nEXT5: mode-1 vs mode-2 operation in water")
    keys = list(rows[0])
    print("".join(f"{k:>17s}" for k in keys))
    for r in rows:
        print("".join(f"{r[k]:>17.5g}" for k in keys))

    m1, m2 = rows
    # frequency ratio compressed below the vacuum 6.27 by fluid loading
    assert 5.0 < m2["f_wet_Hz"] / m1["f_wet_Hz"] < 7.0
    # Q roughly doubles
    assert m2["Q"] > 1.5 * m1["Q"]
    # responsivity and LOD improve by > 4x
    assert m2["resp_mHz_per_pg"] > 4.0 * m1["resp_mHz_per_pg"]
    assert m2["lod_pg_10s"] < 0.25 * m1["lod_pg_10s"]
    # the unchanged loop locks on both modes
    for r in rows:
        assert r["loop_lock_Hz"] == pytest.approx(r["f_wet_Hz"], rel=0.02)


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    for row in characterize_modes(reference_cantilever()):
        print(row)
