"""ABL2 — ablation of the frequency-readout design: gate time and
counter architecture.

"The readout block mainly consists of a digital counter" — this bench
quantifies its central trade-off.  A synthetic oscillator tone at the
in-liquid operating point (8.9 kHz) with realistic phase jitter is read
by the gated (+/-1-count) counter and by a reciprocal counter across
gate times; errors are compared against the quantization bound and the
resulting mass LOD is tabulated.

Shape targets:
* gated-counter error ~ 1/T_gate (quantization-dominated);
* the reciprocal counter beats the gated one by orders of magnitude at
  short gates;
* the mass LOD implied by the gated counter improves linearly with
  gate time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sweep
from repro.biochem import FunctionalizedSurface, get_analyte
from repro.circuits import FrequencyCounter, ReciprocalCounter, Signal
from repro.core import ResonantCantileverSensor
from repro.materials import get_liquid

F_TRUE = 8893.7  # Hz, off-grid on purpose
FS = 400e3


def make_jittery_tone(duration, rng):
    t = np.arange(int(duration * FS)) / FS
    phase_noise = np.cumsum(rng.normal(0.0, 2e-4, len(t)))  # random-walk phase
    return Signal(np.sin(2 * np.pi * F_TRUE * t + phase_noise), FS)


def build_gate_table(device):
    rng = np.random.default_rng(11)
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    sensor = ResonantCantileverSensor(surface, get_liquid("water"))
    responsivity = abs(sensor.mass_responsivity())

    def evaluate(gate_time):
        tone = make_jittery_tone(duration=max(4.0 * gate_time, 0.5), rng=rng)
        gated = FrequencyCounter(gate_time=gate_time)
        recip = ReciprocalCounter(gate_time=gate_time)
        gated_err = abs(gated.measure_single(tone) - F_TRUE)
        recip_err = abs(recip.measure_single(tone) - F_TRUE)
        return {
            "gated_err_Hz": gated_err,
            "recip_err_Hz": recip_err,
            "quant_bound_Hz": 1.0 / gate_time,
            "mass_lod_pg": (1.0 / gate_time) / responsivity * 1e15,
        }

    return sweep("gate_s", [0.01, 0.03, 0.1, 0.3, 1.0], evaluate)


def test_abl_counter(benchmark, reference_device):
    result = benchmark.pedantic(
        build_gate_table, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nABL2: counter architecture vs gate time "
          f"(true frequency {F_TRUE} Hz, in-water sensor)")
    print(result.format_table())

    gated = result.column("gated_err_Hz")
    recip = result.column("recip_err_Hz")
    bound = result.column("quant_bound_Hz")
    # gated counter is quantization-limited: error within the +/-1 bound
    assert np.all(gated <= bound + 1e-9)
    # reciprocal counting wins at the short-gate end by a wide margin
    assert recip[0] < 0.1 * max(gated[0], 1e-12)
    # mass LOD improves linearly with gate time
    lod = result.column("mass_lod_pg")
    assert lod[0] / lod[-1] == pytest.approx(
        result.parameters[-1] / result.parameters[0], rel=1e-6
    )


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    print(build_gate_table(reference_cantilever()).format_table())
