"""CLM5 — "a non-linear amplifier limits the amplitude of the feedback
loop for stable operation".

Runs the loop with the designed tanh limiter against an ablated variant
whose limiter is replaced by a linear stage of the same small-signal
gain (the class-AB buffer's hard current clip then becomes the only
amplitude bound), and sweeps the VGA setting to show the limiter makes
the amplitude insensitive to excess loop gain.

Shape targets:
* with the limiter: amplitude settles, stays below the buffer clip, and
  moves only weakly (sub-proportionally) with extra VGA gain;
* without it: the drive slams the class-AB current limit — the
  amplitude is set by an unplanned hard clip (visible as drive-waveform
  distortion: the drive spends most of its time pinned at the rail).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.biochem import FunctionalizedSurface, get_analyte
from repro.circuits import Gain
from repro.core import ResonantCantileverSensor
from repro.core.presets import reference_cantilever
from repro.materials import get_liquid


def run_variant(device, use_limiter, extra_vga_steps=0):
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    sensor = ResonantCantileverSensor(surface, get_liquid("water"))
    loop = sensor.build_loop()
    if not use_limiter:
        loop.limiter = Gain(loop.limiter.small_signal_gain)
    fs = 1.0 / loop.resonator.timestep
    if use_limiter:
        loop.auto_gain(fs)
    setting = min(loop.vga.setting + extra_vga_steps, loop.vga.steps - 1)
    loop.vga.set_setting(setting)
    record = loop.run(duration=0.1)
    drive = record.drive_signal().settle(0.5)
    clip_fraction = float(
        np.mean(np.abs(drive.samples) > 0.98 * loop.buffer.max_output_voltage)
    )
    return record.steady_amplitude(), clip_fraction


def test_claim_limiter(benchmark, reference_device):
    def experiment():
        base = run_variant(reference_device, use_limiter=True)
        hot = run_variant(reference_device, use_limiter=True, extra_vga_steps=2)
        unlimited = run_variant(reference_device, use_limiter=False)
        return base, hot, unlimited

    base, hot, unlimited = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nCLM5: amplitude limiting (water, loop gain target 3)")
    print(f"  with limiter           : amp {base[0] * 1e9:7.1f} nm, "
          f"drive clipped {base[1] * 100:5.1f}% of the time")
    print(f"  with limiter, +5dB VGA : amp {hot[0] * 1e9:7.1f} nm, "
          f"drive clipped {hot[1] * 100:5.1f}% of the time")
    print(f"  limiter ablated        : amp {unlimited[0] * 1e9:7.1f} nm, "
          f"drive clipped {unlimited[1] * 100:5.1f}% of the time")

    # limiter keeps the drive off the class-AB current clip
    assert base[1] < 0.05
    # extra gain moves the amplitude sub-proportionally (5 dB = 1.78x)
    assert hot[0] / base[0] < 1.5
    # without the limiter the buffer clip takes over: drive pinned hard
    assert unlimited[1] > 0.3


if __name__ == "__main__":
    device = reference_cantilever()
    print(run_variant(device, True), run_variant(device, False))
