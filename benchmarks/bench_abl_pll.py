"""ABL5 — ablation of the frequency readout: counter vs PLL tracker.

The paper's readout "mainly consists of a digital counter".  This bench
races all three readout architectures on the very waveform the closed
Fig. 5 loop produces in water:

* gated counter (the paper's choice): resolution = 1/T_gate;
* reciprocal counter: edge-interpolation resolution, same gate;
* PLL tracker: continuous output, resolution set by loop bandwidth.

Shape targets: on the same 0.2 s record the gated counter is stuck on
its 50 Hz grid (20 ms gates), the reciprocal counter reaches sub-Hz, and
a 50 Hz-bandwidth PLL matches the reciprocal counter while *also*
providing a continuous trace (no gate latency) — at the price of more
digital hardware, the trade the paper's low-complexity counter made.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import zero_crossing_frequency
from repro.biochem import FunctionalizedSurface, get_analyte
from repro.circuits import FrequencyCounter, ReciprocalCounter
from repro.circuits.pll import PhaseLockedLoop
from repro.core import ResonantCantileverSensor
from repro.materials import get_liquid


def readout_comparison(device):
    surface = FunctionalizedSurface(get_analyte("igg"), device.geometry)
    sensor = ResonantCantileverSensor(surface, get_liquid("water"))
    loop = sensor.build_loop()
    record = loop.run(duration=0.25)
    waveform = record.bridge_signal().settle(0.2)

    truth = zero_crossing_frequency(waveform)
    amplitude = float(np.sqrt(2.0) * waveform.std())

    gated = FrequencyCounter(gate_time=0.02)
    gated_readings = [m.frequency for m in gated.measure(waveform)]
    gated_err = abs(float(np.mean(gated_readings)) - truth)

    recip = ReciprocalCounter(gate_time=0.02)
    recip_readings = [m.frequency for m in recip.measure(waveform)]
    recip_err = abs(float(np.mean(recip_readings)) - truth)

    pll = PhaseLockedLoop(
        center_frequency=truth * 0.99,
        loop_bandwidth=50.0,
        amplitude=amplitude,
    )
    reading = pll.track(waveform)
    pll_err = abs(reading.final_frequency() - truth)

    return {
        "truth": truth,
        "gated_err": gated_err,
        "gated_grid": gated.resolution,
        "recip_err": recip_err,
        "pll_err": pll_err,
        "pll_wander": reading.frequency_noise(),
        "pll_locked": reading.locked,
        "pll_settle": reading.settling_time,
    }


def test_abl_pll_vs_counters(benchmark, reference_device):
    r = benchmark.pedantic(
        readout_comparison, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nABL5: frequency-readout architectures on the live loop waveform")
    print(f"  loop oscillation (truth)   : {r['truth']:10.2f} Hz")
    print(f"  gated counter (20 ms)      : err {r['gated_err']:8.3f} Hz "
          f"(grid {r['gated_grid']:.0f} Hz)")
    print(f"  reciprocal counter (20 ms) : err {r['recip_err']:8.3f} Hz")
    print(f"  PLL (50 Hz loop)           : err {r['pll_err']:8.3f} Hz, "
          f"wander {r['pll_wander']:.3f} Hz, settle {r['pll_settle'] * 1e3:.1f} ms")

    assert r["pll_locked"]
    # gated counter is grid-limited
    assert r["gated_err"] <= r["gated_grid"]
    # reciprocal and PLL resolve far below the grid
    assert r["recip_err"] < 0.1 * r["gated_grid"]
    assert r["pll_err"] < 0.1 * r["gated_grid"]
    # the PLL settles in tens of milliseconds: continuous readout
    assert r["pll_settle"] < 0.1


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    print(readout_comparison(reference_cantilever()))
