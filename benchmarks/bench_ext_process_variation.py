"""EXT3 — process variation: "well-defined thickness" quantified.

Extension experiment on the paper's fabrication claim: the
electrochemical etch stop defines the beam thickness, but the n-well
depth itself varies a few percent across a wafer.  A Monte-Carlo run of
the full fabrication model shows what arrives at test: the resonant
frequencies spread by percent (so every die needs a frequency search at
bring-up — the open-loop sweep of EXT4), while the closed loop's
auto-gain absorbs the same spread without reconfiguration.

Ported to the batch engine: the three Monte-Carlo cases fan out over a
:class:`repro.engine.BatchExecutor` and memoize through a
:class:`repro.engine.ResultCache` (``--workers``/``--no-cache``), and
the parallel results are bit-identical to the serial ones because every
case carries its own seed.

Shape targets:
* frequency spread ~3% (sigma), matching the first-order analytic law
  ``sigma_f/f = sqrt(sigma_t^2 + (2 sigma_L)^2)``;
* the spread is dominated by the n-well depth knob, not lithography;
* every sampled device still starts up in the closed loop with the same
  VGA policy.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.config import REFERENCE_CANTILEVER
from repro.engine import BatchExecutor, ResultCache, StageTimer
from repro.fabrication import (
    ProcessCorners,
    expected_frequency_spread,
    monte_carlo_devices,
)
from repro.units import um

#: The three wafer-spread cases, in reporting order.
CASES: dict[str, ProcessCorners] = {
    "nominal": ProcessCorners(),
    "thickness_only": ProcessCorners(
        nwell_depth_sigma=0.03, length_sigma=0.0, width_sigma=0.0
    ),
    "lithography_only": ProcessCorners(
        nwell_depth_sigma=0.0, length_sigma=0.002, width_sigma=0.01
    ),
}


def monte_carlo_case(case: str, samples: int = 80):
    """One Monte-Carlo case of the reference beam (module-level: picklable)."""
    return monte_carlo_devices(
        um(REFERENCE_CANTILEVER.length_um),
        um(REFERENCE_CANTILEVER.width_um),
        CASES[case],
        samples=samples,
        seed=31,
    )


def run_monte_carlo(
    workers: int = 1,
    samples: int = 80,
    cache: ResultCache | None = None,
    timer: StageTimer | None = None,
):
    """All three cases through the engine; returns them in CASES order."""
    task = functools.partial(monte_carlo_case, samples=samples)
    timer = timer if timer is not None else StageTimer()
    with timer.stage(f"monte-carlo x{len(CASES)} (workers={workers})"):
        if cache is not None:
            keys = [cache.key_for(task, case) for case in CASES]
            cached = [cache.get(k) for k in keys]
            pending = [c for c, v in zip(CASES, cached) if v is cache.MISS]
            computed = iter(
                BatchExecutor(workers=workers).map(task, pending).values()
            )
            results = []
            for case, key, value in zip(CASES, keys, cached):
                if value is cache.MISS:
                    value = next(computed)
                    cache.put(key, value)
                results.append(value)
        else:
            results = BatchExecutor(workers=workers).map(task, CASES).values()
    return tuple(results)


def run_bench(
    workers: int = 1,
    samples: int = 80,
    cache: ResultCache | None = None,
    quiet: bool = False,
) -> dict[str, float]:
    """Full bench through the engine; returns the headline numbers."""
    timer = StageTimer()
    nominal, thickness_only, litho_only = run_monte_carlo(
        workers=workers, samples=samples, cache=cache, timer=timer
    )
    summary = nominal.summary()
    headline = {
        "f_mean_Hz": summary["f_mean_Hz"],
        "f_sigma_Hz": summary["f_sigma_Hz"],
        "f_spread_pct": summary["f_spread_ppm"] / 1e4,
        "k_mean_N_per_m": summary["k_mean_N_per_m"],
        "resp_sigma_pct": summary["resp_sigma_frac"] * 100,
        "thickness_spread_pct": thickness_only.frequency_spread_ppm() / 1e4,
        "litho_spread_pct": litho_only.frequency_spread_ppm() / 1e4,
        "analytic_pct": expected_frequency_spread() * 100,
    }
    if not quiet:
        print(f"\nEXT3: wafer-level device spread ({samples}-sample Monte Carlo)")
        print(f"  f mean / sigma      : {headline['f_mean_Hz'] / 1e3:8.2f} kHz / "
              f"{headline['f_sigma_Hz']:6.0f} Hz "
              f"({headline['f_spread_pct']:.2f} %)")
        print(f"  spring constant     : {headline['k_mean_N_per_m']:8.2f} N/m")
        print(f"  static responsivity : {headline['resp_sigma_pct']:.1f} % sigma")
        print(f"  thickness-only spread: {headline['thickness_spread_pct']:.2f} %")
        print(f"  lithography-only     : {headline['litho_spread_pct']:.2f} %")
        print(f"  analytic first order : {headline['analytic_pct']:.2f} %")
        print(timer.format_report())
    return headline


def test_ext_process_variation(benchmark):
    nominal, thickness_only, litho_only = benchmark.pedantic(
        run_monte_carlo, rounds=1, iterations=1
    )
    summary = nominal.summary()
    print("\nEXT3: wafer-level device spread (80-sample Monte Carlo)")
    print(f"  f mean / sigma      : {summary['f_mean_Hz'] / 1e3:8.2f} kHz / "
          f"{summary['f_sigma_Hz']:6.0f} Hz "
          f"({summary['f_spread_ppm'] / 1e4:.2f} %)")
    print(f"  spring constant     : {summary['k_mean_N_per_m']:8.2f} +/- "
          f"{summary['k_sigma_N_per_m']:.2f} N/m")
    print(f"  static responsivity : {summary['resp_sigma_frac'] * 100:.1f} % sigma")
    print(f"  thickness-only spread: "
          f"{thickness_only.frequency_spread_ppm() / 1e4:.2f} %")
    print(f"  lithography-only     : "
          f"{litho_only.frequency_spread_ppm() / 1e4:.2f} %")
    print(f"  analytic first order : {expected_frequency_spread() * 100:.2f} %")

    measured = summary["f_spread_ppm"] / 1e6
    assert measured == pytest.approx(expected_frequency_spread(), rel=0.35)
    # the etch-stop depth dominates over lithography
    assert (
        thickness_only.frequency_spread_ppm()
        > 3.0 * litho_only.frequency_spread_ppm()
    )


def test_ext_process_variation_parallel_matches_serial(benchmark):
    """The engine contract on real physics: workers>=2 is bit-identical."""
    serial = run_monte_carlo(workers=1)
    parallel = benchmark.pedantic(
        run_monte_carlo, kwargs={"workers": 2}, rounds=1, iterations=1
    )
    for s, p in zip(serial, parallel):
        np.testing.assert_array_equal(s.frequencies, p.frequencies)
        np.testing.assert_array_equal(s.spring_constants, p.spring_constants)
        np.testing.assert_array_equal(
            s.static_responsivities, p.static_responsivities
        )


def startup_across_corners():
    """Every corner device must start in the loop with the same policy."""
    from repro.config import REFERENCE_RESONANT_SENSOR, build

    results = []
    for depth_um in (4.7, 5.0, 5.3):  # +/-2 sigma corners
        sensor = build(
            REFERENCE_RESONANT_SENSOR.with_overrides(
                {"process.nwell_depth_um": depth_um, "liquid": "water"}
            )
        )
        mean_f, _ = sensor.measure_frequency(gate_time=0.05, gates=2)
        results.append((um(depth_um), sensor.fluid_mode.frequency, mean_f))
    return results


def test_ext_corners_all_start(benchmark):
    results = benchmark.pedantic(startup_across_corners, rounds=1, iterations=1)
    print("\nEXT3b: closed-loop startup across etch-stop corners")
    for depth, f_true, f_meas in results:
        print(f"  nwell {depth * 1e6:.1f} um: resonance {f_true:8.1f} Hz, "
              f"loop locks at {f_meas:8.1f} Hz")
        assert f_meas == pytest.approx(f_true, rel=0.02)


def main(argv=None) -> int:
    from _engine_cli import cache_from_args, engine_argument_parser, report_engine_stats

    parser = engine_argument_parser(
        "EXT3 Monte-Carlo process variation through the batch engine"
    )
    args = parser.parse_args(argv)
    cache = cache_from_args(args)
    timer = StageTimer()
    samples = 12 if args.smoke else 80
    with timer.stage("bench"):
        run_bench(workers=args.workers, samples=samples, cache=cache)
    report_engine_stats(timer, cache)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
