"""EXT3 — process variation: "well-defined thickness" quantified.

Extension experiment on the paper's fabrication claim: the
electrochemical etch stop defines the beam thickness, but the n-well
depth itself varies a few percent across a wafer.  A Monte-Carlo run of
the full fabrication model shows what arrives at test: the resonant
frequencies spread by percent (so every die needs a frequency search at
bring-up — the open-loop sweep of EXT4), while the closed loop's
auto-gain absorbs the same spread without reconfiguration.

Shape targets:
* frequency spread ~3% (sigma), matching the first-order analytic law
  ``sigma_f/f = sqrt(sigma_t^2 + (2 sigma_L)^2)``;
* the spread is dominated by the n-well depth knob, not lithography;
* every sampled device still starts up in the closed loop with the same
  VGA policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fabrication import (
    ProcessCorners,
    expected_frequency_spread,
    monte_carlo_devices,
)
from repro.units import um


def run_monte_carlo():
    nominal = monte_carlo_devices(um(500), um(100), samples=80, seed=31)
    thickness_only = monte_carlo_devices(
        um(500),
        um(100),
        ProcessCorners(nwell_depth_sigma=0.03, length_sigma=0.0, width_sigma=0.0),
        samples=80,
        seed=31,
    )
    litho_only = monte_carlo_devices(
        um(500),
        um(100),
        ProcessCorners(nwell_depth_sigma=0.0, length_sigma=0.002, width_sigma=0.01),
        samples=80,
        seed=31,
    )
    return nominal, thickness_only, litho_only


def test_ext_process_variation(benchmark):
    nominal, thickness_only, litho_only = benchmark.pedantic(
        run_monte_carlo, rounds=1, iterations=1
    )
    summary = nominal.summary()
    print("\nEXT3: wafer-level device spread (80-sample Monte Carlo)")
    print(f"  f mean / sigma      : {summary['f_mean_Hz'] / 1e3:8.2f} kHz / "
          f"{summary['f_sigma_Hz']:6.0f} Hz "
          f"({summary['f_spread_ppm'] / 1e4:.2f} %)")
    print(f"  spring constant     : {summary['k_mean_N_per_m']:8.2f} +/- "
          f"{summary['k_sigma_N_per_m']:.2f} N/m")
    print(f"  static responsivity : {summary['resp_sigma_frac'] * 100:.1f} % sigma")
    print(f"  thickness-only spread: "
          f"{thickness_only.frequency_spread_ppm() / 1e4:.2f} %")
    print(f"  lithography-only     : "
          f"{litho_only.frequency_spread_ppm() / 1e4:.2f} %")
    print(f"  analytic first order : {expected_frequency_spread() * 100:.2f} %")

    measured = summary["f_spread_ppm"] / 1e6
    assert measured == pytest.approx(expected_frequency_spread(), rel=0.35)
    # the etch-stop depth dominates over lithography
    assert (
        thickness_only.frequency_spread_ppm()
        > 3.0 * litho_only.frequency_spread_ppm()
    )


def startup_across_corners():
    """Every corner device must start in the loop with the same policy."""
    from repro.biochem import FunctionalizedSurface, get_analyte
    from repro.core import ResonantCantileverSensor
    from repro.fabrication import PostCMOSFlow, fabricate_cantilever
    from repro.materials import get_liquid

    water = get_liquid("water")
    igg = get_analyte("igg")
    results = []
    for depth in (4.7e-6, 5.0e-6, 5.3e-6):  # +/-2 sigma corners
        device = fabricate_cantilever(
            um(500), um(100), PostCMOSFlow(nwell_depth=depth)
        )
        sensor = ResonantCantileverSensor(
            FunctionalizedSurface(igg, device.geometry), water
        )
        mean_f, _ = sensor.measure_frequency(gate_time=0.05, gates=2)
        results.append((depth, sensor.fluid_mode.frequency, mean_f))
    return results


def test_ext_corners_all_start(benchmark):
    results = benchmark.pedantic(startup_across_corners, rounds=1, iterations=1)
    print("\nEXT3b: closed-loop startup across etch-stop corners")
    for depth, f_true, f_meas in results:
        print(f"  nwell {depth * 1e6:.1f} um: resonance {f_true:8.1f} Hz, "
              f"loop locks at {f_meas:8.1f} Hz")
        assert f_meas == pytest.approx(f_true, rel=0.02)


if __name__ == "__main__":
    nominal, _, _ = run_monte_carlo()
    print(nominal.summary())
