"""ABL3 — ablation of the first-stage architecture: chopper vs lock-in.

The paper chose a chopper-stabilized amplifier with a DC-biased bridge
(Fig. 4).  The classic alternative is AC bridge excitation with lock-in
detection.  A subtle point decides the comparison: the bridge's 1/f
noise is *resistance fluctuation* noise — it modulates whatever current
flows through the bridge, so it rides with the signal in **both**
architectures (through the chopper's modulators, and onto the AC
carrier alike).  Neither can remove it.  What both remove is the
*amplifier's* offset and 1/f noise.

The bench therefore races three front-ends on the same bridge and the
same preamp:

* naive DC chain (no modulation anywhere),
* the paper's chopper,
* AC bridge + lock-in.

Shape targets: the naive chain drowns in the preamp's offset and 1/f;
chopper and lock-in both reach the same bridge-noise-limited floor,
within a factor ~2 of each other — so the architectures tie on noise,
and the chopper's lack of a sine generator (power, area) explains the
paper's choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import band_rms
from repro.circuits import (
    ACBridgeReadout,
    Amplifier,
    Chain,
    ChopperAmplifier,
    LowPassFilter,
    Signal,
)
from repro.circuits.noise import amplifier_input_noise
from repro.core.presets import static_bridge

FS = 200e3
DURATION = 2.0
BAND = (0.7, 50.0)


def make_preamp(seed):
    return Amplifier(
        gain=100.0,
        gbw=2e6,
        input_offset=2e-3,
        noise_density=25e-9,
        noise_corner=2e3,
        rails=None,
        rng=np.random.default_rng(seed),
    )


def run_architectures():
    bridge = static_bridge(seed=42)
    rng = np.random.default_rng(7)
    corner = bridge.corner_frequency()
    white = float(bridge.noise_psd(np.asarray([1e5]))[0])
    n = int(DURATION * FS)
    # bridge resistance-fluctuation noise, expressed as output voltage
    # at DC bias; identical fractional unbalance in every architecture
    v_bridge_noise = amplifier_input_noise(white, corner, n, FS, rng)
    v_offset = bridge.offset_voltage()
    bridge_out = Signal(v_offset + v_bridge_noise, FS)
    unbalance = Signal(
        (v_offset + v_bridge_noise) / bridge.bias_voltage, FS
    )

    naive = Chain([make_preamp(1), LowPassFilter(50.0, order=2)])
    naive_out = naive.process(bridge_out).settle(0.3)

    chopper = Chain(
        [ChopperAmplifier(make_preamp(1), 10e3), LowPassFilter(50.0, order=2)]
    )
    chopper_out = chopper.process(bridge_out).settle(0.3)

    lockin = ACBridgeReadout(
        bias_amplitude=bridge.bias_voltage,
        carrier_frequency=10e3,
        output_cutoff=50.0,
        preamp=make_preamp(1),
    )
    lockin_out = lockin.process(unbalance).settle(0.3)

    return {
        "naive_noise": band_rms(naive_out, *BAND),
        "chopper_noise": band_rms(chopper_out, *BAND),
        "lockin_noise": band_rms(lockin_out, *BAND),
        "naive_dc": naive_out.mean(),
        "chopper_dc": chopper_out.mean(),
        "lockin_dc": lockin_out.mean(),
        "bridge_offset_amplified": v_offset * 100.0,
    }


def test_abl_lockin_vs_chopper(benchmark):
    r = benchmark.pedantic(run_architectures, rounds=1, iterations=1)
    print("\nABL3: first-stage architectures on the same bridge + preamp "
          "(0.7-50 Hz band)")
    print(f"  naive DC chain : noise {r['naive_noise'] * 1e6:8.2f} uV rms, "
          f"DC {r['naive_dc'] * 1e3:+8.2f} mV")
    print(f"  chopper (paper): noise {r['chopper_noise'] * 1e6:8.2f} uV rms, "
          f"DC {r['chopper_dc'] * 1e3:+8.2f} mV")
    print(f"  AC + lock-in   : noise {r['lockin_noise'] * 1e6:8.2f} uV rms, "
          f"DC {r['lockin_dc'] * 1e3:+8.2f} mV")
    print(f"  (bridge mismatch x gain = "
          f"{r['bridge_offset_amplified'] * 1e3:+.1f} mV appears in every "
          "architecture; the offset DAC exists for it)")

    # the naive chain carries the amplifier offset (0.2 V) on top of the
    # bridge term; the modulated architectures carry only the bridge term
    # (scaled by their carrier-frequency gain droop, 0.6-1.0)
    amp_offset_at_output = 2e-3 * 100.0
    assert abs(r["naive_dc"] - r["bridge_offset_amplified"]) == pytest.approx(
        amp_offset_at_output, rel=0.1
    )
    for key in ("chopper_dc", "lockin_dc"):
        gain_factor = r[key] / r["bridge_offset_amplified"]
        assert 0.6 < gain_factor <= 1.0
    # both modulated architectures beat the naive chain's 1/f...
    assert r["chopper_noise"] < 0.7 * r["naive_noise"]
    assert r["lockin_noise"] < 0.7 * r["naive_noise"]
    # ...and tie with each other at the bridge-noise floor
    ratio = r["lockin_noise"] / r["chopper_noise"]
    assert 0.5 < ratio < 2.0


if __name__ == "__main__":
    print(run_architectures())
