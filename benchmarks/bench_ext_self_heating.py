"""EXT9 — bridge self-heating: the hidden cost of the bias voltage.

Extension experiment: the released cantilever is a near-perfect thermal
insulator, so the static bridge's ~1 mW heats the very transducer it
reads.  Sensitivity scales with the bias (V_b), heating with its square
(V_b^2/R) — a genuine design trade the paper's architecture addresses
three separate ways, all quantified here:

* the resonant bridge sits at the clamped edge: zero on-beam power;
* the mux scan gives each static bridge a ~25 % duty cycle;
* operation in liquid cools the beam convectively.

The error currency is Section EXT1's bridge-drift channel: each kelvin
of (uncompensated) rise is worth ~21 uV of offset drift, a signal-sized
error — but because the reference beams carry *identical* bridges at
*identical* duty, referencing cancels self-heating as common mode too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sweep
from repro.environment import bridge_self_heating, thermal_time_constant
from repro.environment.temperature import bridge_offset_drift
from repro.transduction import DiffusedResistor, matched_bridge


def build_bias_table(device):
    geometry = device.geometry
    element = DiffusedResistor(nominal_resistance=10e3)

    def evaluate(bias):
        bridge = matched_bridge(element, bias_voltage=bias)
        report = bridge_self_heating(
            geometry, bridge.power_dissipation(), duty_cycle=0.25
        )
        rise = report.effective_wet_rise
        return {
            "sens_uV_per_MPa": bridge.sensitivity() * 1e12,
            "power_mW": bridge.power_dissipation() * 1e3,
            "wet_rise_K": rise,
            "drift_uV": bridge_offset_drift(bias, 2.5e-3, 0.01, rise) * 1e6,
        }

    return sweep("bias_V", [0.5, 1.0, 2.0, 3.3, 5.0], evaluate)


def test_ext_self_heating_bias_trade(benchmark, reference_device):
    table = benchmark.pedantic(
        build_bias_table, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nEXT9: bridge bias trade-off (distributed bridge, 25% duty, "
          "water-cooled)")
    print(table.format_table())
    tau = thermal_time_constant(reference_device.geometry)
    print(f"  beam thermal time constant: {tau * 1e3:.2f} ms "
          "(fast vs assays, slow vs the chopper)")

    sens = table.column("sens_uV_per_MPa")
    rise = table.column("wet_rise_K")
    bias = np.asarray(table.parameters)
    # sensitivity linear in bias, heating quadratic
    assert sens[-1] / sens[0] == pytest.approx(bias[-1] / bias[0], rel=1e-3)
    assert rise[-1] / rise[0] == pytest.approx((bias[-1] / bias[0]) ** 2, rel=1e-3)
    # at the paper's 3.3 V the duty-cycled wet rise is a fraction of a K
    idx = table.parameters.index(3.3)
    assert 0.05 < rise[idx] < 1.0


def architecture_comparison(device):
    geometry = device.geometry
    from repro.core.presets import resonant_bridge, static_bridge

    rows = []
    static = static_bridge(mismatch_sigma=0.0)
    for label, power, duty, on_beam in (
        ("static, DC bias", static.power_dissipation(), 1.0, 1.0),
        ("static, mux 25%", static.power_dissipation(), 0.25, 1.0),
        ("resonant @ clamp", resonant_bridge(mismatch_sigma=0.0).power_dissipation(), 1.0, 0.0),
    ):
        report = bridge_self_heating(
            geometry, power, duty_cycle=duty, on_beam_fraction=on_beam
        )
        rows.append(
            {
                "config": label,
                "power_mW": power * 1e3,
                "rise_K": report.effective_wet_rise,
            }
        )
    return rows


def test_ext_self_heating_architectures(benchmark, reference_device):
    rows = benchmark.pedantic(
        architecture_comparison, args=(reference_device,), rounds=1, iterations=1
    )
    print("\nEXT9b: self-heating by architecture (in water)")
    print(f"{'configuration':>18s} {'power [mW]':>11s} {'rise [K]':>9s}")
    for r in rows:
        print(f"{r['config']:>18s} {r['power_mW']:>11.2f} {r['rise_K']:>9.3f}")
    print("  (reference beams carry identical bridges at identical duty: "
          "referencing cancels this channel as common mode)")

    dc, muxed, resonant = rows
    assert muxed["rise_K"] == pytest.approx(dc["rise_K"] / 4.0)
    assert resonant["rise_K"] == 0.0
    assert dc["rise_K"] > 0.5  # the un-mitigated case really is Kelvin-scale


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    print(build_bias_table(reference_cantilever()).format_table())
