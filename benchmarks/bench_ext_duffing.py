"""EXT11 — Duffing nonlinearity: why the amplitude must be *constant*.

Extension experiment sharpening CLM5.  At finite amplitude the beam
stiffens (geometric nonlinearity), so the oscillation frequency depends
on the oscillation amplitude — the backbone curve.  Consequences:

* the amplitude-to-frequency slope converts any amplitude drift into a
  fake binding signal: at the loop's 340 nm operating point, a 1 %
  amplitude change mimics tens of picograms;
* the bench sweeps the operating amplitude and tabulates the backbone
  shift, the AM-to-FM gain, and the fake-mass equivalent of a 1 %
  amplitude drift — the quantitative spec for the limiter's amplitude
  stability;
* it also verifies the time-domain Duffing integrator against the
  analytic backbone and reports the bistability (critical) amplitude.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sweep, zero_crossing_frequency
from repro.circuits import Signal
from repro.fluidics import immersed_mode
from repro.materials import get_liquid
from repro.mechanics import mass_responsivity
from repro.mechanics.beam import spring_constant
from repro.mechanics.duffing import (
    DuffingResonator,
    amplitude_to_frequency_slope,
    critical_amplitude,
    cubic_stiffness,
)


def build_backbone_table(device):
    geometry = device.geometry
    k = spring_constant(geometry)
    k3 = cubic_stiffness(geometry)
    f0 = 27521.3
    responsivity = abs(mass_responsivity(geometry))

    def evaluate(amp_nm):
        a = amp_nm * 1e-9
        duffing = DuffingResonator.from_geometry(
            geometry, quality_factor=200.0, steps_per_cycle=60
        )
        f_pred = duffing.backbone(a)
        slope = amplitude_to_frequency_slope(f0, k, k3, a)
        fake_mass_pg = slope * 0.01 * a / responsivity * 1e15
        return {
            "df_backbone_Hz": f_pred - duffing.natural_frequency,
            "dfda_Hz_per_nm": slope * 1e-9,
            "fake_pg_per_1pct": fake_mass_pg,
        }

    return sweep("amp_nm", [50.0, 150.0, 340.0, 700.0, 1500.0], evaluate)


def verify_integrator(device):
    geometry = device.geometry
    duffing = DuffingResonator.from_geometry(
        geometry, quality_factor=500.0, steps_per_cycle=80
    )
    a0 = 1.5e-6
    duffing.reset(displacement=a0)
    n = int(30 / (duffing.natural_frequency * duffing.timestep))
    x = duffing.run(np.zeros(n))
    head = Signal(x[: n // 6], 1.0 / duffing.timestep)
    f_meas = zero_crossing_frequency(head)
    f_pred = duffing.backbone(a0)
    return f_meas, f_pred, duffing.natural_frequency


def test_ext_duffing(benchmark, reference_device):
    def experiment():
        return (
            build_backbone_table(reference_device),
            verify_integrator(reference_device),
        )

    table, (f_meas, f_pred, f_lin) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    geometry = reference_device.geometry
    a_c = critical_amplitude(geometry, quality_factor=200.0)
    print("\nEXT11: Duffing backbone and AM-to-FM conversion "
          "(vacuum mode 1, alpha = 0.4)")
    print(table.format_table())
    print(f"  integrator check at 1.5 um: measured {f_meas:.1f} Hz vs "
          f"backbone {f_pred:.1f} Hz (linear {f_lin:.1f} Hz)")
    print(f"  bistability (critical) amplitude at Q = 200: "
          f"{a_c * 1e9:.0f} nm")

    # the integrator reproduces the analytic backbone
    assert f_meas == pytest.approx(f_pred, rel=0.03)
    assert f_pred > f_lin * 1.005
    # backbone shift grows quadratically
    shift = table.column("df_backbone_Hz")
    amps = np.asarray(table.parameters)
    assert shift[2] / shift[0] == pytest.approx((amps[2] / amps[0]) ** 2, rel=0.01)
    # at the loop's ~340 nm point, 1% amplitude drift fakes picograms
    idx = table.parameters.index(340.0)
    assert table.column("fake_pg_per_1pct")[idx] > 1.0
    # and the critical amplitude is sub-thickness: a real design bound
    assert a_c < geometry.thickness


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    print(build_backbone_table(reference_cantilever()).format_table())
