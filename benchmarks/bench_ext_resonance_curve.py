"""EXT4 — open-loop bring-up: the resonance curve behind Fig. 2.

Extension experiment: the swept-sine characterization every die gets
before its loop is closed.  Drives the fluid-loaded cantilever model
with tones across the resonance, fits the Lorentzian, and
cross-validates the extracted (f0, Q) against the Sader prediction and
the closed-loop lock — three independent paths to the same numbers.

Shape targets:
* swept-sine fit recovers the Sader-model f0 within 1% and Q within
  15% in water;
* in-air sweep of the same beam shows the textbook contrast: ~3x higher
  f0 and a Q tens of times larger (viscous air damping still limits it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import measure_resonance
from repro.fluidics import immersed_mode
from repro.materials import get_liquid
from repro.mechanics import ModalResonator, analyze_modes


def characterize(device, liquid_name):
    geometry = device.geometry
    liquid = get_liquid(liquid_name)
    fl = immersed_mode(geometry, liquid)
    mode = analyze_modes(geometry, 1)[0]
    resonator = ModalResonator(
        effective_mass=fl.effective_mass,
        effective_stiffness=mode.effective_stiffness,
        quality_factor=fl.quality_factor,
        timestep=1.0 / (fl.frequency * 40),
    )
    span = 0.5 if fl.quality_factor < 20 else 0.05
    fit = measure_resonance(resonator, span_factor=span, points=31)
    return fl, fit


def test_ext_resonance_curve_water(benchmark, reference_device):
    fl, fit = benchmark.pedantic(
        characterize, args=(reference_device, "water"), rounds=1, iterations=1
    )
    print("\nEXT4: swept-sine bring-up in water")
    print(f"  Sader model : f0 = {fl.frequency:8.1f} Hz, "
          f"Q = {fl.quality_factor:6.2f}")
    print(f"  sweep + fit : f0 = {fit.frequency:8.1f} Hz, "
          f"Q = {fit.quality_factor:6.2f} "
          f"(residual {fit.residual_rms:.2e})")
    assert fit.frequency == pytest.approx(fl.frequency, rel=0.01)
    assert fit.quality_factor == pytest.approx(fl.quality_factor, rel=0.15)


def test_ext_resonance_curve_air_vs_water(benchmark, reference_device):
    def both():
        return (
            characterize(reference_device, "air"),
            characterize(reference_device, "water"),
        )

    (air_fl, air_fit), (water_fl, water_fit) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print("\nEXT4b: air vs water characterization of the same beam")
    print(f"  air  : f0 = {air_fit.frequency / 1e3:6.2f} kHz, "
          f"Q = {air_fit.quality_factor:8.1f}")
    print(f"  water: f0 = {water_fit.frequency / 1e3:6.2f} kHz, "
          f"Q = {water_fit.quality_factor:8.1f}")

    assert air_fit.frequency > 2.5 * water_fit.frequency
    assert air_fit.quality_factor > 20.0 * water_fit.quality_factor


if __name__ == "__main__":
    from repro.core.presets import reference_cantilever

    print(characterize(reference_cantilever(), "water"))
