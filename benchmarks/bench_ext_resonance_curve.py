"""EXT4 — open-loop bring-up: the resonance curve behind Fig. 2.

Extension experiment: the swept-sine characterization every die gets
before its loop is closed.  Drives the fluid-loaded cantilever model
with tones across the resonance, fits the Lorentzian, and
cross-validates the extracted (f0, Q) against the Sader prediction and
the closed-loop lock — three independent paths to the same numbers.

Ported to the batch engine: each liquid's characterization is an
independent grid point, fanned out over a
:class:`repro.engine.BatchExecutor` and memoized through a
:class:`repro.engine.ResultCache` (``--workers``/``--no-cache``).

Shape targets:
* swept-sine fit recovers the Sader-model f0 within 1% and Q within
  15% in water;
* in-air sweep of the same beam shows the textbook contrast: ~3x higher
  f0 and a Q tens of times larger (viscous air damping still limits it).
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.analysis import measure_resonance
from repro.engine import BatchExecutor, ResultCache, StageTimer
from repro.fluidics import immersed_mode
from repro.materials import get_liquid
from repro.mechanics import ModalResonator, analyze_modes


def characterize(device, liquid_name, points: int = 31):
    geometry = device.geometry
    liquid = get_liquid(liquid_name)
    fl = immersed_mode(geometry, liquid)
    mode = analyze_modes(geometry, 1)[0]
    resonator = ModalResonator(
        effective_mass=fl.effective_mass,
        effective_stiffness=mode.effective_stiffness,
        quality_factor=fl.quality_factor,
        timestep=1.0 / (fl.frequency * 40),
    )
    span = 0.5 if fl.quality_factor < 20 else 0.05
    fit = measure_resonance(resonator, span_factor=span, points=points)
    return fl, fit


def characterize_reference(liquid_name: str, points: int = 31):
    """Characterize the reference beam in one liquid (picklable task).

    Rebuilds the (deterministic) reference cantilever from its spec
    inside the worker so the task ships only its parameter, not a
    device object.
    """
    from repro.config import (
        REFERENCE_CANTILEVER,
        REFERENCE_PROCESS,
        build_cantilever,
    )

    device = build_cantilever(REFERENCE_CANTILEVER, REFERENCE_PROCESS)
    return characterize(device, liquid_name, points=points)


def characterize_grid(
    liquids,
    workers: int = 1,
    points: int = 31,
    cache: ResultCache | None = None,
) -> dict[str, tuple]:
    """(fl, fit) per liquid through the engine, keyed by liquid name."""
    task = functools.partial(characterize_reference, points=points)
    liquids = list(liquids)
    results: dict[str, tuple] = {}
    pending = list(liquids)
    keys = {}
    if cache is not None:
        keys = {name: cache.key_for(task, name) for name in liquids}
        pending = []
        for name in liquids:
            value = cache.get(keys[name])
            if value is cache.MISS:
                pending.append(name)
            else:
                results[name] = value
    if pending:
        computed = BatchExecutor(workers=workers).map(task, pending).values()
        for name, value in zip(pending, computed):
            results[name] = value
            if cache is not None:
                cache.put(keys[name], value)
    return {name: results[name] for name in liquids}


def run_bench(
    workers: int = 1,
    points: int = 31,
    cache: ResultCache | None = None,
    quiet: bool = False,
) -> dict[str, float]:
    """Air + water bring-up through the engine; returns headline numbers."""
    timer = StageTimer()
    with timer.stage(f"characterize x2 (workers={workers})"):
        grid = characterize_grid(
            ["air", "water"], workers=workers, points=points, cache=cache
        )
    (air_fl, air_fit) = grid["air"]
    (water_fl, water_fit) = grid["water"]
    headline = {
        "water_f0_Hz": water_fit.frequency,
        "water_Q": water_fit.quality_factor,
        "water_model_f0_Hz": water_fl.frequency,
        "air_f0_Hz": air_fit.frequency,
        "air_Q": air_fit.quality_factor,
    }
    if not quiet:
        print("\nEXT4: swept-sine bring-up through the engine")
        print(f"  water: f0 = {headline['water_f0_Hz']:8.1f} Hz "
              f"(model {headline['water_model_f0_Hz']:8.1f} Hz), "
              f"Q = {headline['water_Q']:6.2f}")
        print(f"  air  : f0 = {headline['air_f0_Hz'] / 1e3:6.2f} kHz, "
              f"Q = {headline['air_Q']:8.1f}")
        print(timer.format_report())
    return headline


def test_ext_resonance_curve_water(benchmark, reference_device):
    fl, fit = benchmark.pedantic(
        characterize, args=(reference_device, "water"), rounds=1, iterations=1
    )
    print("\nEXT4: swept-sine bring-up in water")
    print(f"  Sader model : f0 = {fl.frequency:8.1f} Hz, "
          f"Q = {fl.quality_factor:6.2f}")
    print(f"  sweep + fit : f0 = {fit.frequency:8.1f} Hz, "
          f"Q = {fit.quality_factor:6.2f} "
          f"(residual {fit.residual_rms:.2e})")
    assert fit.frequency == pytest.approx(fl.frequency, rel=0.01)
    assert fit.quality_factor == pytest.approx(fl.quality_factor, rel=0.15)


def test_ext_resonance_curve_air_vs_water(benchmark):
    def both():
        grid = characterize_grid(["air", "water"], workers=2)
        return grid["air"], grid["water"]

    (air_fl, air_fit), (water_fl, water_fit) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print("\nEXT4b: air vs water characterization of the same beam")
    print(f"  air  : f0 = {air_fit.frequency / 1e3:6.2f} kHz, "
          f"Q = {air_fit.quality_factor:8.1f}")
    print(f"  water: f0 = {water_fit.frequency / 1e3:6.2f} kHz, "
          f"Q = {water_fit.quality_factor:8.1f}")

    assert air_fit.frequency > 2.5 * water_fit.frequency
    assert air_fit.quality_factor > 20.0 * water_fit.quality_factor


def test_ext_resonance_grid_parallel_matches_serial():
    """Engine contract: the fanned-out grid equals the serial one."""
    serial = characterize_grid(["air", "water"], workers=1)
    parallel = characterize_grid(["air", "water"], workers=2)
    for name in ("air", "water"):
        s_fit, p_fit = serial[name][1], parallel[name][1]
        assert p_fit.frequency == s_fit.frequency
        assert p_fit.quality_factor == s_fit.quality_factor


def main(argv=None) -> int:
    from _engine_cli import cache_from_args, engine_argument_parser, report_engine_stats

    parser = engine_argument_parser(
        "EXT4 swept-sine bring-up through the batch engine"
    )
    args = parser.parse_args(argv)
    cache = cache_from_args(args)
    timer = StageTimer()
    with timer.stage("bench"):
        run_bench(workers=args.workers, points=15 if args.smoke else 31,
                  cache=cache)
    report_engine_stats(timer, cache)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
