"""ABL4 — ablation of the array floorplan: shared vs individual membranes.

The paper's 4-cantilever array must decide how the backside KOH mask is
drawn: one shared membrane under the whole row, or one pit per beam.
The 54.74-degree sidewalls (each pit opening exceeds its membrane by
~1.5 wafer thicknesses per axis) decide it:

* at practical pitches the four individual pits either merge outright
  or leave an illegally thin silicon ridge (backside min-spacing);
* legal individual pits force a ~2 mm beam pitch and pay ~2.5x the die
  area of the shared membrane.

The bench sweeps the pitch and prints the DRC verdict and die area per
option — a physical-design trade-off study run entirely on the model.
"""

from __future__ import annotations

import pytest

from repro.fabrication import (
    array_layout,
    die_area_for_array,
    post_cmos_rule_deck,
)
from repro.units import um


def floorplan_study():
    deck = post_cmos_rule_deck()
    rows = []
    for pitch_mm in (0.16, 0.5, 1.1, 2.0):
        for shared in (True, False):
            layout = array_layout(
                um(500), um(100), pitch=pitch_mm * 1e-3, shared_membrane=shared
            )
            violations = deck.check(layout)
            rows.append(
                {
                    "pitch_mm": pitch_mm,
                    "membrane": "shared" if shared else "individual",
                    "drc": "clean" if not violations else f"{len(violations)} viol.",
                    "die_mm2": die_area_for_array(layout) * 1e6,
                }
            )
    return rows


def test_abl_membrane_floorplan(benchmark):
    rows = benchmark.pedantic(floorplan_study, rounds=1, iterations=1)
    print("\nABL4: array backside floorplan (4 beams, 500 x 100 um)")
    print(f"{'pitch [mm]':>11s} {'membrane':>12s} {'DRC':>10s} {'die [mm^2]':>11s}")
    for r in rows:
        print(f"{r['pitch_mm']:>11.2f} {r['membrane']:>12s} "
              f"{r['drc']:>10s} {r['die_mm2']:>11.2f}")

    by_key = {(r["pitch_mm"], r["membrane"]): r for r in rows}
    # shared membranes are DRC-clean at every pitch
    for pitch in (0.16, 0.5, 1.1, 2.0):
        assert by_key[(pitch, "shared")]["drc"] == "clean"
    # individual pits at 1.1 mm: illegal ridge
    assert by_key[(1.1, "individual")]["drc"] != "clean"
    # legal individual pits (2 mm pitch) cost much more die than the
    # compact shared option
    compact_shared = by_key[(0.16, "shared")]["die_mm2"]
    legal_individual = by_key[(2.0, "individual")]["die_mm2"]
    assert legal_individual > 2.0 * compact_shared


if __name__ == "__main__":
    for row in floorplan_study():
        print(row)
