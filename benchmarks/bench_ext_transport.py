"""EXT7 — mass-transport limitation of the assay kinetics.

Extension experiment: the Langmuir model assumes the surface sees the
bulk concentration; a real flow cell depletes it.  The bench sweeps the
boundary-layer thickness (i.e. the flow rate) and reports the
Damkoehler number, the early-time binding-rate penalty, and the time to
half coverage — the numbers that decide a cartridge's required flow.

Shape targets:
* Da crosses 1 around delta ~ 25 um for IgG-class kinetics;
* the initial binding rate saturates at the flux limit for thick
  layers (no amount of affinity helps);
* time-to-half-coverage stretches by ~(1 + Da).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sweep
from repro.biochem import (
    TransportModel,
    get_analyte,
    initial_binding_rate,
    initial_rate_transport_limited,
    transport_limited_transient,
)
from repro.units import nM


def build_transport_table():
    igg = get_analyte("igg")
    c = nM(10)
    free_rate = initial_binding_rate(igg, c)

    def evaluate(delta_um):
        transport = TransportModel(boundary_layer=delta_um * 1e-6)
        da = transport.damkoehler(igg)
        rate = initial_rate_transport_limited(igg, transport, c)
        # time to theta = 0.2 by direct integration
        t = np.linspace(1.0, 3.0e4, 400)
        theta = transport_limited_transient(igg, transport, c, t)
        reached = t[theta >= 0.2]
        t_fifth = float(reached[0]) if len(reached) else float("inf")
        return {
            "Da": da,
            "rate_rel": rate / free_rate,
            "t_20pct_s": t_fifth,
        }

    return sweep("delta_um", [1.0, 5.0, 25.0, 100.0, 400.0], evaluate)


def test_ext_transport_limitation(benchmark):
    table = benchmark.pedantic(build_transport_table, rounds=1, iterations=1)
    print("\nEXT7: boundary-layer (flow) dependence of IgG binding at 10 nM")
    print(table.format_table())

    da = table.column("Da")
    rate = table.column("rate_rel")
    t20 = table.column("t_20pct_s")
    # Da crosses unity inside the swept range
    assert da[0] < 1.0 < da[-1]
    # rate penalty grows monotonically with the layer
    assert np.all(np.diff(rate) < 0.0)
    # heavy limitation cuts the initial rate by > 5x
    assert rate[-1] < 0.2
    # binding time stretches correspondingly
    assert t20[-1] > 3.0 * t20[0]


if __name__ == "__main__":
    print(build_transport_table().format_table())
