"""Benchmark harness configuration.

Every bench prints the table/series it regenerates (run with ``-s`` to
see them, or read the captured output), asserts the *shape* of the
result — who wins, which direction, roughly what factor — and times the
underlying computation with pytest-benchmark.

Heavy benches (closed-loop time simulations) use
``benchmark.pedantic(..., rounds=1)`` so the suite stays fast.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # benches live outside the main testpaths; make sure they are found
    # when invoked as `pytest benchmarks/ --benchmark-only`
    pass


@pytest.fixture(scope="session")
def reference_device():
    """The fabricated reference cantilever shared by all benches."""
    from repro.core.presets import reference_cantilever

    return reference_cantilever()
