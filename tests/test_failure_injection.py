"""Failure injection: the system must fail loudly, not lie quietly.

A simulation library's worst bug is producing plausible numbers from a
broken configuration.  These tests break the system on purpose — dead
bridges, wrong loop phase, saturated chains, self-terminating etch pits,
starved gain — and assert that the failure is either *detected* (raises,
flags) or *visible* (output unmistakably degenerate), never silently
wrong.
"""

import numpy as np
import pytest

from repro.errors import (
    CircuitError,
    FabricationError,
    OscillationError,
)


class TestDeadBridge:
    def test_zero_sensitivity_loop_cannot_be_gained_up(self, make_loop):
        """A bridge that senses nothing must refuse auto-gain, not
        oscillate on numerical noise."""
        loop = make_loop()
        loop.displacement_to_stress = 1e-30  # bond-wire open, essentially
        fs = 1.0 / loop.resonator.timestep
        with pytest.raises(CircuitError):
            loop.auto_gain(fs)

    def test_dead_loop_produces_no_oscillation(self, make_loop):
        loop = make_loop()
        loop.limiter.small_signal_gain = 1e-6
        record = loop.run(duration=0.03)
        assert record.steady_amplitude() < 1e-10


class TestWrongLoopPhase:
    def test_inverted_feedback_never_starts(self, make_loop):
        """Sign-flipped feedback (swapped bridge wires) adds damping
        instead of removing it: the loop must stay quiet."""
        from repro.circuits import Gain

        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        healthy = loop.run(duration=0.05).steady_amplitude()

        inverted = make_loop()
        inverted.auto_gain(fs)
        inverted.vga.set_setting(inverted.vga.setting)  # same gain
        # insert the sign flip after the VGA
        original_step = inverted.vga.step
        inverted.vga.step = lambda x: -original_step(x)
        record = inverted.run(duration=0.05)
        assert record.steady_amplitude() < 1e-3 * healthy

    def test_missing_phase_lead_flagged_by_analysis(self, make_loop):
        from repro.circuits import Passthrough
        from repro.feedback import analyze

        loop = make_loop()
        stub = Passthrough()
        stub.response = lambda f, fs: np.ones(len(np.atleast_1d(f)))
        stub.prepare = lambda fs: None
        loop.phase_lead = stub
        fs = 1.0 / loop.resonator.timestep
        with pytest.raises(OscillationError):
            analyze(loop, fs)


class TestSaturatedChain:
    def test_uncalibrated_offset_rails_visibly(self, igg_surface):
        """Skipping offset calibration must leave the output pinned at a
        rail — an unmistakable state, not a subtly wrong signal."""
        from repro.core import StaticCantileverSensor
        from repro.core.presets import static_bridge

        sensor = StaticCantileverSensor(
            igg_surface, bridge=static_bridge(mismatch_sigma=0.02, seed=3)
        )
        # no calibrate_offset(); a 10x-worse mismatch bridge
        out = sensor.output_for_stress(0.0)
        post_rails = 2.5 * sensor.blocks["gain2"].gain * 0.0 + 2.5
        # predicted linear output exceeds any rail: the model's
        # output_for_stress is linear, so detect the inconsistency
        assert abs(out) > post_rails or abs(out) > 1.0

    def test_overdriven_waveform_clips_at_rails(self, igg_surface):
        from repro.circuits import Signal
        from repro.core import StaticCantileverSensor

        sensor = StaticCantileverSensor(igg_surface)
        huge = Signal.sine(10.0, 0.2, sensor.sample_rate, amplitude=0.1)
        out = sensor.process_waveform(huge)
        assert out.peak() <= 2.5 + 1e-9


class TestFabricationFailures:
    def test_etch_without_nwell_refuses(self):
        from repro.fabrication import KOHEtch, WaferCrossSection, cmos_08um_stack

        stack = [l for l in cmos_08um_stack() if l.name != "nwell"]
        section = WaferCrossSection(stack)
        with pytest.raises(FabricationError):
            KOHEtch().apply(section)

    def test_self_terminating_pit_refuses(self):
        from repro.fabrication import KOHEtch

        with pytest.raises(FabricationError):
            KOHEtch.membrane_for_mask_opening(200e-6, 520e-6)

    def test_mechanics_refuses_unreleased_die(self):
        from repro.fabrication import (
            WaferCrossSection,
            cmos_08um_stack,
            stack_from_cross_section,
        )

        section = WaferCrossSection(cmos_08um_stack())
        with pytest.raises(FabricationError):
            stack_from_cross_section(section)


class TestCounterOnGarbage:
    def test_counter_on_dc_reads_zero(self):
        from repro.circuits import FrequencyCounter, Signal

        counter = FrequencyCounter(gate_time=0.05)
        flat = Signal.constant(1.0, 0.2, 100e3)
        assert counter.measure_single(flat) == 0.0

    def test_counter_on_noise_with_hysteresis_reads_low(self, rng):
        from repro.circuits import FrequencyCounter, Signal

        noise = Signal(0.01 * rng.standard_normal(20000), 100e3)
        counter = FrequencyCounter(gate_time=0.1, hysteresis=0.2)
        assert counter.measure_single(noise) == 0.0


class TestStarvedAssay:
    def test_zero_concentration_zero_signal(self, igg_surface):
        from repro.biochem import AssayProtocol
        from repro.core import StaticCantileverSensor

        sensor = StaticCantileverSensor(igg_surface)
        sensor.calibrate_offset()
        protocol = AssayProtocol.injection(0.0, baseline=60, exposure=300, wash=60)
        result = sensor.run_assay(protocol, 10.0, include_noise=False)
        assert np.all(result.coverage == 0.0)
        assert abs(result.output_step(5)) < 1e-9


class TestWeakMagnet:
    """Assembly tolerance: the package magnet may be misplaced or weak."""

    def test_loop_auto_gain_absorbs_half_field(self, geometry, water, pmos_bridge):
        from repro.actuation import ActuationCoil, LorentzActuator, PermanentMagnet
        from repro.feedback import ResonantFeedbackLoop, displacement_to_stress_gain
        from repro.fluidics import immersed_mode
        from repro.mechanics import ModalResonator, analyze_modes

        fl = immersed_mode(geometry, water)
        mode = analyze_modes(geometry, 1)[0]

        def lock_frequency(field):
            resonator = ModalResonator(
                fl.effective_mass,
                mode.effective_stiffness,
                fl.quality_factor,
                1.0 / (fl.frequency * 40),
            )
            actuator = LorentzActuator(
                ActuationCoil(geometry=geometry), PermanentMagnet(field=field)
            )
            loop = ResonantFeedbackLoop(
                resonator,
                pmos_bridge,
                displacement_to_stress_gain(geometry),
                actuator,
                include_bridge_noise=False,
            )
            fs = 1.0 / resonator.timestep
            loop.auto_gain(fs)
            record = loop.run(0.06)
            from repro.analysis import zero_crossing_frequency

            return zero_crossing_frequency(
                record.displacement_signal().settle(0.5)
            ), loop.vga.gain_db

        f_nominal, gain_nominal = lock_frequency(0.25)
        f_weak, gain_weak = lock_frequency(0.125)
        # the loop still locks at the same frequency...
        assert f_weak == pytest.approx(f_nominal, rel=1e-2)
        # ...by spending more VGA gain (~6 dB for half the field)
        assert gain_weak > gain_nominal + 4.0
