"""Wheatstone bridge: balance, sensitivity, mismatch, noise, power."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.transduction import DiffusedResistor, WheatstoneBridge, matched_bridge
from repro.transduction.noise import HOOGE_ALPHA_DIFFUSED, HOOGE_ALPHA_MOS, johnson_psd


@pytest.fixture()
def element():
    return DiffusedResistor(nominal_resistance=10e3)


@pytest.fixture()
def bridge(element):
    return matched_bridge(element, bias_voltage=3.3)


class TestBalance:
    def test_balanced_bridge_zero_output(self, bridge):
        assert bridge.output_voltage(0.0) == pytest.approx(0.0, abs=1e-15)

    def test_common_mode_half_supply(self, bridge):
        assert bridge.output(0.0).common_mode == pytest.approx(3.3 / 2.0)

    def test_full_bridge_output_formula(self, bridge, element):
        # small-signal full bridge: V_out = V_b * dR/R
        sigma = 1e6
        dr = element.fractional_change(sigma)
        assert bridge.output_voltage(sigma) == pytest.approx(
            3.3 * dr, rel=1e-3
        )

    def test_sensitivity_positive_default(self, bridge):
        assert bridge.sensitivity() > 0.0

    def test_half_bridge_half_sensitivity(self, element):
        full = matched_bridge(element)
        half = WheatstoneBridge(
            elements=(element,) * 4, active=(0, 1, 0, -1), bias_voltage=3.3
        )
        assert half.sensitivity() == pytest.approx(full.sensitivity() / 2.0, rel=1e-3)

    def test_sensitivity_proportional_to_bias(self, element):
        b1 = matched_bridge(element, bias_voltage=1.0)
        b3 = matched_bridge(element, bias_voltage=3.0)
        assert b3.sensitivity() == pytest.approx(3.0 * b1.sensitivity(), rel=1e-6)


class TestMismatch:
    def test_mismatch_produces_offset(self, element):
        b = matched_bridge(element, mismatch_sigma=2e-3, seed=7)
        assert b.offset_voltage() != 0.0
        # mV scale for 0.2 % mismatch on 3.3 V
        assert abs(b.offset_voltage()) < 20e-3

    def test_offset_reproducible_with_seed(self, element):
        b1 = matched_bridge(element, mismatch_sigma=2e-3, seed=11)
        b2 = matched_bridge(element, mismatch_sigma=2e-3, seed=11)
        assert b1.offset_voltage() == pytest.approx(b2.offset_voltage())

    def test_explicit_mismatch(self, element):
        b = WheatstoneBridge(
            elements=(element,) * 4, mismatch=(1e-3, 0.0, 0.0, 0.0)
        )
        # R1 high by 0.1% -> left mid-node lower -> negative output
        assert b.offset_voltage() < 0.0


class TestElectrical:
    def test_output_resistance_equals_element(self, bridge):
        assert bridge.output_resistance() == pytest.approx(10e3)

    def test_supply_current(self, bridge):
        assert bridge.supply_current() == pytest.approx(2.0 * 3.3 / 20e3)

    def test_power(self, bridge):
        assert bridge.power_dissipation() == pytest.approx(3.3 * bridge.supply_current())

    def test_construction_guards(self, element):
        with pytest.raises(CircuitError):
            WheatstoneBridge(elements=(element,) * 3)
        with pytest.raises(CircuitError):
            WheatstoneBridge(elements=(element,) * 4, active=(2, 0, 0, 0))
        with pytest.raises(CircuitError):
            WheatstoneBridge(elements=(element,) * 4, mismatch=(0.0,))


class TestNoise:
    def test_white_floor_is_johnson(self, bridge):
        f = np.asarray([1e6])  # far above any 1/f corner
        psd = bridge.noise_psd(f)[0]
        assert psd == pytest.approx(johnson_psd(10e3), rel=0.05)

    def test_low_frequency_dominated_by_flicker(self, bridge):
        psd_low = bridge.noise_psd(np.asarray([0.1]))[0]
        psd_high = bridge.noise_psd(np.asarray([1e6]))[0]
        assert psd_low > 2.0 * psd_high

    def test_corner_frequency_positive(self, bridge):
        assert bridge.corner_frequency() > 0.0

    def test_mos_corner_far_above_diffused(self, element):
        from repro.transduction import MOSBridgeTransistor

        diffused = matched_bridge(element, hooge_alpha=HOOGE_ALPHA_DIFFUSED)
        mos = matched_bridge(MOSBridgeTransistor(), hooge_alpha=HOOGE_ALPHA_MOS)
        assert mos.corner_frequency() > 50.0 * diffused.corner_frequency()

    def test_rms_grows_with_band(self, bridge):
        narrow = bridge.noise_rms(1.0, 10.0)
        wide = bridge.noise_rms(1.0, 1e4)
        assert wide > narrow

    def test_rms_band_validation(self, bridge):
        with pytest.raises(CircuitError):
            bridge.noise_rms(10.0, 1.0)
