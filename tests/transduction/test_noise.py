"""Johnson and Hooge noise models."""

import math

import numpy as np
import pytest

from repro.constants import BOLTZMANN
from repro.transduction.noise import (
    corner_frequency,
    element_noise_psd,
    hooge_psd,
    integrate_psd,
    johnson_psd,
    rms_in_band,
)


class TestJohnson:
    def test_4ktr(self):
        assert johnson_psd(10e3, 300.0) == pytest.approx(
            4.0 * BOLTZMANN * 300.0 * 10e3
        )

    def test_standard_value(self):
        # 1 kOhm at 300 K: ~4.07 nV/rtHz
        en = math.sqrt(johnson_psd(1e3, 300.0))
        assert en == pytest.approx(4.07e-9, rel=0.01)

    def test_linear_in_temperature(self):
        assert johnson_psd(1e3, 600.0) == pytest.approx(2.0 * johnson_psd(1e3, 300.0))


class TestHooge:
    def test_one_over_f_shape(self):
        f = np.asarray([1.0, 10.0, 100.0])
        psd = hooge_psd(1.0, 1e8, f, 2e-6)
        assert psd[0] / psd[1] == pytest.approx(10.0)
        assert psd[1] / psd[2] == pytest.approx(10.0)

    def test_scales_with_bias_squared(self):
        f = np.asarray([1.0])
        p1 = hooge_psd(1.0, 1e8, f, 2e-6)[0]
        p2 = hooge_psd(2.0, 1e8, f, 2e-6)[0]
        assert p2 == pytest.approx(4.0 * p1)

    def test_inverse_in_carriers(self):
        f = np.asarray([1.0])
        small = hooge_psd(1.0, 1e6, f, 2e-6)[0]
        large = hooge_psd(1.0, 1e8, f, 2e-6)[0]
        assert small == pytest.approx(100.0 * large)

    def test_zero_bias_silent(self):
        psd = hooge_psd(0.0, 1e8, np.asarray([1.0]), 2e-6)
        assert psd[0] == 0.0

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            hooge_psd(1.0, 1e8, np.asarray([0.0]), 2e-6)


class TestCombined:
    def test_total_is_sum(self):
        f = np.asarray([10.0])
        total = element_noise_psd(10e3, 1.0, 1e8, f, 2e-6)[0]
        assert total == pytest.approx(
            johnson_psd(10e3) + hooge_psd(1.0, 1e8, f, 2e-6)[0]
        )

    def test_corner_definition(self):
        fc = corner_frequency(10e3, 1.0, 1e8, 2e-6)
        f = np.asarray([fc])
        assert hooge_psd(1.0, 1e8, f, 2e-6)[0] == pytest.approx(
            johnson_psd(10e3), rel=1e-9
        )

    def test_corner_zero_without_bias(self):
        assert corner_frequency(10e3, 0.0, 1e8, 2e-6) == 0.0


class TestIntegration:
    def test_white_rms(self):
        f = np.linspace(1.0, 101.0, 5001)
        psd = np.full_like(f, 1e-12)
        assert integrate_psd(psd, f) == pytest.approx(math.sqrt(1e-12 * 100.0), rel=1e-6)

    def test_closed_form_band_rms(self):
        value = rms_in_band(10e3, 1.0, 1e8, 2e-6, 1.0, 100.0)
        thermal = johnson_psd(10e3) * 99.0
        flicker = 2e-6 * 1.0 / 1e8 * math.log(100.0)
        assert value == pytest.approx(math.sqrt(thermal + flicker))

    def test_band_validation(self):
        with pytest.raises(ValueError):
            rms_in_band(1e3, 1.0, 1e8, 2e-6, 100.0, 1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            integrate_psd(np.ones(3), np.ones(4))
