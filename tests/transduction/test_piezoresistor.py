"""Diffused piezoresistor element."""

import pytest

from repro.materials.silicon import piezo_coefficients
from repro.transduction import DiffusedResistor, sheet_resistance_to_resistance


@pytest.fixture()
def resistor():
    return DiffusedResistor(nominal_resistance=10e3)


class TestResistance:
    def test_nominal_at_zero_stress(self, resistor):
        assert resistor.resistance() == pytest.approx(10e3)

    def test_longitudinal_stress_increases_p_type(self, resistor):
        # <110> p-type: tensile longitudinal stress raises R
        assert resistor.resistance(sigma_longitudinal=10e6) > 10e3

    def test_transverse_stress_decreases(self, resistor):
        assert resistor.resistance(sigma_transverse=10e6) < 10e3

    def test_fractional_change_matches_coefficients(self, resistor):
        c = piezo_coefficients("<110>", "p")
        assert resistor.fractional_change(1e6, 2e6) == pytest.approx(
            c.longitudinal * 1e6 + c.transverse * 2e6
        )

    def test_temperature_term(self, resistor):
        assert resistor.fractional_change(0.0, 0.0, delta_temperature=10.0) == (
            pytest.approx(resistor.tcr * 10.0)
        )

    def test_temperature_swamps_small_signals(self, resistor):
        # 1 K of drift exceeds the signal of ~10 kPa stress: the reason
        # for bridges and reference beams
        thermal = abs(resistor.fractional_change(0.0, 0.0, 1.0))
        signal = abs(resistor.fractional_change(1e4))
        assert thermal > 100.0 * signal


class TestCarriersAndPower:
    def test_carrier_count(self, resistor):
        expected = 1e24 * 40e-6 * 4e-6 * 0.6e-6
        assert resistor.carrier_count == pytest.approx(expected)

    def test_power(self, resistor):
        assert resistor.power_dissipation(3.3) == pytest.approx(3.3**2 / 10e3)


class TestSheetResistance:
    def test_squares(self):
        assert sheet_resistance_to_resistance(1.5e3, 10.0) == pytest.approx(15e3)

    def test_invalid(self):
        with pytest.raises(Exception):
            sheet_resistance_to_resistance(-1.0, 10.0)
