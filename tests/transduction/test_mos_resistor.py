"""PMOS-in-triode bridge element: the paper's MOS-vs-diffusion claims."""

import pytest

from repro.errors import CircuitError
from repro.transduction import DiffusedResistor, MOSBridgeTransistor


@pytest.fixture()
def pmos():
    return MOSBridgeTransistor()


class TestTriodeModel:
    def test_on_resistance_formula(self, pmos):
        beta = pmos.mobility * pmos.oxide_capacitance * pmos.width / pmos.length
        expected = 1.0 / (
            beta * (pmos.gate_overdrive - pmos.drain_source_voltage / 2.0)
        )
        assert pmos.nominal_resistance == pytest.approx(expected)

    def test_wider_device_lower_resistance(self):
        narrow = MOSBridgeTransistor(width=5e-6)
        wide = MOSBridgeTransistor(width=20e-6)
        assert wide.nominal_resistance < narrow.nominal_resistance

    def test_more_overdrive_lower_resistance(self):
        weak = MOSBridgeTransistor(gate_overdrive=1.0)
        strong = MOSBridgeTransistor(gate_overdrive=2.0)
        assert strong.nominal_resistance < weak.nominal_resistance

    def test_saturation_bias_rejected(self):
        with pytest.raises(CircuitError):
            MOSBridgeTransistor(gate_overdrive=0.2, drain_source_voltage=0.15)


class TestPaperClaims:
    def test_higher_resistivity_than_diffusion(self, pmos):
        diffused = DiffusedResistor(nominal_resistance=10e3)
        assert pmos.nominal_resistance > diffused.nominal_resistance

    def test_lower_power_than_diffusion(self, pmos):
        diffused = DiffusedResistor(nominal_resistance=10e3)
        v = 3.3
        assert pmos.power_dissipation(v) < diffused.power_dissipation(v)

    def test_fewer_carriers_than_diffusion(self, pmos):
        # the flip side: far fewer carriers -> far worse 1/f noise
        diffused = DiffusedResistor(nominal_resistance=10e3)
        assert pmos.carrier_count < diffused.carrier_count / 5.0


class TestStressResponse:
    def test_stress_modulates_resistance(self, pmos):
        assert pmos.resistance(sigma_longitudinal=10e6) != pmos.nominal_resistance

    def test_same_sign_as_diffused(self, pmos):
        # both use p-carrier <110> piezo coefficients
        diffused = DiffusedResistor(nominal_resistance=10e3)
        s_mos = pmos.fractional_change(1e6)
        s_dif = diffused.fractional_change(1e6)
        assert s_mos * s_dif > 0.0

    def test_linearity(self, pmos):
        assert pmos.fractional_change(2e6) == pytest.approx(
            2.0 * pmos.fractional_change(1e6)
        )
