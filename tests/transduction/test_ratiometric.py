"""Supply sensitivity and ratiometric readout of the bridge."""

import numpy as np
import pytest

from repro.transduction import DiffusedResistor, matched_bridge


@pytest.fixture()
def bridge():
    return matched_bridge(
        DiffusedResistor(nominal_resistance=10e3),
        bias_voltage=3.3,
        mismatch_sigma=2e-3,
        seed=8,
    )


class TestSupplySensitivity:
    def test_output_linear_in_supply(self, bridge):
        sigma = 1e6
        nominal = bridge.output_with_supply(sigma, 3.3)
        drooped = bridge.output_with_supply(sigma, 3.0)
        assert drooped == pytest.approx(nominal * 3.0 / 3.3)

    def test_nominal_supply_recovers_output(self, bridge):
        sigma = 1e6
        assert bridge.output_with_supply(sigma, 3.3) == pytest.approx(
            bridge.output_voltage(sigma)
        )

    def test_ripple_modulates_offset_too(self, bridge):
        # even at zero stress, supply ripple moves the output: a fake
        # signal for any absolute-referenced readout
        quiet = bridge.output_with_supply(0.0, 3.3)
        rippled = bridge.output_with_supply(0.0, 3.33)
        assert rippled != pytest.approx(quiet, abs=1e-9)

    def test_one_percent_ripple_rivals_small_signals(self, bridge):
        # 1% supply ripple on the ~1 mV mismatch offset produces a fake
        # signal the size of a ~5 kPa stress event
        fake = abs(
            bridge.output_with_supply(0.0, 3.3 * 1.01)
            - bridge.output_with_supply(0.0, 3.3)
        )
        small_signal = abs(
            bridge.output_voltage(5e3) - bridge.output_voltage(0.0)
        )
        assert fake > 0.5 * small_signal


class TestRatiometric:
    def test_ratiometric_supply_independent(self, bridge):
        sigma = 1e6
        readings = [
            bridge.ratiometric_reading(sigma, vb) for vb in (2.8, 3.3, 3.6)
        ]
        assert readings[0] == pytest.approx(readings[1], rel=1e-12)
        assert readings[1] == pytest.approx(readings[2], rel=1e-12)

    def test_ratiometric_still_measures_stress(self, bridge):
        low = bridge.ratiometric_reading(0.0, 3.3)
        high = bridge.ratiometric_reading(1e6, 3.3)
        assert high != pytest.approx(low, abs=1e-12)

    def test_equals_fractional_unbalance(self, bridge):
        sigma = 5e5
        assert bridge.ratiometric_reading(sigma, 3.1) == pytest.approx(
            bridge.output_voltage(sigma) / 3.3
        )

    def test_invalid_supply(self, bridge):
        with pytest.raises(Exception):
            bridge.output_with_supply(0.0, -1.0)
