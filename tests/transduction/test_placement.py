"""Bridge placement: the paper's Section 3 design choice, quantified."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.transduction import (
    CLAMPED_EDGE,
    DISTRIBUTED,
    BridgePlacement,
    bridge_average_stress,
    mode_curvature,
    placement_signal_noise_gain,
    resonant_surface_stress_profile,
    static_surface_stress_profile,
)


class TestModeCurvature:
    def test_maximum_at_clamp(self):
        xi = np.linspace(0.0, 1.0, 500)
        kappa = np.abs(mode_curvature(1, xi))
        assert np.argmax(kappa) == 0

    def test_zero_at_tip(self):
        kappa = mode_curvature(1, np.asarray([1.0]))
        assert kappa[0] == pytest.approx(0.0, abs=1e-6)

    def test_out_of_range(self):
        with pytest.raises(GeometryError):
            mode_curvature(1, np.asarray([1.2]))


class TestProfiles:
    def test_static_profile_uniform(self, geometry):
        xi = np.linspace(0.0, 1.0, 100)
        profile = static_surface_stress_profile(geometry, 1e-3, xi)
        assert np.all(profile == profile[0])

    def test_resonant_profile_decays_along_beam(self, geometry):
        xi = np.linspace(0.0, 1.0, 100)
        profile = np.abs(
            resonant_surface_stress_profile(geometry, 100e-9, xi)
        )
        assert profile[0] > 10.0 * profile[-2]

    def test_resonant_profile_scales_with_amplitude(self, geometry):
        xi = np.asarray([0.05])
        p1 = resonant_surface_stress_profile(geometry, 100e-9, xi)[0]
        p2 = resonant_surface_stress_profile(geometry, 200e-9, xi)[0]
        assert p2 == pytest.approx(2.0 * p1)


class TestPlacementChoice:
    def test_paper_constants(self):
        assert CLAMPED_EDGE.extent == pytest.approx(0.1)
        assert DISTRIBUTED.extent == pytest.approx(0.9)

    def test_invalid_placement(self):
        with pytest.raises(GeometryError):
            BridgePlacement(start=0.5, end=0.5)

    def test_static_mode_placement_irrelevant_for_signal(self, geometry):
        clamp = bridge_average_stress(
            geometry, CLAMPED_EDGE, operation="static", surface_stress=1e-3
        )
        spread = bridge_average_stress(
            geometry, DISTRIBUTED, operation="static", surface_stress=1e-3
        )
        assert spread == pytest.approx(clamp, rel=1e-9)

    def test_resonant_mode_prefers_clamp(self, geometry):
        clamp = abs(
            bridge_average_stress(
                geometry, CLAMPED_EDGE, operation="resonant", tip_amplitude=1e-7
            )
        )
        spread = abs(
            bridge_average_stress(
                geometry, DISTRIBUTED, operation="resonant", tip_amplitude=1e-7
            )
        )
        assert clamp > 2.0 * spread

    def test_missing_arguments_raise(self, geometry):
        with pytest.raises(GeometryError):
            bridge_average_stress(geometry, CLAMPED_EDGE, operation="static")
        with pytest.raises(GeometryError):
            bridge_average_stress(geometry, CLAMPED_EDGE, operation="resonant")
        with pytest.raises(GeometryError):
            bridge_average_stress(
                geometry, CLAMPED_EDGE, operation="magic", surface_stress=1.0
            )


class TestSignalNoiseTradeoff:
    def test_static_distributed_wins_snr(self, geometry):
        # signal flat, noise falls with area: bigger extent, better SNR
        s_small, n_small = placement_signal_noise_gain(
            geometry, CLAMPED_EDGE, operation="static", surface_stress=1e-3
        )
        s_big, n_big = placement_signal_noise_gain(
            geometry, DISTRIBUTED, operation="static", surface_stress=1e-3
        )
        assert s_big / n_big > s_small / n_small

    def test_resonant_same_area_clamp_wins(self, geometry):
        # for a fixed bridge area (fixed noise), position is everything:
        # the clamped edge captures several times the mid/tip signal
        placements = [
            CLAMPED_EDGE,
            BridgePlacement(start=0.45, end=0.55),
            BridgePlacement(start=0.85, end=0.95),
        ]
        signals = [
            abs(
                bridge_average_stress(
                    geometry, p, operation="resonant", tip_amplitude=1e-7
                )
            )
            for p in placements
        ]
        assert signals[0] > 2.5 * signals[1]
        assert signals[1] > 5.0 * signals[2]
