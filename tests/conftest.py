"""Shared fixtures for the repro test suite.

Expensive objects (fabricated cantilevers, characterized readout chains,
fluid-loaded modes) are session-scoped: they are deterministic, and
rebuilding them per test would dominate the suite's runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.biochem import FunctionalizedSurface, get_analyte
from repro.core.presets import (
    reference_cantilever,
    reference_geometry,
    resonant_bridge,
    static_bridge,
)
from repro.materials import get_liquid
from repro.mechanics import CantileverGeometry
from repro.units import um


@pytest.fixture(scope="session")
def geometry() -> CantileverGeometry:
    """The reference 500 x 100 x 5 um silicon cantilever."""
    return CantileverGeometry.uniform(
        length=um(500), width=um(100), thickness=um(5)
    )


@pytest.fixture(scope="session")
def fabricated():
    """The reference cantilever produced by the full process flow."""
    return reference_cantilever()


@pytest.fixture(scope="session")
def water():
    """Water at room temperature."""
    return get_liquid("water")


@pytest.fixture(scope="session")
def igg_surface(geometry) -> FunctionalizedSurface:
    """IgG-functionalized reference cantilever surface."""
    return FunctionalizedSurface(analyte=get_analyte("igg"), geometry=geometry)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh, seeded random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def diffused_bridge():
    """Mismatch-free diffused bridge (deterministic outputs)."""
    return static_bridge(mismatch_sigma=0.0)


@pytest.fixture(scope="session")
def pmos_bridge():
    """Mismatch-free PMOS bridge."""
    return resonant_bridge(mismatch_sigma=0.0)


@pytest.fixture(scope="session")
def water_resonator(geometry, water):
    """Fluid-loaded mode-1 resonator of the reference beam in water."""
    from repro.fluidics import immersed_mode
    from repro.mechanics import ModalResonator, analyze_modes

    fl = immersed_mode(geometry, water)
    mode = analyze_modes(geometry, 1)[0]
    return ModalResonator(
        effective_mass=fl.effective_mass,
        effective_stiffness=mode.effective_stiffness,
        quality_factor=fl.quality_factor,
        timestep=1.0 / (fl.frequency * 40),
    )


@pytest.fixture()
def make_loop(geometry, water, pmos_bridge):
    """Factory for fresh loops (loops carry state; tests need their own)."""
    from repro.actuation import ActuationCoil, LorentzActuator, PermanentMagnet
    from repro.feedback import ResonantFeedbackLoop, displacement_to_stress_gain
    from repro.fluidics import immersed_mode
    from repro.mechanics import ModalResonator, analyze_modes

    def _make(quality_factor=None, include_noise=False, **kwargs):
        fl = immersed_mode(geometry, water)
        mode = analyze_modes(geometry, 1)[0]
        q = quality_factor if quality_factor is not None else fl.quality_factor
        resonator = ModalResonator(
            effective_mass=fl.effective_mass,
            effective_stiffness=mode.effective_stiffness,
            quality_factor=q,
            timestep=1.0 / (fl.frequency * 40),
        )
        actuator = LorentzActuator(
            ActuationCoil(geometry=geometry), PermanentMagnet()
        )
        return ResonantFeedbackLoop(
            resonator=resonator,
            bridge=pmos_bridge,
            displacement_to_stress=displacement_to_stress_gain(geometry),
            actuator=actuator,
            include_bridge_noise=include_noise,
            **kwargs,
        )

    return _make
