"""Golden suite: the fused kernel reproduces the reference loop exactly.

The kernel's contract is *bit identity* — every lowered op replicates
the reference ``step()`` arithmetic in the same floating-point order,
so every backend must return ``np.array_equal`` waveforms (far stricter
than the 1e-12 relative tolerance the acceptance bar asks for).  The
suite pins this across the reference device specs, spec variations
(liquids, modes, loop rates), noise on/off, the multi-mode loop, and
both fused engines (compiled C and generated Python).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine.kernel as kernel_mod
from repro.config import REFERENCE_RESONANT_SENSOR
from repro.core import ResonantCantileverSensor
from repro.engine import kernel_info, numba_available, reset_kernel_info

DURATION = 0.01
WAVEFORMS = (
    "displacement",
    "bridge_voltage",
    "limiter_input",
    "limiter_output",
    "drive_voltage",
)

SPEC_VARIANTS = {
    "reference": {},
    "serum": {"liquid": "serum"},
    "glycerol": {"liquid": "glycerol_40pct"},
    "mode2": {"loop.mode": 2},
    "fast-sampling": {"loop.steps_per_cycle": 80},
}


def build_spec_loop(variant: str):
    spec = REFERENCE_RESONANT_SENSOR
    if SPEC_VARIANTS[variant]:
        spec = spec.with_overrides(SPEC_VARIANTS[variant])
    return ResonantCantileverSensor.from_spec(spec).build_loop()


def assert_records_equal(ref, other, backend):
    __tracebackhide__ = True
    for name in WAVEFORMS:
        a = np.asarray(getattr(ref, name))
        b = np.asarray(getattr(other, name))
        if not np.array_equal(a, b):
            worst = float(np.max(np.abs(a - b)))
            pytest.fail(
                f"{backend}.{name} differs from reference "
                f"(max abs diff {worst:.3e})"
            )


class TestGoldenSpecs:
    """Reference == fused == interp on every reference-spec variant."""

    @pytest.mark.parametrize("variant", sorted(SPEC_VARIANTS))
    def test_fused_matches_reference(self, variant):
        ref = build_spec_loop(variant).run(DURATION, backend="reference")
        rec = build_spec_loop(variant).run(DURATION, backend="fused")
        assert_records_equal(ref, rec, "fused")

    def test_interp_matches_reference(self):
        ref = build_spec_loop("reference").run(DURATION, backend="reference")
        rec = build_spec_loop("reference").run(DURATION, backend="interp")
        assert_records_equal(ref, rec, "interp")

    def test_auto_matches_reference(self):
        ref = build_spec_loop("reference").run(DURATION, backend="reference")
        loop = build_spec_loop("reference")
        rec = loop.run(DURATION, backend="auto")
        assert loop.last_kernel_info is not None, "auto fell back unexpectedly"
        assert_records_equal(ref, rec, "auto")

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_matches_reference(self):  # pragma: no cover - numba-only
        ref = build_spec_loop("reference").run(DURATION, backend="reference")
        rec = build_spec_loop("reference").run(DURATION, backend="numba")
        assert_records_equal(ref, rec, "numba")


class TestGoldenLoopStates:
    """Kernel runs leave the loop in the exact reference end state."""

    def collect_state(self, loop):
        return (
            loop.resonator.state.displacement,
            loop.resonator.state.velocity,
            tuple(tuple(hp._state) for hp in loop.highpasses),
            loop.phase_lead._last,
            loop.buffer._last_output,
        )

    def test_final_state_matches(self, make_loop):
        loops = []
        for backend in ("reference", "fused", "interp"):
            loop = make_loop(include_noise=True)
            loop.auto_gain(1.0 / loop.resonator.timestep)
            loop.run(DURATION, backend=backend)
            loops.append(self.collect_state(loop))
        assert loops[0] == loops[1] == loops[2]

    def test_consecutive_runs_continue_identically(self, make_loop):
        """State round-trips: run #2 picks up exactly where #1 ended."""
        records = {}
        for backend in ("reference", "fused"):
            loop = make_loop(include_noise=True)
            loop.auto_gain(1.0 / loop.resonator.timestep)
            loop.run(DURATION, backend=backend)
            records[backend] = loop.run(DURATION, backend=backend)
        assert_records_equal(
            records["reference"], records["fused"], "fused-second-run"
        )


class TestNoiseVariants:
    @pytest.mark.parametrize("include_noise", [False, True])
    def test_fused_matches_reference(self, make_loop, include_noise):
        recs = {}
        for backend in ("reference", "fused"):
            loop = make_loop(include_noise=include_noise)
            loop.auto_gain(1.0 / loop.resonator.timestep)
            recs[backend] = loop.run(DURATION, backend=backend)
        assert_records_equal(recs["reference"], recs["fused"], "fused")


class TestMultiMode:
    def build(self, geometry, make_loop):
        from repro.feedback.multimode import MultiModeLoop

        return MultiModeLoop.for_geometry(
            geometry, quality_factors=[5.0, 8.0, 11.0], loop=make_loop()
        )

    def test_fused_matches_reference(self, geometry, make_loop):
        outs = {}
        for backend in ("reference", "fused"):
            mm = self.build(geometry, make_loop)
            mm.loop.auto_gain(1.0 / mm.resonators[0].timestep)
            outs[backend] = mm.run(0.005, backend=backend)
        assert np.array_equal(
            outs["reference"].samples, outs["fused"].samples
        )

    def test_mode_states_match(self, geometry, make_loop):
        states = {}
        for backend in ("reference", "fused"):
            mm = self.build(geometry, make_loop)
            mm.loop.auto_gain(1.0 / mm.resonators[0].timestep)
            mm.run(0.005, backend=backend)
            states[backend] = [
                (r.state.displacement, r.state.velocity)
                for r in mm.resonators
            ]
        assert states["reference"] == states["fused"]


class TestFusedEngines:
    """Both fused engines (compiled C, generated Python) agree."""

    def test_cc_engine_selected_when_compiler_present(self, make_loop):
        if not kernel_mod.cc_available():
            pytest.skip("no C compiler on this machine")
        loop = make_loop()
        loop.auto_gain(1.0 / loop.resonator.timestep)
        loop.run(DURATION, backend="fused")
        assert loop.last_kernel_info.engine == "cc"

    def test_codegen_engine_matches(self, make_loop, monkeypatch):
        ref = None
        recs = {}
        for forced_cc in (True, False):
            if not forced_cc:
                monkeypatch.setattr(kernel_mod, "cc_available", lambda: False)
            loop = make_loop(include_noise=True)
            loop.auto_gain(1.0 / loop.resonator.timestep)
            rec = loop.run(DURATION, backend="fused")
            recs[forced_cc] = rec
            engine = loop.last_kernel_info.engine
            assert engine == ("cc" if forced_cc and kernel_mod.cc_available()
                              else "codegen")
        ref = make_loop(include_noise=True)
        ref.auto_gain(1.0 / ref.resonator.timestep)
        ref_rec = ref.run(DURATION, backend="reference")
        assert_records_equal(ref_rec, recs[True], "fused-primary")
        assert_records_equal(ref_rec, recs[False], "fused-codegen")


class TestKernelCounters:
    def test_runs_and_samples_counted(self, make_loop):
        reset_kernel_info()
        loop = make_loop()
        loop.auto_gain(1.0 / loop.resonator.timestep)
        rec = loop.run(DURATION, backend="fused")
        info = kernel_info()
        assert info.runs.get("fused") == 1
        assert info.total_samples == len(rec.bridge_voltage)
        assert info.last_backend == "fused"
        assert info.last_samples_per_second > 0.0
        assert info.fallbacks == 0

    def test_run_info_reports_program_shape(self, make_loop):
        loop = make_loop()
        loop.auto_gain(1.0 / loop.resonator.timestep)
        loop.run(DURATION, backend="fused")
        info = loop.last_kernel_info
        assert info.n_ops > 5          # DDA + HPs + phase + VGA + ...
        assert info.n_samples == len(loop.run(DURATION).bridge_voltage)
        assert info.samples_per_second > 0.0
        assert info.fallback_reason is None
