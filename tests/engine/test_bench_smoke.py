"""Tier-1 smoke net over the engine-ported benches.

Runs the three ported benches (`bench_ext_process_variation`,
`bench_ext_resonance_curve`, `bench_abl_placement`) on tiny grids with
``workers=2`` and a cache, so breakage of the parallel or cached path
is caught by the ordinary test run — not only by the (separately
invoked) benchmark suite.  `make bench-smoke` drives the same three
benches through their CLIs.
"""

import sys
from pathlib import Path

import pytest

from repro.engine import ResultCache

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

bench_abl_placement = pytest.importorskip("bench_abl_placement")
bench_ext_process_variation = pytest.importorskip("bench_ext_process_variation")
bench_ext_resonance_curve = pytest.importorskip("bench_ext_resonance_curve")


class TestProcessVariationSmoke:
    def test_parallel_cached_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = bench_ext_process_variation.run_bench(
            workers=2, samples=8, cache=cache, quiet=True
        )
        serial = bench_ext_process_variation.run_bench(
            workers=1, samples=8, quiet=True
        )
        assert cold == serial  # parallel + cached == serial, bit-identical
        warm = bench_ext_process_variation.run_bench(
            workers=2, samples=8, cache=cache, quiet=True
        )
        assert warm == serial
        info = cache.cache_info()
        assert info.hits == 3  # warm run skipped all three Monte-Carlo cases
        assert info.stores == 3


class TestResonanceCurveSmoke:
    def test_parallel_cached_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = bench_ext_resonance_curve.run_bench(
            workers=2, points=15, cache=cache, quiet=True
        )
        warm = bench_ext_resonance_curve.run_bench(
            workers=2, points=15, cache=cache, quiet=True
        )
        assert warm == cold
        info = cache.cache_info()
        assert info.hits == 2
        assert info.stores == 2
        # physics sanity survives the tiny grid: air f0 well above water's
        assert cold["air_f0_Hz"] > 2.5 * cold["water_f0_Hz"]


class TestPlacementSmoke:
    def test_parallel_cached_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = bench_abl_placement.run_bench(workers=2, cache=cache, quiet=True)
        serial = bench_abl_placement.run_bench(workers=1, quiet=True)
        assert cold == serial
        warm = bench_abl_placement.run_bench(workers=2, cache=cache, quiet=True)
        assert warm == serial
        info = cache.cache_info()
        assert info.hits == len(bench_abl_placement.RESONANT_STARTS) + len(
            bench_abl_placement.STATIC_EXTENTS
        )
        assert cold["clamp_to_tip_ratio"] > 5.0
