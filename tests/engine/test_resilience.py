"""Fault-injection & resilient-execution suite.

Every scenario injects a deterministic fault through a
:class:`repro.engine.FaultPlan` and asserts one of the two acceptable
outcomes: the stack *recovers bit-identically* (``np.array_equal``
against the fault-free run) or it *degrades visibly* (a flagged
:class:`~repro.core.ChannelHealth`, a counted fallback, an opened
breaker) — never raising out of a sweep, never stalling past its
watchdog, never silently returning damaged numbers.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.biochem import AssayProtocol, FunctionalizedSurface, get_analyte
from repro.core import (
    SUPPLY_RAIL,
    BiosensorChip,
    ChannelConfig,
    HealthReport,
    ResonantArrayChip,
    diagnose_loop_record,
    diagnose_trace,
)
from repro.engine import (
    BatchExecutor,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    ResultCache,
    RetryPolicy,
    breaker_report,
    cc_available,
    cc_usable,
    get_breaker,
    inject_faults,
    kernel_info,
    poll_fault,
    quarantined_backends,
    reset_breakers,
    reset_compiler_probe,
    reset_kernel_info,
)
from repro.engine.resilience import corruption_offsets, fire_fault
from repro.errors import (
    FaultInjectionError,
    LoweringError,
    WatchdogTimeout,
)
from repro.feedback import run_batch, startup_check

from .test_kernel_batch import (
    DURATION,
    LENGTHS,
    assert_records_equal,
    build_loop,
)


@pytest.fixture(autouse=True)
def _clean_engine_state():
    """Breakers and kernel counters are process globals; isolate tests."""
    reset_breakers()
    reset_kernel_info()
    yield
    reset_breakers()
    reset_kernel_info()


def square(x):
    return x * x


def tenx(x):
    return x * 10


# -- injector mechanics -------------------------------------------------------


class TestFaultInjector:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="not.a.site")

    def test_bad_count_and_at_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(site="executor.task", count=0)
        with pytest.raises(ValueError):
            FaultSpec(site="executor.task", at=-1)

    def test_no_plan_poll_is_noop(self):
        assert poll_fault("executor.task") is None
        assert fire_fault("executor.task") is None

    def test_count_exhausts(self):
        with inject_faults(FaultPlan.single("executor.task", count=2)) as inj:
            assert poll_fault("executor.task") is not None
            assert poll_fault("executor.task") is not None
            assert poll_fault("executor.task") is None  # budget spent
        assert inj.fired["executor.task"] == 2
        assert inj.polls["executor.task"] == 3

    def test_at_targets_occurrence(self):
        plan = FaultPlan.single("cache.entry", at=2)
        with inject_faults(plan):
            assert poll_fault("cache.entry") is None   # occurrence 0
            assert poll_fault("cache.entry") is None   # occurrence 1
            assert poll_fault("cache.entry") is not None  # occurrence 2
            assert poll_fault("cache.entry") is None   # exhausted

    def test_sites_are_independent(self):
        with inject_faults(FaultPlan.single("chip.stuck", kind="device")):
            assert poll_fault("chip.bridge-open") is None
            assert poll_fault("chip.stuck") is not None

    def test_fire_applies_raise(self):
        with inject_faults(FaultPlan.single("executor.task")):
            with pytest.raises(FaultInjectionError, match="executor.task"):
                fire_fault("executor.task")

    def test_nested_activation_rejected(self):
        with inject_faults(FaultPlan.single("executor.task")):
            with pytest.raises(FaultInjectionError, match="already active"):
                with inject_faults(FaultPlan.single("cache.entry")):
                    pass  # pragma: no cover

    def test_plan_clears_on_exit(self):
        with inject_faults(FaultPlan.single("executor.task")):
            pass
        assert poll_fault("executor.task") is None


# -- deterministic retry ------------------------------------------------------


class TestRetryPolicy:
    def test_schedule_is_deterministic(self):
        p = RetryPolicy(retries=3, seed=7)
        assert p.delays(key="x") == RetryPolicy(retries=3, seed=7).delays(key="x")
        assert p.delays(key="x") != p.delays(key="y")
        assert p.delays(key="x") != RetryPolicy(retries=3, seed=8).delays(key="x")

    def test_capped_exponential_without_jitter(self):
        p = RetryPolicy(
            retries=5, base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        assert p.delays() == (0.1, 0.2, 0.4, 0.5, 0.5)

    def test_jitter_bounded(self):
        p = RetryPolicy(retries=4, base_delay=0.1, jitter=0.25, max_delay=1.0)
        for attempt, d in enumerate(p.delays()):
            base = min(1.0, 0.1 * 2.0**attempt)
            assert base <= d <= base * 1.25

    def test_run_retries_then_succeeds(self):
        p = RetryPolicy(retries=3, seed=1)
        attempts, sleeps = [], []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("boom")
            return "ok"

        assert p.run(flaky, sleep=sleeps.append, key="k") == "ok"
        assert len(attempts) == 3
        assert sleeps == [p.delay(0, "k"), p.delay(1, "k")]

    def test_run_exhausts_and_reraises(self):
        p = RetryPolicy(retries=1)

        def dead():
            raise RuntimeError("still dead")

        with pytest.raises(RuntimeError, match="still dead"):
            p.run(dead, sleep=lambda _: None)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


# -- circuit breaker ----------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        b = CircuitBreaker(name="t", threshold=3)
        b.record_failure("one")
        b.record_failure("two")
        assert b.allow()
        b.record_failure("three")
        assert not b.allow() and b.open
        assert b.trips == 1
        assert b.info().last_failure_reason == "three"

    def test_success_clears_streak(self):
        b = CircuitBreaker(name="t", threshold=2)
        b.record_failure("x")
        b.record_success()
        b.record_failure("x")
        assert b.allow()  # streak broken: 1, not 2

    def test_reset_closes(self):
        b = CircuitBreaker(name="t", threshold=1)
        b.record_failure("x")
        assert b.open
        b.reset()
        assert b.allow()
        assert b.trips == 1  # history survives reset

    def test_registry_and_report(self):
        assert get_breaker("engine-x", threshold=1) is get_breaker("engine-x")
        get_breaker("engine-x").record_failure("dead")
        assert "engine-x" in breaker_report()
        assert breaker_report()["engine-x"].open
        assert quarantined_backends() == ("engine-x",)


# -- executor: crash, retry, watchdog ----------------------------------------


class TestExecutorCrashRetry:
    def test_injected_crash_recovered_parallel_equals_serial(self):
        baseline = BatchExecutor(workers=1, backend="serial").map(
            square, range(6)
        ).values()
        with inject_faults(FaultPlan.single("executor.task", at=2)) as inj:
            result = BatchExecutor(workers=3, backend="thread", retry=1).map(
                square, range(6)
            )
        assert inj.fired["executor.task"] == 1
        assert result.ok
        assert result.values() == baseline
        assert result.outcomes[2].retries == 1
        assert result.total_retries == 1

    def test_crash_without_retry_is_captured_not_raised(self):
        with inject_faults(FaultPlan.single("executor.task", at=1)):
            result = BatchExecutor(workers=2, backend="thread").map(
                square, range(4)
            )
        assert not result.ok
        [failed] = result.errors()
        assert failed.index == 1
        assert isinstance(failed.error, FaultInjectionError)
        for o in result.outcomes:
            if o.index != 1:
                assert o.value == o.index**2

    def test_process_crash_recovered(self):
        baseline = [x * x for x in range(5)]
        with inject_faults(FaultPlan.single("executor.task", at=1)):
            result = BatchExecutor(workers=2, backend="process", retry=1).map(
                square, range(5)
            )
        assert result.ok
        assert result.values() == baseline

    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(retries=2, seed=3)
        executor = BatchExecutor(workers=2, backend="thread", retry=policy)
        sleeps: list[float] = []
        executor._sleep = sleeps.append
        # occurrences 1 and 2 of round 0 -> tasks 1 and 2 crash once
        with inject_faults(FaultPlan.single("executor.task", at=1, count=2)):
            result = executor.map(square, range(6))
        assert result.ok
        assert sleeps == [policy.delay(0, key=2)]
        assert result.total_retries == 2

    def test_exhausted_budget_keeps_last_error(self):
        # the fault out-lives the retry budget: 1 retry, 2 planned hits
        with inject_faults(
            FaultPlan(faults=(
                FaultSpec(site="executor.task", at=0),
                FaultSpec(site="executor.task", at=3),
            ))
        ):
            result = BatchExecutor(workers=1, backend="serial", retry=1).map(
                square, range(3)
            )
        assert not result.ok
        assert isinstance(result.outcomes[0].error, FaultInjectionError)
        assert result.outcomes[0].retries == 1


class TestExecutorWatchdog:
    def test_thread_hang_killed_and_retried(self):
        start = time.monotonic()
        plan = FaultPlan.single(
            "executor.task", kind="hang", payload=1.0, at=1
        )
        with inject_faults(plan):
            result = BatchExecutor(
                workers=2, backend="thread", timeout=0.25, retry=1
            ).map(square, range(4))
        assert result.ok
        assert result.values() == [x * x for x in range(4)]
        assert result.outcomes[1].retries == 1
        assert time.monotonic() - start < 5.0  # bounded, never stalls

    def test_timeout_without_retry_is_watchdog_outcome(self):
        plan = FaultPlan.single(
            "executor.task", kind="hang", payload=1.0, at=0
        )
        with inject_faults(plan):
            result = BatchExecutor(workers=1, backend="serial", timeout=0.2).map(
                square, [7]
            )
        [outcome] = result.outcomes
        assert isinstance(outcome.error, WatchdogTimeout)
        assert "watchdog" in str(outcome.error)

    def test_process_hang_worker_killed_and_retried(self):
        # the hang is far longer than the test: only terminate() ends it
        start = time.monotonic()
        plan = FaultPlan.single(
            "executor.task", kind="hang", payload=30.0, at=0
        )
        with inject_faults(plan):
            result = BatchExecutor(
                workers=2, backend="process", timeout=1.0, retry=1
            ).map(square, range(4))
        assert result.ok
        assert result.values() == [x * x for x in range(4)]
        assert time.monotonic() - start < 20.0


# -- cache corruption ---------------------------------------------------------


class TestCacheCorruption:
    def test_injected_corruption_evicted_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        calls: list[int] = []

        def counted(x, _calls=calls):
            _calls.append(x)
            return tenx(x)

        key = cache.key_for(tenx, 4)
        cache.put(key, tenx(4))
        assert cache.get(key) == 40  # intact entry hits
        with inject_faults(
            FaultPlan.single("cache.entry", kind="corrupt", seed=11)
        ) as inj:
            assert cache.get(key) is cache.MISS
        assert inj.fired["cache.entry"] == 1
        info = cache.cache_info()
        assert info.corruptions == 1
        assert info.misses == 1
        # evicted: a recompute-and-store round-trips cleanly again
        cache.put(key, tenx(4))
        assert cache.get(key) == 40
        assert calls == []  # helper never needed (explicit puts)

    def test_truncation_fault_also_recovers(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key_for(tenx, 2)
        cache.put(key, 20)
        # any non-"corrupt" kind truncates the file to half: the
        # killed-mid-write shape
        with inject_faults(FaultPlan.single("cache.entry", kind="device")):
            assert cache.get(key) is cache.MISS
        assert cache.cache_info().corruptions == 1
        assert not cache._path_for(key).exists()  # evicted

    def test_verify_scan_counts_and_evicts(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        good = cache.key_for(tenx, 1)
        bad = cache.key_for(tenx, 2)
        cache.put(good, 10)
        cache.put(bad, 20)
        raw = cache._path_for(bad).read_bytes()
        cache._path_for(bad).write_bytes(raw[: len(raw) // 2])
        assert cache.verify(evict=True) == (1, 1)
        assert cache.get(good) == 10
        assert cache.get(bad) is cache.MISS
        # verify is an audit: the damaged entry it evicted is a plain
        # miss now, not another corruption
        assert cache.cache_info().corruptions == 0


# -- kernel: compile faults, quarantine, degrade ------------------------------


needs_cc = pytest.mark.skipif(
    not cc_available(), reason="no C compiler on this machine"
)


@needs_cc
class TestKernelCompileFault:
    def test_compile_fault_degrades_bit_identically(self):
        baseline = build_loop().run(DURATION, backend="fused")
        reset_kernel_info()
        with inject_faults(FaultPlan.single("kernel.compile")) as inj:
            record = build_loop().run(DURATION, backend="fused")
        assert inj.fired["kernel.compile"] == 1
        assert_records_equal(baseline, record, "compile-faulted")
        info = kernel_info()
        assert info.degrades == 1
        assert "kernel.compile" in info.last_degrade_reason
        assert get_breaker("kernel-cc").consecutive == 1

    def test_repeated_failures_quarantine_the_engine(self):
        baseline = build_loop().run(DURATION, backend="fused")
        threshold = get_breaker("kernel-cc").threshold
        reset_kernel_info()
        with inject_faults(
            FaultPlan.single("kernel.compile", count=threshold)
        ):
            for _ in range(threshold):
                build_loop().run(DURATION, backend="fused")
        assert not cc_usable()
        assert quarantined_backends() == ("kernel-cc",)
        info = kernel_info()
        assert info.cc_quarantined
        assert info.degrades == threshold
        # quarantined: the next run (no fault armed) degrades without
        # even trying the C engine, still bit-identical
        record = build_loop().run(DURATION, backend="fused")
        assert_records_equal(baseline, record, "quarantined")
        assert kernel_info().degrades == threshold + 1
        assert "quarantined" in kernel_info().last_degrade_reason
        reset_breakers()
        assert cc_usable()

    def test_batch_compile_fault_degrades_bit_identically(self):
        solos = [
            build_loop(length).run(DURATION, backend="fused")
            for length in LENGTHS
        ]
        reset_kernel_info()
        with inject_faults(FaultPlan.single("kernel.compile")):
            records = run_batch(
                [build_loop(length) for length in LENGTHS], DURATION
            )
        for length, solo, rec in zip(LENGTHS, solos, records):
            assert_records_equal(solo, rec, f"batch[{length}]")
        assert kernel_info().degrades >= 1


@contextmanager
def broken_compiler(tmp_path):
    """CC=/bin/false with the disk-cached .so stashed: every build fails."""
    import pathlib
    import shutil

    from repro.engine.kernel import _cc_cache_dir

    cache = pathlib.Path(_cc_cache_dir())
    stashed = []
    if cache.is_dir():
        for so in cache.glob("kernel-*.so"):
            target = tmp_path / so.name
            shutil.move(str(so), str(target))
            stashed.append((so, target))
    saved = os.environ.get("CC")
    os.environ["CC"] = "/bin/false"
    reset_compiler_probe()
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("CC", None)
        else:
            os.environ["CC"] = saved
        for so, target in stashed:
            shutil.move(str(target), str(so))
        reset_compiler_probe()


@needs_cc
class TestBrokenCompiler:
    def test_cc_false_build_failure_memoized_and_bit_identical(self, tmp_path):
        # the fault-free reference runs with the real compiler
        baseline = build_loop().run(DURATION, backend="fused")
        with broken_compiler(tmp_path):
            reset_kernel_info()
            # /bin/false resolves as a compiler, but every build fails
            assert cc_available()
            record = build_loop().run(DURATION, backend="fused")
            assert_records_equal(baseline, record, "broken-cc")
            info = kernel_info()
            assert info.cc_build_error is not None
            assert not cc_usable()
            # memoized: a second run degrades again without re-probing
            build_loop().run(DURATION, backend="fused")
            assert kernel_info().degrades >= 2


# -- lowering fault mid-batch -------------------------------------------------


class TestLowerFaultMidBatch:
    def test_faulted_instance_falls_back_without_poisoning_batch(self):
        solo_fused = {
            length: build_loop(length).run(DURATION, backend="fused")
            for length in (LENGTHS[0], LENGTHS[2])
        }
        solo_reference = build_loop(LENGTHS[1]).run(
            DURATION, backend="reference"
        )
        reset_kernel_info()
        with inject_faults(FaultPlan.single("kernel.lower", at=1)) as inj:
            records = run_batch(
                [build_loop(length) for length in LENGTHS], DURATION
            )
        assert inj.fired["kernel.lower"] == 1
        assert_records_equal(solo_fused[LENGTHS[0]], records[0], "batch[0]")
        assert_records_equal(solo_reference, records[1], "batch[1](fallback)")
        assert_records_equal(solo_fused[LENGTHS[2]], records[2], "batch[2]")
        info = kernel_info()
        assert info.fallbacks == 1
        assert "kernel.lower" in info.last_fallback_reason

    def test_solo_lower_fault_raises_lowering_error_on_explicit_fused(self):
        loop = build_loop()
        with inject_faults(FaultPlan.single("kernel.lower")):
            with pytest.raises(LoweringError, match="kernel.lower"):
                loop._lower_kernel(1.0)


# -- loop record poisoning ----------------------------------------------------


class TestLoopRecordFault:
    def test_nan_poison_is_deterministic_and_diagnosed(self):
        with inject_faults(
            FaultPlan.single("loop.record", kind="nan", seed=5)
        ):
            record = build_loop().run(DURATION, backend="reference")
        n = len(record.displacement)
        offsets = corruption_offsets(5, n, 4, "loop.record")
        assert all(np.isnan(record.displacement[i]) for i in offsets)
        assert all(np.isnan(record.bridge_voltage[i]) for i in offsets)
        assert np.isnan(record.displacement).sum() <= 4
        verdict = diagnose_loop_record(record, channel=0, label="sensing")
        assert verdict.status == "failed"
        assert verdict.reason == "diverged"

    def test_inf_variant(self):
        with inject_faults(
            FaultPlan.single("loop.record", kind="inf", seed=5, payload=2)
        ):
            record = build_loop().run(DURATION, backend="reference")
        assert np.isinf(record.displacement).any()
        assert not diagnose_loop_record(record, channel=0).ok


# -- array assay: device faults, failed channels ------------------------------


CHANNEL_PLAN = [
    ChannelConfig(analyte=get_analyte("igg"), label="anti-IgG"),
    ChannelConfig(analyte=get_analyte("crp"), label="anti-CRP"),
    ChannelConfig(analyte=None, label="ref1"),
    ChannelConfig(analyte=None, label="ref2"),
]
PROTOCOL = AssayProtocol.injection(10e-9, baseline=30, exposure=60, wash=30)


def run_assay_chip(fabricated, **kwargs):
    chip = BiosensorChip(channels=CHANNEL_PLAN, cantilever=fabricated)
    chip.calibrate()
    return chip.run_array_assay(
        PROTOCOL, sample_interval=10.0, include_noise=True, **kwargs
    )


class TestArrayDeviceFaults:
    def test_open_bridge_rails_one_channel_only(self, fabricated):
        baseline = run_assay_chip(fabricated)
        with inject_faults(
            FaultPlan.single("chip.bridge-open", kind="device", at=1)
        ):
            result = run_assay_chip(fabricated)
        assert np.all(result.channel_outputs[1] == SUPPLY_RAIL)
        verdict = result.health[1]
        assert verdict.status == "degraded"
        assert verdict.reason == "railed"
        for ch in (0, 2, 3):
            assert np.array_equal(
                result.channel_outputs[ch], baseline.channel_outputs[ch]
            )
            assert result.health[ch].ok
        assert result.health.worst == "degraded"
        assert result.health.ok_channels() == (0, 2, 3)

    def test_stuck_beam_flagged_frozen_flat(self, fabricated):
        baseline = run_assay_chip(fabricated)
        with inject_faults(
            FaultPlan.single("chip.stuck", kind="device", at=2)
        ):
            result = run_assay_chip(fabricated)
        trace = result.channel_outputs[2]
        assert np.ptp(trace) == 0.0
        assert result.health[2].reason == "stuck"
        for ch in (0, 1, 3):
            assert np.array_equal(
                result.channel_outputs[ch], baseline.channel_outputs[ch]
            )
        assert "stuck" in result.health.summary()

    def test_crashed_channel_fails_flagged_others_intact(self, fabricated):
        baseline = run_assay_chip(fabricated)
        with inject_faults(FaultPlan.single("executor.task", at=0)):
            result = run_assay_chip(fabricated)
        assert result.health[0].status == "failed"
        assert result.health[0].reason == "task-error"
        assert np.isnan(result.channel_outputs[0]).all()
        for ch in (1, 2, 3):
            assert np.array_equal(
                result.channel_outputs[ch], baseline.channel_outputs[ch]
            )
        # the referenced() difference math still works off the intact
        # reference beams
        assert np.isfinite(result.referenced(1)).all()

    def test_retry_recovers_crashed_channel_bit_identically(self, fabricated):
        baseline = run_assay_chip(fabricated)
        with inject_faults(FaultPlan.single("executor.task", at=0)):
            result = run_assay_chip(fabricated, retry=1)
        assert result.health.ok
        assert result.health[0].retries == 1
        for ch in range(4):
            assert np.array_equal(
                result.channel_outputs[ch], baseline.channel_outputs[ch]
            )

    def test_all_channels_failed_still_returns_shaped_result(self, fabricated):
        with inject_faults(FaultPlan.single("executor.task", count=4)):
            result = run_assay_chip(fabricated)
        assert result.health.worst == "failed"
        assert len(result.times) > 1
        for ch in range(4):
            assert np.isnan(result.channel_outputs[ch]).all()


# -- resonant chip: start-up faults -------------------------------------------


class TestNoStartupFault:
    @pytest.fixture(scope="class")
    def resonant_chip(self, geometry, water):
        surface = FunctionalizedSurface(get_analyte("streptavidin"), geometry)
        return ResonantArrayChip(surface, water)

    def test_sensing_beam_starved_reference_survives(self, resonant_chip):
        f_s0, f_r0 = resonant_chip.measure_frequencies(gate_time=0.02, gates=2)
        with inject_faults(
            FaultPlan.single("loop.no-startup", kind="device", at=0)
        ):
            f_s, f_r = resonant_chip.measure_frequencies(
                gate_time=0.02, gates=2
            )
        assert np.isnan(f_s)
        assert f_r == f_r0  # the healthy beam's count is untouched
        health = resonant_chip.last_health
        assert isinstance(health, HealthReport)
        assert health[0].status == "degraded"
        assert health[0].reason == "no-oscillation"
        assert health[1].ok
        # fault exhausted: the next measurement is healthy again
        f_s2, f_r2 = resonant_chip.measure_frequencies(gate_time=0.02, gates=2)
        assert (f_s2, f_r2) == (f_s0, f_r0)
        assert resonant_chip.last_health.ok

    def test_reference_beam_starved(self, resonant_chip):
        f_s0, _ = resonant_chip.measure_frequencies(gate_time=0.02, gates=2)
        with inject_faults(
            FaultPlan.single("loop.no-startup", kind="device", at=1)
        ):
            f_s, f_r = resonant_chip.measure_frequencies(
                gate_time=0.02, gates=2
            )
        assert f_s == f_s0
        assert np.isnan(f_r)
        assert resonant_chip.last_health[1].reason == "no-oscillation"


# -- small-signal start-up verdict --------------------------------------------


class TestStartupCheck:
    def test_healthy_loop_passes(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        assert startup_check(loop, fs) == (True, None)

    def test_gain_starved_loop_reports_reason(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        loop.displacement_to_stress = loop.displacement_to_stress * 1e-9
        ok, reason = startup_check(loop, fs)
        assert not ok
        assert reason == "insufficient-loop-gain"

    def test_broken_phase_reports_reason(self, make_loop):
        from repro.circuits import Passthrough

        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        stub = Passthrough()
        stub.response = lambda f, fs: np.ones(len(np.atleast_1d(f)))
        stub.prepare = lambda fs: None
        loop.phase_lead = stub
        ok, reason = startup_check(loop, fs)
        assert not ok
        assert reason == "no-zero-phase-crossing"


# -- health vocabulary --------------------------------------------------------


class TestHealthDiagnostics:
    def test_trace_verdicts(self):
        rail = SUPPLY_RAIL
        assert diagnose_trace(np.array([0.1, 0.2, 0.3])).ok
        railed = diagnose_trace(np.full(8, rail), rail=rail)
        assert (railed.status, railed.reason) == ("degraded", "railed")
        stuck = diagnose_trace(np.full(8, 0.7), expect_variation=True)
        assert (stuck.status, stuck.reason) == ("degraded", "stuck")
        # noise-free channels are legitimately flat: no expect_variation,
        # no stuck verdict
        assert diagnose_trace(np.full(8, 0.7)).ok
        diverged = diagnose_trace(np.array([0.1, np.nan, 0.3]))
        assert (diverged.status, diverged.reason) == ("failed", "diverged")

    def test_report_aggregation(self):
        from repro.core import ChannelHealth

        report = HealthReport(channels=(
            ChannelHealth(channel=0),
            ChannelHealth(channel=1, status="degraded", reason="railed"),
            ChannelHealth(channel=2, status="failed", reason="timeout"),
        ))
        assert not report.ok
        assert report.worst == "failed"
        assert report.ok_channels() == (0,)
        assert [h.channel for h in report.sick()] == [1, 2]
        assert "1 degraded" in report.summary()
        with pytest.raises(KeyError):
            report[9]

    def test_bad_status_rejected(self):
        from repro.core import ChannelHealth

        with pytest.raises(ValueError, match="unknown health status"):
            ChannelHealth(channel=0, status="wounded")
