"""ResultCache under concurrent writers: two processes, one directory.

The service layer hangs its dedup guarantee on the cache surviving
concurrent access — pump workers, a sibling CLI, and a second server
process may all read/write one cache directory.  These tests drive real
``multiprocessing`` workers (not threads: thread tests cannot catch
torn cross-process writes) against a shared directory and assert:

* every write lands intact (``verify()`` finds zero damaged entries);
* readers see either a miss or the complete value — never a torn blob;
* racing writers of the *same* key converge on one intact value;
* the cache actually deduplicates work across processes (a warmed key
  is a hit, not a recompute, from a fresh process).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle

from repro.engine import FilesystemRemoteStore, ResultCache, TieredCache


def _writer(cache_dir, worker, keys_per_worker, barrier, results):
    """Write ``keys_per_worker`` distinct payloads, then re-read them all."""
    cache = ResultCache(cache_dir)
    barrier.wait()  # maximize overlap between the two processes
    wrote, read_back = 0, 0
    for i in range(keys_per_worker):
        key = f"worker{worker}-key{i}"
        cache.put(key, {"worker": worker, "i": i, "blob": list(range(50))})
        wrote += 1
    for i in range(keys_per_worker):
        value = cache.get(f"worker{worker}-key{i}")
        if value is not cache.MISS and value["i"] == i:
            read_back += 1
    results.put((worker, wrote, read_back))


def _same_key_writer(cache_dir, worker, rounds, barrier, results):
    """Hammer one shared key; any surviving value must be intact."""
    cache = ResultCache(cache_dir)
    barrier.wait()
    for i in range(rounds):
        cache.put("shared-key", {"worker": worker, "round": i})
        value = cache.get("shared-key")
        # a reader may race a writer to a miss/evict, but never to garbage
        if value is not cache.MISS:
            assert set(value) == {"worker", "round"}
    results.put(worker)


def _spawn(target, args):
    ctx = mp.get_context("spawn")  # fresh interpreters: no shared fds/state
    results = ctx.Queue()
    barrier = ctx.Barrier(2)
    workers = [
        ctx.Process(target=target, args=(args[0], w, args[1], barrier, results))
        for w in range(2)
    ]
    for p in workers:
        p.start()
    for p in workers:
        p.join(timeout=120)
        assert p.exitcode == 0, f"worker crashed with exit code {p.exitcode}"
    out = [results.get(timeout=10) for _ in workers]
    return out


def test_two_processes_disjoint_keys_no_corruption(tmp_path):
    cache_dir = str(tmp_path / "cache")
    keys = 25
    reports = _spawn(_writer, (cache_dir, keys))
    for _worker, wrote, read_back in reports:
        assert wrote == keys
        assert read_back == keys

    cache = ResultCache(cache_dir)
    intact, damaged = cache.verify(evict=False)
    assert damaged == 0
    assert intact == 2 * keys
    # spot-check a value from each worker from this third process
    for worker in (0, 1):
        value = cache.get(f"worker{worker}-key0")
        assert value is not cache.MISS
        assert value["worker"] == worker


def test_two_processes_same_key_last_writer_wins_intact(tmp_path):
    cache_dir = str(tmp_path / "cache")
    _spawn(_same_key_writer, (cache_dir, 30))

    cache = ResultCache(cache_dir)
    intact, damaged = cache.verify(evict=False)
    assert damaged == 0
    value = cache.get("shared-key")
    assert value is not cache.MISS
    assert value["worker"] in (0, 1)
    assert value["round"] == 29  # both wrote `rounds` times; last round wins


def test_warm_key_is_cross_process_hit_not_recompute(tmp_path):
    """The dedup substrate: process B finds process A's work already done."""
    cache_dir = str(tmp_path / "cache")

    first = ResultCache(cache_dir)
    first.put("expensive", {"answer": 42})

    ctx = mp.get_context("spawn")
    results = ctx.Queue()
    p = ctx.Process(target=_probe_entry, args=(cache_dir, results))
    p.start()
    p.join(timeout=60)
    assert p.exitcode == 0
    value, hits, misses, stores = results.get(timeout=10)
    assert value == {"answer": 42}
    assert (hits, misses, stores) == (1, 0, 0)


def _probe_entry(cache_dir, queue):
    """Spawn target (must be module-level to be importable by the child)."""
    cache = ResultCache(cache_dir)
    value = cache.get("expensive")
    info = cache.cache_info()
    queue.put((value, info.hits, info.misses, info.stores))


def test_payloads_survive_pickling_boundary(tmp_path):
    """Values round-trip the same whether read in-process or across one."""
    cache = ResultCache(str(tmp_path / "cache"))
    payload = {"cols": {"a": [1.5, None, 3.25]}, "n": 3}
    cache.put("k", payload)
    assert cache.get("k") == pickle.loads(pickle.dumps(payload))


# -- tiered path --------------------------------------------------------------


def _tiered_writer(cache_dir, worker, keys_per_worker, barrier, results):
    """Hammer one shared *tiered* directory + one shared remote store.

    Both processes write disjoint keys through all three tiers, then
    read back their own keys and a sample of the sibling's (which must
    arrive via disk or the shared remote, never torn).
    """
    shared = FilesystemRemoteStore(cache_dir + "-remote")
    cache = TieredCache(cache_dir, memory_entries=8, remote=shared)
    barrier.wait()
    wrote, read_back = 0, 0
    for i in range(keys_per_worker):
        cache.put(f"worker{worker}-key{i}", {"worker": worker, "i": i})
        wrote += 1
    for i in range(keys_per_worker):
        value = cache.get(f"worker{worker}-key{i}")
        if value is not cache.MISS and value["i"] == i:
            read_back += 1
    sibling_seen = 0
    for i in range(keys_per_worker):
        value = cache.get(f"worker{1 - worker}-key{i}")
        if value is not cache.MISS:
            assert value == {"worker": 1 - worker, "i": i}
            sibling_seen += 1
    results.put((worker, wrote, read_back, sibling_seen))


def test_two_processes_tiered_shared_directory_no_corruption(tmp_path):
    """The fabric path: two nodes, one sharded dir, one remote store."""
    cache_dir = str(tmp_path / "cache")
    keys = 25
    ctx = mp.get_context("spawn")
    results = ctx.Queue()
    barrier = ctx.Barrier(2)
    workers = [
        ctx.Process(target=_tiered_writer,
                    args=(cache_dir, w, keys, barrier, results))
        for w in range(2)
    ]
    for p in workers:
        p.start()
    for p in workers:
        p.join(timeout=120)
        assert p.exitcode == 0, f"worker crashed with exit code {p.exitcode}"
    reports = [results.get(timeout=10) for _ in workers]
    for _worker, wrote, read_back, _sibling in reports:
        assert wrote == keys
        assert read_back == keys

    # a third process sees every entry intact through every tier
    cache = TieredCache(cache_dir, remote=FilesystemRemoteStore(
        cache_dir + "-remote"))
    intact, damaged = cache.verify(evict=False)
    assert damaged == 0
    assert intact == 2 * keys
    for worker in (0, 1):
        for i in range(keys):
            assert cache.get(f"worker{worker}-key{i}") == {
                "worker": worker, "i": i,
            }
    info = cache.cache_info()
    assert info.misses == 0

    # a node with a cold local disk still sees everything via the remote
    cold = TieredCache(str(tmp_path / "cold"),
                       remote=FilesystemRemoteStore(cache_dir + "-remote"))
    assert cold.get("worker0-key0") == {"worker": 0, "i": 0}
    assert cold.cache_info().tier("remote").hits == 1
