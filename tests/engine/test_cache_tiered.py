"""TieredCache semantics: memory LRU, sharded disk, remote store.

The distributed fabric hangs its zero-recompute guarantee on this
cache, so the tier mechanics are pinned here:

* shard-by-hash-prefix disk layout (and transparent migration of
  legacy flat-layout entries);
* promotion on hit — a disk hit lands in memory, a remote hit lands on
  disk *and* in memory — observable through per-tier counters;
* bounded memory with LRU eviction (evictions counted, never lost
  data: the disk copy remains);
* checksummed raw import/export (the HTTP tier transport) rejecting
  tampered or mislabeled payloads;
* aggregate ``CacheInfo`` counters staying backward-compatible
  (``hits + misses == requests`` regardless of which tier answered).
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine import (
    CACHE_VERSION,
    FilesystemRemoteStore,
    ResultCache,
    TieredCache,
)


@pytest.fixture
def cache(tmp_path):
    return TieredCache(tmp_path / "cache", memory_entries=4)


def tier(cache, name):
    return cache.cache_info().tier(name)


class TestShardLayout:
    def test_entries_land_in_prefix_shards(self, cache):
        cache.put("abcdef", {"v": 1})
        path = cache.directory / "ab" / "abcdef.pkl"
        assert path.is_file()

    def test_shard_width_is_respected(self, tmp_path):
        wide = TieredCache(tmp_path / "w", shard_width=3)
        wide.put("abcdef", {"v": 1})
        assert (wide.directory / "abc" / "abcdef.pkl").is_file()

    def test_bad_shard_width_rejected(self, tmp_path):
        from repro.errors import CacheError

        with pytest.raises(CacheError, match="shard_width"):
            TieredCache(tmp_path / "bad", shard_width=0)

    def test_verify_walks_sharded_layout(self, cache):
        for i in range(6):
            cache.put(f"key-{i}", {"i": i})
        intact, damaged = cache.verify(evict=False)
        assert (intact, damaged) == (6, 0)

    def test_clear_empties_shards_and_memory(self, cache):
        cache.put("abcdef", {"v": 1})
        assert cache.clear() == 1
        assert cache.get("abcdef") is cache.MISS
        assert tier(cache, "memory").hits == 0


class TestLegacyFlatLayout:
    def test_flat_entry_is_found_and_resharded(self, tmp_path):
        flat = ResultCache(tmp_path / "cache")
        flat.put("abcdef", {"v": 42})
        assert (tmp_path / "cache" / "abcdef.pkl").is_file()

        tiered = TieredCache(tmp_path / "cache")
        assert tiered.get("abcdef") == {"v": 42}
        # transparently migrated into its shard; flat copy gone
        assert (tmp_path / "cache" / "ab" / "abcdef.pkl").is_file()
        assert not (tmp_path / "cache" / "abcdef.pkl").exists()
        # and still a hit afterwards
        assert tiered.get("abcdef") == {"v": 42}


class TestPromotion:
    def test_disk_hit_promotes_to_memory(self, tmp_path):
        TieredCache(tmp_path / "cache").put("k", {"v": 1})
        cache = TieredCache(tmp_path / "cache", memory_entries=4)
        assert cache.get("k") == {"v": 1}          # disk hit, promoted
        assert cache.get("k") == {"v": 1}          # memory hit
        info = cache.cache_info()
        assert info.tier("disk").hits == 1
        assert info.tier("memory").hits == 1
        assert info.tier("memory").promotions == 1

    def test_put_populates_memory(self, cache):
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert tier(cache, "memory").hits == 1
        assert tier(cache, "disk").hits == 0

    def test_memory_hit_returns_fresh_object(self, cache):
        cache.put("k", {"v": [1, 2]})
        first = cache.get("k")
        first["v"].append(3)  # caller mutates its copy
        assert cache.get("k") == {"v": [1, 2]}

    def test_memory_disabled_with_zero_entries(self, tmp_path):
        cache = TieredCache(tmp_path / "cache", memory_entries=0)
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.cache_info().tier("memory").hits == 0


class TestLruEviction:
    def test_overflow_evicts_oldest_and_counts(self, cache):
        for i in range(6):                       # memory_entries=4
            cache.put(f"key-{i}", {"i": i})
        info = cache.cache_info()
        assert info.tier("memory").evictions == 2
        # evicted keys still served (from disk) and re-promoted
        assert cache.get("key-0") == {"i": 0}
        assert cache.cache_info().tier("disk").hits == 1

    def test_lru_order_is_recency_not_insertion(self, cache):
        for i in range(4):
            cache.put(f"key-{i}", {"i": i})
        assert cache.get("key-0") == {"i": 0}    # refresh key-0
        cache.put("key-4", {"i": 4})             # evicts key-1, not key-0
        info_before = cache.cache_info().tier("disk").hits
        assert cache.get("key-0") == {"i": 0}    # still in memory
        assert cache.cache_info().tier("disk").hits == info_before


class TestRemoteTier:
    def make_pair(self, tmp_path):
        shared = FilesystemRemoteStore(tmp_path / "shared")
        a = TieredCache(tmp_path / "node-a", remote=shared)
        b = TieredCache(tmp_path / "node-b", remote=shared)
        return a, b

    def test_put_replicates_to_remote(self, tmp_path):
        a, b = self.make_pair(tmp_path)
        a.put("k", {"v": 7})
        assert a.cache_info().tier("remote").stores == 1
        assert b.get("k") == {"v": 7}
        info = b.cache_info()
        assert info.tier("remote").hits == 1
        assert info.hits == 1 and info.misses == 0

    def test_remote_hit_promotes_to_local_disk(self, tmp_path):
        a, b = self.make_pair(tmp_path)
        a.put("abcdef", {"v": 7})
        assert b.get("abcdef") == {"v": 7}
        assert (b.directory / "ab" / "abcdef.pkl").is_file()
        assert b.cache_info().tier("disk").promotions == 1
        # and the next read never touches the remote again
        assert b.get("abcdef") == {"v": 7}
        assert b.cache_info().tier("remote").hits == 1

    def test_corrupt_remote_payload_is_a_miss_not_a_crash(self, tmp_path):
        a, b = self.make_pair(tmp_path)
        a.put("k", {"v": 7})
        # tamper with the shared copy
        store = FilesystemRemoteStore(tmp_path / "shared")
        path = store._path_for("k")
        path.write_bytes(path.read_bytes()[:-7] + b"garbage")
        assert b.get("k") is b.MISS
        info = b.cache_info()
        assert info.tier("remote").errors == 1
        assert info.misses == 1

    def test_remote_write_failure_is_best_effort(self, tmp_path):
        class Broken:
            def get(self, key):
                raise OSError("down")

            def put(self, key, raw):
                raise OSError("down")

        cache = TieredCache(tmp_path / "cache", remote=Broken())
        cache.put("k", {"v": 1})                  # must not raise
        assert cache.get("k") == {"v": 1}
        cache2 = TieredCache(tmp_path / "cache2", remote=Broken())
        assert cache2.get("k") is cache2.MISS     # must not raise either
        assert cache2.cache_info().tier("remote").errors >= 1


class TestRawTransport:
    def test_export_import_round_trip(self, tmp_path):
        a = TieredCache(tmp_path / "a")
        b = TieredCache(tmp_path / "b")
        a.put("k", {"v": [1, 2, 3]})
        raw = a.export_entry("k")
        assert raw is not None
        assert b.import_entry("k", raw)
        assert b.get("k") == {"v": [1, 2, 3]}

    def test_export_unknown_key_is_none(self, cache):
        assert cache.export_entry("nope") is None

    def test_tampered_payload_rejected(self, tmp_path):
        a = TieredCache(tmp_path / "a")
        b = TieredCache(tmp_path / "b")
        a.put("k", {"v": 1})
        raw = bytearray(a.export_entry("k"))
        raw[-3] ^= 0xFF
        assert not b.import_entry("k", bytes(raw))
        assert b.get("k") is b.MISS

    def test_mislabeled_key_rejected(self, tmp_path):
        a = TieredCache(tmp_path / "a")
        b = TieredCache(tmp_path / "b")
        a.put("k", {"v": 1})
        raw = a.export_entry("k")
        # replaying a valid payload under a different key must fail
        assert not b.import_entry("other", raw)

    def test_garbage_bytes_rejected(self, cache):
        assert not cache.import_entry("k", b"not a pickle")
        assert not cache.import_entry("k", pickle.dumps(["wrong", "shape"]))


class TestCounterCompat:
    def test_hits_plus_misses_equals_requests(self, tmp_path):
        shared = FilesystemRemoteStore(tmp_path / "shared")
        seed = TieredCache(tmp_path / "seed", remote=shared)
        seed.put("remote-only", {"v": 3})

        cache = TieredCache(tmp_path / "cache", memory_entries=2,
                            remote=shared)
        cache.put("local", {"v": 1})
        assert cache.get("local") == {"v": 1}          # memory hit
        assert cache.get("missing") is cache.MISS      # full miss
        assert cache.get("remote-only") == {"v": 3}    # remote hit
        info = cache.cache_info()
        assert info.hits == 2 and info.misses == 1
        assert info.hits + info.misses == info.requests
        assert info.stores >= 1

    def test_version_bump_still_invalidates(self, tmp_path):
        old = TieredCache(tmp_path / "cache", version=CACHE_VERSION)
        old.put("k", {"v": 1})
        newer = TieredCache(tmp_path / "cache", version=CACHE_VERSION + 1)
        assert newer.get("k") is newer.MISS

    def test_is_a_result_cache(self, cache):
        # drop-in for every cache= parameter in the library
        assert isinstance(cache, ResultCache)
        assert cache.get_or_compute(len, "abc") == 3
        assert cache.get_or_compute(len, "abc") == 3
        assert cache.cache_info().hits == 1


class TestRemoteBrownout:
    """Injected remote-tier faults: trip to local-only, probe, drain."""

    def make_cache(self, tmp_path, **kwargs):
        shared = FilesystemRemoteStore(tmp_path / "shared")
        return TieredCache(tmp_path / "node", remote=shared, **kwargs), shared

    def test_consecutive_errors_trip_to_local_only(self, tmp_path):
        from repro.engine.resilience import FaultPlan, inject_faults

        cache, _ = self.make_cache(tmp_path, remote_trip_threshold=3)
        with inject_faults(
            FaultPlan.single("cache.remote", count=3)
        ) as inj:
            for i in range(5):
                cache.put(f"key-{i}", {"i": i})
        assert inj.fired["cache.remote"] == 3
        assert cache.remote_degraded()
        remote = tier(cache, "remote")
        assert remote.trips == 1
        assert remote.errors == 3
        assert remote.skips >= 1          # post-trip puts never hit the wire
        assert remote.pending == 5        # everything parked write-behind
        # local service is unimpaired throughout
        assert all(cache.get(f"key-{i}") == {"i": i} for i in range(5))

    def test_recovery_probe_reopens_and_drains(self, tmp_path):
        from repro.engine.resilience import FaultPlan, inject_faults

        cache, shared = self.make_cache(
            tmp_path, remote_trip_threshold=2, remote_probe_interval=2,
        )
        with inject_faults(FaultPlan.single("cache.remote", count=2)):
            cache.put("k0", {"v": 0})
            cache.put("k1", {"v": 1})     # second error trips the tier
            assert cache.remote_degraded()
            # faults exhausted: the second gated call is a probe, it
            # succeeds, the tier reopens and the pending queue drains
            cache.put("k2", {"v": 2})     # gated call 1: skip
            cache.put("k3", {"v": 3})     # gated call 2: probe -> recover
        assert not cache.remote_degraded()
        remote = tier(cache, "remote")
        assert remote.probes >= 1
        assert remote.pending == 0
        # every blob is on the shared store, visible to a fresh node
        other = TieredCache(tmp_path / "other", remote=shared)
        assert all(other.get(f"k{i}") == {"v": i} for i in range(4))

    def test_flush_remote_force_drains_while_tripped(self, tmp_path):
        from repro.engine.resilience import FaultPlan, inject_faults

        cache, shared = self.make_cache(tmp_path, remote_trip_threshold=1)
        with inject_faults(FaultPlan.single("cache.remote", count=1)):
            cache.put("k", {"v": 7})
            assert cache.remote_degraded()
            assert tier(cache, "remote").pending == 1
            assert cache.flush_remote(force=True) == 0
        other = TieredCache(tmp_path / "other", remote=shared)
        assert other.get("k") == {"v": 7}

    def test_pending_queue_is_bounded(self, tmp_path):
        from repro.engine.resilience import FaultPlan, inject_faults

        cache, _ = self.make_cache(
            tmp_path, remote_trip_threshold=1, pending_limit=2,
        )
        with inject_faults(FaultPlan.single("cache.remote", count=1)):
            for i in range(4):
                cache.put(f"key-{i}", {"i": i})
        assert tier(cache, "remote").pending == 2   # oldest were dropped

    def test_truncated_remote_blob_is_caught_by_checksum(self, tmp_path):
        from repro.engine.resilience import FaultPlan, inject_faults

        cache, shared = self.make_cache(tmp_path)
        cache.put("k", {"v": 7})
        reader = TieredCache(tmp_path / "reader", remote=shared)
        with inject_faults(
            FaultPlan.single("cache.remote", kind="corrupt")
        ) as inj:
            assert reader.get("k") is reader.MISS
        assert inj.fired["cache.remote"] == 1
        assert tier(reader, "remote").errors == 1
        # the clean retry still serves the blob
        assert reader.get("k") == {"v": 7}
