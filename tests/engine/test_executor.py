"""BatchExecutor contract: ordering, backends, error capture, edge grids."""

import numpy as np
import pytest

from repro.engine import BatchExecutor, BatchResult
from repro.errors import ExecutorError


def square(x):
    return x * x


def flaky(x):
    if x % 3 == 0:
        raise ValueError(f"bad point {x}")
    return 2 * x


def noisy_point(seed):
    """Deterministic-per-parameter pseudo-random task."""
    rng = np.random.default_rng(seed)
    return float(rng.standard_normal(8).sum())


GRID = list(range(17))


class TestConfiguration:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutorError):
            BatchExecutor(backend="mpi")

    def test_negative_workers_rejected(self):
        with pytest.raises(ExecutorError):
            BatchExecutor(workers=-1)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ExecutorError):
            BatchExecutor(chunk_size=0)

    def test_default_workers_positive(self):
        assert BatchExecutor().workers >= 1


class TestBackendEquivalence:
    def test_serial_vs_process_identical(self):
        serial = BatchExecutor(workers=1).map(square, GRID).values()
        parallel = (
            BatchExecutor(workers=4, backend="process").map(square, GRID).values()
        )
        assert parallel == serial

    def test_serial_vs_thread_identical(self):
        serial = BatchExecutor(workers=1).map(square, GRID).values()
        threaded = (
            BatchExecutor(workers=4, backend="thread").map(square, GRID).values()
        )
        assert threaded == serial

    def test_seeded_random_tasks_bit_identical(self):
        serial = BatchExecutor(workers=1).map(noisy_point, GRID).values()
        parallel = (
            BatchExecutor(workers=3, backend="process").map(noisy_point, GRID).values()
        )
        assert parallel == serial  # exact float equality — same bits

    def test_explicit_chunk_size_preserves_order(self):
        result = (
            BatchExecutor(workers=2, backend="process", chunk_size=5)
            .map(square, GRID)
            .values()
        )
        assert result == [square(x) for x in GRID]


class TestOrdering:
    def test_outcomes_carry_grid_index_and_parameter(self):
        batch = BatchExecutor(workers=4, backend="thread").map(square, [5, 3, 8])
        assert [o.index for o in batch.outcomes] == [0, 1, 2]
        assert [o.parameter for o in batch.outcomes] == [5, 3, 8]
        assert [o.value for o in batch.outcomes] == [25, 9, 64]


class TestErrorCapture:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_per_task_errors_captured(self, backend):
        batch = BatchExecutor(workers=2, backend=backend).map(flaky, range(7))
        assert not batch.ok
        failed = batch.errors()
        assert [o.index for o in failed] == [0, 3, 6]
        for outcome in failed:
            assert isinstance(outcome.error, ValueError)
            assert f"bad point {outcome.parameter}" in str(outcome.error)
        # the healthy points still computed
        good = [o for o in batch if o.ok]
        assert [o.value for o in good] == [2, 4, 8, 10]

    def test_values_raises_first_error(self):
        batch = BatchExecutor(workers=1).map(flaky, range(7))
        with pytest.raises(ValueError, match="bad point 0"):
            batch.values()

    def test_unwrap_reraises(self):
        batch = BatchExecutor(workers=1).map(flaky, [3])
        with pytest.raises(ValueError):
            batch.outcomes[0].unwrap()


class TestEdgeGrids:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_empty_grid(self, backend):
        batch = BatchExecutor(workers=4, backend=backend).map(square, [])
        assert isinstance(batch, BatchResult)
        assert len(batch) == 0
        assert batch.ok
        assert batch.values() == []

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_single_point(self, backend):
        batch = BatchExecutor(workers=4, backend=backend).map(square, [6])
        assert batch.values() == [36]

    def test_generator_input_materialized_in_order(self):
        batch = BatchExecutor(workers=2, backend="thread").map(
            square, (x for x in range(5))
        )
        assert batch.values() == [0, 1, 4, 9, 16]
