"""Batched multi-channel array assay: workers>1 == serial, channel-exact."""

import numpy as np
import pytest

from repro.biochem import AssayProtocol, get_analyte
from repro.core import BiosensorChip, ChannelConfig
from repro.units import nM


@pytest.fixture(scope="module")
def channel_plan():
    return [
        ChannelConfig(analyte=get_analyte("igg"), label="anti-IgG"),
        ChannelConfig(analyte=get_analyte("crp"), label="anti-CRP"),
        ChannelConfig(analyte=None, label="ref1"),
        ChannelConfig(analyte=None, label="ref2"),
    ]


@pytest.fixture(scope="module")
def protocol():
    return AssayProtocol.injection(nM(50), baseline=60, exposure=600, wash=60)


def build_chip(fabricated, channel_plan):
    chip = BiosensorChip(
        cantilever=fabricated, channels=channel_plan, temperature_drift=20e-6
    )
    chip.calibrate()
    return chip


class TestBatchedArrayAssay:
    def test_batched_matches_serial_bitwise(self, fabricated, channel_plan, protocol):
        serial = build_chip(fabricated, channel_plan).run_array_assay(
            protocol, sample_interval=10.0
        )
        batched = build_chip(fabricated, channel_plan).run_array_assay(
            protocol, sample_interval=10.0, workers=4
        )
        np.testing.assert_array_equal(batched.times, serial.times)
        for channel in range(4):
            np.testing.assert_array_equal(
                batched.channel_outputs[channel], serial.channel_outputs[channel]
            )
        assert batched.channel_labels == serial.channel_labels
        assert batched.reference_channels == serial.reference_channels

    def test_batched_referencing_works(self, fabricated, channel_plan, protocol):
        chip = build_chip(fabricated, channel_plan)
        result = chip.run_array_assay(protocol, sample_interval=10.0, workers=2)
        referenced = result.referenced(0)
        assert referenced.shape == result.times.shape
        # the active channel still shows a binding response after referencing
        assert abs(referenced[-1]) > abs(referenced[0])

    def test_workers_one_uses_serial_path(self, fabricated, channel_plan, protocol):
        serial = build_chip(fabricated, channel_plan).run_array_assay(
            protocol, sample_interval=10.0, workers=1
        )
        default = build_chip(fabricated, channel_plan).run_array_assay(
            protocol, sample_interval=10.0
        )
        for channel in range(4):
            np.testing.assert_array_equal(
                serial.channel_outputs[channel], default.channel_outputs[channel]
            )
