"""Distributed fault sites of the fabric, injected and survived.

The chaos-fabric PR's worker-side guarantees, pinned deterministically
(the subprocess schedules live in ``tools/chaos_check.py``):

* a lease expired mid-chunk never double-finalizes: the second owner
  completes exactly once, the first owner's stale completion is
  dropped, and every point the loser computed is served back as a
  cache hit — zero recomputes, proved by worker stats;
* a lost completion ack (``fabric.complete`` fault) makes the worker
  complete twice; the store's idempotent CAS acknowledges the replay
  without disturbing the chunk row;
* a vanished heartbeat (``fabric.heartbeat`` fault) abandons the chunk
  mid-flight; the same worker re-leases it after expiry and finishes
  from cache hits;
* an injected lease-clock skew (``fabric.lease`` fault) collapses the
  heartbeat TTL so the watchdog can expire a *live* worker;
* ``fabric.crash`` (armed through :data:`FAULT_PLAN_ENV` exactly as
  the chaos harness does it) kills the worker process between
  cache-write and completion; resume recomputes nothing.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time

from repro.config import REFERENCE_RESONANT_SENSOR
from repro.engine import TieredCache
from repro.engine.fabric import (
    CRASH_EXIT_CODE,
    FabricWorker,
    _worker_process_main,
    run_fabric_sweep,
    submit_fabric_job,
)
from repro.engine.resilience import FAULT_PLAN_ENV, FaultPlan, inject_faults
from repro.service.store import open_job_store

from .test_fabric import (
    DURATION,
    PATH,
    assert_bit_exact,
    serial_reference,
    values_for,
)


def make_job(store, tmp_path, n=8, chunk_size=4):
    record = submit_fabric_job(
        store, REFERENCE_RESONANT_SENSOR, PATH, values_for(n),
        duration=DURATION, chunk_size=chunk_size,
    )
    store.claim(record.job_id)
    return record


class TestLeaseExpiryRace:
    def test_two_workers_exactly_once_finalization(self, tmp_path):
        """A skewed watchdog steals A's live lease; B finishes from hits."""
        store = open_job_store(tmp_path / "jobs.sqlite")
        cache = TieredCache(tmp_path / "cache")
        record = make_job(store, tmp_path, n=4, chunk_size=4)

        loser = FabricWorker(store, cache, worker_id="worker-a",
                             lease_seconds=30.0)
        lease = store.lease_chunk("worker-a", 30.0, record.job_id)
        assert lease is not None
        context = loser._context_for(record.job_id)
        held = loser._run_points(context, lease)
        assert held  # every point computed and cached, lease never refused
        assert loser.stats.points_computed == 4

        # the watchdog's clock runs 60 s fast: A's live lease expires
        assert store.expire_chunk_leases(now=time.time() + 60.0) == 1

        winner = FabricWorker(store, cache, worker_id="worker-b",
                              lease_seconds=30.0, job_id=record.job_id)
        stats = winner.run(idle_exit=None)
        assert stats.chunks_done == 1
        assert stats.points_computed == 0      # zero recomputes
        assert stats.points_cached == 4        # A's work served as hits

        # A finally reports in: its completion must lose, quietly
        assert store.complete_chunk(record.job_id, lease.chunk_id,
                                    "worker-a") is False
        (row,) = store.chunks(record.job_id)
        assert row.state == "done"
        assert row.worker_id == "worker-b"     # B's attempt record stands
        assert row.attempts == 2
        assert store.chunk_counts(record.job_id) == {"done": 1}

    def test_duplicate_completion_ack_is_idempotent(self, tmp_path):
        store = open_job_store(tmp_path / "jobs.sqlite")
        record = make_job(store, tmp_path, n=4, chunk_size=4)
        lease = store.lease_chunk("worker-a", 30.0, record.job_id)
        assert store.complete_chunk(record.job_id, lease.chunk_id,
                                    "worker-a") is True
        # the ack was lost; the worker retries — same verdict, no churn
        assert store.complete_chunk(record.job_id, lease.chunk_id,
                                    "worker-a") is True
        assert store.chunk_counts(record.job_id) == {"done": 1}
        # a stranger replaying the completion is refused
        assert store.complete_chunk(record.job_id, lease.chunk_id,
                                    "worker-z") is False


class TestInjectedWorkerFaults:
    def test_lost_completion_ack_retries_through_idempotent_store(
            self, tmp_path):
        store = open_job_store(tmp_path / "jobs.sqlite")
        cache = TieredCache(tmp_path / "cache")
        record = make_job(store, tmp_path, n=8, chunk_size=4)
        worker = FabricWorker(store, cache, job_id=record.job_id)
        with inject_faults(FaultPlan.single("fabric.complete", at=0)) as inj:
            stats = worker.run(idle_exit=None)
        assert inj.fired["fabric.complete"] == 1
        assert stats.chunks_done == 2          # counted once per chunk
        assert stats.points_computed == 8
        assert store.chunk_counts(record.job_id) == {"done": 2}

    def test_heartbeat_loss_abandons_then_resumes_from_hits(self, tmp_path):
        store = open_job_store(tmp_path / "jobs.sqlite")
        cache = TieredCache(tmp_path / "cache")
        record = make_job(store, tmp_path, n=8, chunk_size=4)
        # the heartbeat after the second point vanishes; a short lease
        # lets the worker's own watchdog sweep requeue the orphan
        worker = FabricWorker(store, cache, job_id=record.job_id,
                              lease_seconds=0.5, poll_interval=0.05)
        with inject_faults(FaultPlan.single("fabric.heartbeat", at=1)) as inj:
            stats = worker.run(idle_exit=2.0)
        assert inj.fired["fabric.heartbeat"] == 1
        assert stats.leases_lost >= 1
        assert stats.points_computed == 8      # abandoned points re-served
        assert store.chunk_counts(record.job_id) == {"done": 2}

    def test_lease_skew_collapses_heartbeat_ttl(self, tmp_path):
        store = open_job_store(tmp_path / "jobs.sqlite")
        cache = TieredCache(tmp_path / "cache")
        # slow points give the main thread a window to observe the lease
        record = submit_fabric_job(
            store, REFERENCE_RESONANT_SENSOR, PATH, values_for(4),
            duration=0.08, chunk_size=4,
        )
        store.claim(record.job_id)
        worker = FabricWorker(store, cache, job_id=record.job_id,
                              lease_seconds=30.0)
        observed: list[float] = []

        def observe() -> None:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                rows = store.chunks(record.job_id)
                if rows and rows[0].state == "leased" \
                        and rows[0].lease_expires_at:
                    observed.append(rows[0].lease_expires_at - time.time())
                if rows and rows[0].state == "done":
                    return
                time.sleep(0.01)

        watcher = threading.Thread(target=observe)
        with inject_faults(
            FaultPlan.single("fabric.lease", at=0, payload=0.05)
        ) as inj:
            watcher.start()
            stats = worker.run(idle_exit=None)
            watcher.join()
        assert inj.fired["fabric.lease"] == 1
        assert stats.chunks_done == 1
        # every heartbeat extended the lease by ~50 ms, not 30 s
        assert observed, "watcher never saw the leased chunk"
        assert min(observed) < 5.0


class TestCrashViaEnvPlan:
    def test_env_armed_crash_resumes_with_zero_recomputes(self, tmp_path):
        """The chaos harness path: plan rides the env into the spawn."""
        values = values_for(8)
        db = tmp_path / "jobs.sqlite"
        cache_dir = tmp_path / "cache"
        store = open_job_store(db)
        record = submit_fabric_job(
            store, REFERENCE_RESONANT_SENSOR, PATH, values,
            duration=DURATION, chunk_size=4,
        )
        store.claim(record.job_id)

        plan = FaultPlan.single("fabric.crash", at=2)  # die caching point 3
        os.environ[FAULT_PLAN_ENV] = plan.to_json()
        try:
            ctx = mp.get_context("spawn")
            proc = ctx.Process(
                target=_worker_process_main,
                args=(str(db), str(cache_dir),
                      {"job_id": record.job_id, "lease_seconds": 2.0}),
            )
            proc.start()
            proc.join(timeout=180)
            assert proc.exitcode == CRASH_EXIT_CODE
        finally:
            del os.environ[FAULT_PLAN_ENV]

        survivors = sum(1 for _ in cache_dir.rglob("*.pkl"))
        assert survivors == 3                  # the crash window is exact
        assert "leased" in store.chunk_counts(record.job_id)

        time.sleep(2.1)                        # let the orphan lease expire
        cache = TieredCache(cache_dir)
        result = run_fabric_sweep(
            REFERENCE_RESONANT_SENSOR, PATH, values,
            db=db, cache_dir=cache_dir, duration=DURATION,
            workers=0, chunk_size=4, cache=cache,
        )
        info = cache.cache_info()
        assert info.stores == len(values) - survivors + 1  # + result blob
        assert_bit_exact(serial_reference(values), result)
