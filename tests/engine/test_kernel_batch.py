"""Golden suite for the batched multi-instance kernel.

The batching contract extends the fused kernel's bit-identity: every
instance of a batch must return waveforms ``np.array_equal`` to its
solo fused run — across heterogeneous durations, per-instance
fallbacks, open-loop swept-sine tones, and the executor/sweep-planner
plumbing above it.  Also pins the ``auto`` backend resolution order
(never ``interp``), the thread-resolution rules, and the
double-parallelism guard.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.engine.kernel as kernel_mod
from repro.config import REFERENCE_RESONANT_SENSOR, build
from repro.core import ResonantCantileverSensor
from repro.engine import (
    AUTO_ORDER,
    BatchExecutor,
    KERNEL_THREADS_ENV,
    KernelBatch,
    batch_signature,
    cc_available,
    kernel_batch_threads,
    kernel_info,
    reset_kernel_info,
)
from repro.engine.kernel import MAX_BATCH_THREADS, resolve_backend
from repro.errors import KernelError
from repro.feedback import run_batch

DURATION = 0.006
LENGTHS = (180.0, 200.0, 220.0)
WAVEFORMS = (
    "displacement",
    "bridge_voltage",
    "limiter_input",
    "limiter_output",
    "drive_voltage",
)


def build_loop(length_um: float = 200.0):
    spec = REFERENCE_RESONANT_SENSOR.with_overrides(
        {"cantilever.length_um": length_um}
    )
    return ResonantCantileverSensor.from_spec(spec).build_loop()


def assert_records_equal(ref, other, label):
    __tracebackhide__ = True
    for name in WAVEFORMS:
        a = np.asarray(getattr(ref, name))
        b = np.asarray(getattr(other, name))
        if not np.array_equal(a, b):
            worst = float(np.max(np.abs(a - b))) if a.shape == b.shape else float("nan")
            pytest.fail(
                f"{label}.{name} differs from solo run "
                f"(max abs diff {worst:.3e})"
            )


class TestClosedLoopBatch:
    """run_batch == solo fused, instance for instance, bit for bit."""

    def test_batch_matches_solo_fused(self):
        solos = [
            build_loop(length).run(DURATION, backend="fused")
            for length in LENGTHS
        ]
        reset_kernel_info()
        # threads=2 keeps the row engine selected on a 1-CPU box (the
        # decline heuristic only fires for narrow batches at 1 thread;
        # pinned in tests/engine/test_kernel_columnar.py)
        records = run_batch(
            [build_loop(length) for length in LENGTHS], DURATION, threads=2
        )
        assert len(records) == len(LENGTHS)
        for length, solo, rec in zip(LENGTHS, solos, records):
            assert_records_equal(solo, rec, f"batch[{length}]")
            assert np.array_equal(solo.times, rec.times)
            assert solo.sample_rate == rec.sample_rate
        info = kernel_info()
        assert info.fallbacks == 0
        assert info.batch_runs == 1
        assert info.batch_instances == len(LENGTHS)
        assert info.runs.get("fused", 0) == len(LENGTHS)

    def test_heterogeneous_durations_pad_and_mask(self):
        durations = (0.004, 0.008, 0.006)
        solos = [
            build_loop(length).run(d, backend="fused")
            for length, d in zip(LENGTHS, durations)
        ]
        records = run_batch(
            [build_loop(length) for length in LENGTHS], durations
        )
        lengths = {len(r.displacement) for r in records}
        assert len(lengths) == 3, "per-instance durations must differ"
        for solo, rec in zip(solos, records):
            assert len(solo.displacement) == len(rec.displacement)
            assert_records_equal(solo, rec, "hetero")

    def test_batch_absorbs_final_loop_state(self):
        solo_loop = build_loop(200.0)
        solo_loop.run(DURATION, backend="fused")
        batch_loop = build_loop(200.0)
        run_batch([batch_loop], DURATION)
        assert (
            batch_loop.resonator.state.displacement
            == solo_loop.resonator.state.displacement
        )
        assert (
            batch_loop.resonator.state.velocity
            == solo_loop.resonator.state.velocity
        )

    @pytest.mark.skipif(not cc_available(), reason="needs a C compiler")
    def test_batch_runs_compiled_engine(self):
        loops = [build_loop(length) for length in LENGTHS]
        run_batch(loops, DURATION, threads=2)
        for loop in loops:
            assert loop.last_kernel_info is not None
            assert loop.last_kernel_info.engine == "cc-batch"

    def test_reference_backend_bypasses_batching(self):
        reset_kernel_info()
        records = run_batch(
            [build_loop(length) for length in LENGTHS],
            DURATION,
            backend="reference",
        )
        assert len(records) == len(LENGTHS)
        assert kernel_info().batch_runs == 0

    def test_duration_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="durations"):
            run_batch([build_loop(200.0)], [0.004, 0.008])


class TestPerInstanceFallback:
    """A non-lowerable instance falls back alone, never poisons the batch."""

    def test_patched_loop_falls_back_inside_batch(self):
        solo_ref = build_loop(200.0).run(DURATION, backend="reference")
        solos = [
            build_loop(length).run(DURATION, backend="fused")
            for length in (LENGTHS[0], LENGTHS[2])
        ]

        loops = [build_loop(length) for length in LENGTHS]
        original = loops[1].vga.step
        loops[1].vga.step = lambda x: original(x)  # instance patch: refuses

        reset_kernel_info()
        records = run_batch(loops, DURATION, threads=2)
        info = kernel_info()
        assert info.fallbacks == 1
        assert "patched" in info.last_fallback_reason
        # the other two instances still ran as one batch
        assert info.batch_runs == 1
        assert info.batch_instances == 2
        assert_records_equal(solos[0], records[0], "batch[0]")
        assert_records_equal(solo_ref, records[1], "fallback[1]")
        assert_records_equal(solos[1], records[2], "batch[2]")
        assert loops[1].last_kernel_info is None  # reference path ran


class TestKernelBatchValidation:
    def _kernel_and_prep(self, loop):
        prep = loop._prepare_run(DURATION, None)
        return loop._lower_kernel(prep.signed_coefficient), prep

    def test_same_shape_loops_share_signature(self):
        k1, _ = self._kernel_and_prep(build_loop(180.0))
        k2, _ = self._kernel_and_prep(build_loop(240.0))
        assert batch_signature(k1) == batch_signature(k2)

    def test_mixed_shapes_raise(self):
        import math

        from repro.engine.kernel import FusedLoopKernel
        from repro.feedback.loop import lower_resonator_mode

        loop = build_loop(200.0)
        closed, prep = self._kernel_and_prep(loop)
        mode = lower_resonator_mode(loop.resonator, 0.0)
        open_loop = FusedLoopKernel(
            [], [], [], [mode],
            act_r=1.0, act_imax=math.inf, act_fpc=1.0, include_taps=False,
        )
        assert batch_signature(closed) != batch_signature(open_loop)
        with pytest.raises(KernelError, match="batch_signature"):
            KernelBatch([closed, open_loop], [prep.n, prep.n],
                        [prep.bridge_noise, prep.bridge_noise])

    def test_empty_batch_raises(self):
        with pytest.raises(KernelError, match="at least one"):
            KernelBatch([], [], [])

    def test_short_noise_raises(self):
        loop = build_loop(200.0)
        kern, prep = self._kernel_and_prep(loop)
        with pytest.raises(KernelError):
            KernelBatch([kern], [prep.n], [prep.bridge_noise[: prep.n - 10]])


class TestSweptSineBatch:
    """The acceptance workload: a 64-point resonance curve, bit-identical."""

    def test_64_point_curve_matches_reference(self):
        from repro.analysis import swept_sine_response

        resonator = build(REFERENCE_RESONANT_SENSOR).build_resonator()
        f0 = resonator.natural_frequency
        frequencies = np.linspace(0.6 * f0, 1.4 * f0, 64)

        serial = swept_sine_response(
            resonator, frequencies, 1e-9, backend="reference"
        )
        reset_kernel_info()
        batched = swept_sine_response(
            resonator, frequencies, 1e-9, backend="auto"
        )
        assert np.array_equal(serial, batched)
        info = kernel_info()
        assert info.batch_runs == 1
        assert info.batch_instances == 64
        assert info.fallbacks == 0

    def test_subclassed_resonator_falls_back(self):
        from repro.analysis import swept_sine_response
        from repro.mechanics import ModalResonator

        class OddResonator(ModalResonator):
            def step(self, force):
                return super().step(force)

        base = build(REFERENCE_RESONANT_SENSOR).build_resonator()
        odd = OddResonator(
            effective_mass=base.effective_mass,
            effective_stiffness=base.effective_stiffness,
            quality_factor=base.quality_factor,
            timestep=base.timestep,
        )
        f = np.linspace(0.8, 1.2, 7) * odd.natural_frequency
        serial = swept_sine_response(odd, f, 1e-9, backend="reference")
        reset_kernel_info()
        fallback = swept_sine_response(odd, f, 1e-9, backend="auto")
        assert np.array_equal(serial, fallback)
        info = kernel_info()
        assert info.batch_runs == 0
        assert info.fallbacks == 1

    def test_measure_resonance_identical_fits(self):
        from repro.analysis import measure_resonance

        resonator = build(REFERENCE_RESONANT_SENSOR).build_resonator()
        ref = measure_resonance(resonator, points=9, backend="reference")
        bat = measure_resonance(resonator, points=9, backend="auto")
        assert ref.frequency == bat.frequency
        assert ref.quality_factor == bat.quality_factor


class TestAutoResolution:
    """``auto`` follows AUTO_ORDER and can never pick ``interp``."""

    def test_auto_order_pinned(self):
        assert AUTO_ORDER == ("fused:cc", "numba", "fused:codegen")
        assert "interp" not in AUTO_ORDER

    @pytest.mark.parametrize(
        "cc,numba,expected",
        [
            (True, True, "fused"),    # AUTO_ORDER[0]: fused:cc
            (True, False, "fused"),   # AUTO_ORDER[0]: fused:cc
            (False, True, "numba"),   # AUTO_ORDER[1]
            (False, False, "fused"),  # AUTO_ORDER[2]: fused:codegen
        ],
    )
    def test_resolution_order(self, monkeypatch, cc, numba, expected):
        monkeypatch.setattr(kernel_mod, "_CC_CHECKED", True)
        monkeypatch.setattr(kernel_mod, "_CC", "cc" if cc else None)
        monkeypatch.setattr(kernel_mod, "_NUMBA_CHECKED", True)
        monkeypatch.setattr(kernel_mod, "_NUMBA", object() if numba else None)
        resolved = resolve_backend("auto")
        assert resolved == expected
        assert resolved != "interp"

    def test_explicit_interp_still_allowed(self):
        assert resolve_backend("interp") == "interp"


class TestThreadResolution:
    def test_requested_wins(self, monkeypatch):
        monkeypatch.delenv(KERNEL_THREADS_ENV, raising=False)
        assert kernel_batch_threads(4) == 4

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(KERNEL_THREADS_ENV, raising=False)
        assert kernel_batch_threads() == (os.cpu_count() or 1)

    def test_env_is_a_ceiling(self, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_ENV, "2")
        assert kernel_batch_threads(8) == 2
        assert kernel_batch_threads(1) == 1

    def test_env_one_forces_serial(self, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_ENV, "1")
        assert kernel_batch_threads() == 1

    def test_bad_env_ignored(self, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_ENV, "lots")
        assert kernel_batch_threads(3) == 3

    def test_clamped_to_instances_and_cap(self, monkeypatch):
        monkeypatch.delenv(KERNEL_THREADS_ENV, raising=False)
        assert kernel_batch_threads(8, n_instances=2) == 2
        assert kernel_batch_threads(500, n_instances=1000) == MAX_BATCH_THREADS
        assert kernel_batch_threads(0) == 1


def _read_kernel_env(_) -> str | None:
    """Module-level so the process pool can pickle it."""
    return os.environ.get(KERNEL_THREADS_ENV)


class TestDoubleParallelismGuard:
    """Batched kernel inside a process-pool sweep degrades to 1 C thread."""

    def test_process_workers_cap_kernel_threads(self, monkeypatch):
        monkeypatch.delenv(KERNEL_THREADS_ENV, raising=False)
        values = (
            BatchExecutor(workers=2, backend="process")
            .map(_read_kernel_env, [0, 1])
            .values()
        )
        assert values == ["1", "1"]
        # the parent process is untouched
        assert KERNEL_THREADS_ENV not in os.environ

    def test_initializer_sets_env(self, monkeypatch):
        from repro.engine.executor import _limit_worker_kernel_threads

        monkeypatch.setenv(KERNEL_THREADS_ENV, "8")
        _limit_worker_kernel_threads()
        assert os.environ[KERNEL_THREADS_ENV] == "1"

    def test_env_caps_batch_threads_end_to_end(self, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_ENV, "1")
        reset_kernel_info()
        run_batch([build_loop(length) for length in LENGTHS], 0.004, threads=4)
        info = kernel_info()
        if info.batch_runs:  # compiled path only; codegen fallback runs solo
            assert info.last_batch_threads == 1


class _BatchySquare:
    """Minimal task implementing the ``batch_call`` protocol."""

    def __call__(self, p):
        return p * p

    def batch_call(self, parameters, threads=None):
        pairs = []
        for p in parameters:
            if p < 0:
                pairs.append((None, ValueError(f"negative {p}")))
            else:
                pairs.append((p * p, None))
        return pairs


class TestExecutorKernelBatch:
    def test_batch_call_protocol(self):
        batch = BatchExecutor(backend="kernel-batch").map(
            _BatchySquare(), [1, 2, 3]
        )
        assert batch.values() == [1, 4, 9]

    def test_per_task_error_capture_survives_batching(self):
        batch = BatchExecutor(backend="kernel-batch").map(
            _BatchySquare(), [1, -2, 3]
        )
        assert not batch.ok
        assert [o.ok for o in batch.outcomes] == [True, False, True]
        assert batch.outcomes[0].value == 1
        with pytest.raises(ValueError, match="negative"):
            batch.outcomes[1].unwrap()

    def test_function_without_batch_call_degrades_to_serial(self):
        batch = BatchExecutor(backend="kernel-batch").map(
            lambda p: p + 1, [1, 2, 3]
        )
        assert batch.values() == [2, 3, 4]

    def test_workers_one_still_batches(self):
        calls = []

        class Recorder(_BatchySquare):
            def batch_call(self, parameters, threads=None):
                calls.append(len(parameters))
                return super().batch_call(parameters, threads=threads)

        BatchExecutor(workers=1, backend="kernel-batch").map(
            Recorder(), [1, 2, 3]
        )
        assert calls == [3]


class TestLoopSweepTaskPlanner:
    def _sweep(self, backend, cache=None):
        from repro.analysis import LoopSweepTask, run_spec_sweep

        return run_spec_sweep(
            REFERENCE_RESONANT_SENSOR,
            "cantilever.length_um",
            list(LENGTHS),
            LoopSweepTask(duration=DURATION),
            backend=backend,
            cache=cache,
        )

    def test_kernel_batch_equals_serial(self):
        serial = self._sweep("serial")
        reset_kernel_info()
        batched = self._sweep("kernel-batch")
        assert serial.columns.keys() == batched.columns.keys()
        for key in serial.columns:
            assert serial.columns[key] == batched.columns[key]
        info = kernel_info()
        # one batch either way: a row batch when threads are available,
        # or the decline heuristic running it serial fused (1-CPU box)
        assert info.batch_runs + info.batch_declined == 1
        if info.batch_runs:
            assert info.batch_instances == len(LENGTHS)

    def test_warm_cache_skips_the_batch(self, tmp_path):
        from repro.engine import ResultCache

        cache = ResultCache(str(tmp_path))
        cold = self._sweep("kernel-batch", cache=cache)
        assert cache.cache_info().stores == len(LENGTHS)
        reset_kernel_info()
        warm = self._sweep("kernel-batch", cache=cache)
        assert cache.cache_info().hits == len(LENGTHS)
        assert cache.cache_info().stores == len(LENGTHS)  # no new stores
        assert kernel_info().batch_runs == 0  # nothing entered the batch
        for key in cold.columns:
            assert cold.columns[key] == warm.columns[key]

    def test_build_error_captured_per_instance(self):
        from repro.analysis import LoopSweepTask

        task = LoopSweepTask(duration=DURATION)
        good = REFERENCE_RESONANT_SENSOR
        pairs = task.batch_call([good, object()])
        assert pairs[0][1] is None
        assert pairs[0][0]["amplitude_m"] > 0.0
        assert pairs[1][0] is None
        assert isinstance(pairs[1][1], Exception)


class TestMultimodeBatch:
    def test_batch_matches_solo(self, geometry, make_loop):
        from repro.feedback import run_multimode_batch
        from repro.feedback.multimode import MultiModeLoop

        def make_mm():
            mm = MultiModeLoop.for_geometry(geometry, [20.0, 10.0], make_loop())
            mm.loop.auto_gain(1.0 / mm.resonators[0].timestep)
            return mm

        solos = [make_mm().run(0.002, backend="fused") for _ in range(2)]
        records = run_multimode_batch([make_mm(), make_mm()], 0.002)
        for solo, rec in zip(solos, records):
            assert np.array_equal(solo.samples, rec.samples)
            assert solo.sample_rate == rec.sample_rate
