"""Golden-tolerance suite for the columnar SoA batch engine.

The columnar engine trades the row path's bit-identity for speed under
an explicit numerical contract (``docs/FASTPATH.md``): every waveform
of every instance must agree with its solo fused run within
``RTOL = 1e-9`` relative / ``ATOL_SCALE * max|ref|`` absolute.  This
suite pins that contract across reference-spec variants, liquids,
modes, noise on/off, multimode stacks, heterogeneous durations,
per-instance lowering fallbacks, the no-compiler NumPy twin, and a
property-based sweep — plus the ``auto`` engine-resolution order, the
batch-declined heuristic (bit-exact serial fused), and the
profile/fusion counters surfaced through ``kernel_info()`` and
``repro health``.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
from contextlib import contextmanager

import numpy as np
import pytest

import repro.engine.kernel_columnar as columnar
from repro.config import REFERENCE_RESONANT_SENSOR
from repro.core import ResonantCantileverSensor
from repro.engine import (
    BATCH_AUTO_ORDER,
    BATCH_DECLINE_MIN_SAMPLES,
    BATCH_ENGINES,
    COLUMNAR_ENV,
    COLUMNAR_MIN_ENV,
    KernelBatch,
    cc_available,
    kernel_info,
    reset_breakers,
    reset_compiler_probe,
    reset_kernel_info,
)
from repro.engine.kernel import OP_NAMES, _cc_cache_dir
from repro.errors import KernelError
from repro.feedback import run_batch
from repro.service.health import resilience_snapshot

DURATION = 0.004
LENGTHS = (170.0, 185.0, 200.0, 215.0, 230.0)
WAVEFORMS = (
    "displacement",
    "bridge_voltage",
    "limiter_input",
    "limiter_output",
    "drive_voltage",
)

#: Same grid as the fused-kernel equivalence suite: geometry is swept
#: separately (LENGTHS); these change the medium, mode, and sampling.
SPEC_VARIANTS = {
    "reference": {},
    "serum": {"liquid": "serum"},
    "glycerol": {"liquid": "glycerol_40pct"},
    "mode2": {"loop.mode": 2},
    "fast-sampling": {"loop.steps_per_cycle": 80},
}

#: Mode 2 runs ~6x higher in frequency: short beams push the Reynolds
#: number past the hydrodynamic fit's validity range, so that variant
#: sweeps longer geometries.
VARIANT_LENGTHS = {"mode2": (280.0, 290.0, 300.0, 310.0, 320.0)}

needs_cc = pytest.mark.skipif(not cc_available(), reason="needs a C compiler")


def build_loop(length_um: float = 200.0, variant: str = "reference"):
    spec = REFERENCE_RESONANT_SENSOR.with_overrides(
        {"cantilever.length_um": length_um, **SPEC_VARIANTS[variant]}
    )
    return ResonantCantileverSensor.from_spec(spec).build_loop()


def lowered(loop, duration=DURATION):
    prep = loop._prepare_run(duration, None)
    return loop._lower_kernel(prep.signed_coefficient), prep


def assert_arrays_within(a, b, label):
    """``b`` agrees with reference ``a`` under the columnar contract."""
    __tracebackhide__ = True
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        pytest.fail(f"{label}: shape {b.shape} != reference {a.shape}")
    atol = columnar.ATOL_SCALE * float(np.abs(a).max(initial=0.0))
    if not np.allclose(b, a, rtol=columnar.RTOL, atol=atol):
        worst = float(np.max(np.abs(a - b)))
        ulp = columnar.max_ulp_distance(a, b)
        pytest.fail(
            f"{label} outside the columnar tolerance contract "
            f"(max abs diff {worst:.3e}, max ulp distance {ulp})"
        )


def assert_within_contract(ref, rec, label):
    __tracebackhide__ = True
    for name in WAVEFORMS:
        assert_arrays_within(
            getattr(ref, name), getattr(rec, name), f"{label}.{name}"
        )


def assert_records_equal(ref, rec, label):
    """Bit-exactness (the declined path re-runs serial fused)."""
    __tracebackhide__ = True
    for name in WAVEFORMS:
        a = np.asarray(getattr(ref, name))
        b = np.asarray(getattr(rec, name))
        assert np.array_equal(a, b), f"{label}.{name} not bit-identical"


@pytest.fixture
def columnar_forced(monkeypatch):
    """Route every batch through the columnar engine (REPRO_COLUMNAR=1).

    With a compiler that is the C SoA engine; without one the explicit
    request keeps the columnar contract via the NumPy twin.
    """
    monkeypatch.setenv(COLUMNAR_ENV, "1")


@contextmanager
def broken_compiler(tmp_path):
    """CC=/bin/false with every disk-cached ``.so`` stashed away.

    Unlike the resilience suite's kernel-only variant this also stashes
    the ``columnar-*.so`` artifacts (their cache key does not include
    the CC path), so the columnar engine genuinely cannot load.
    """
    cache = pathlib.Path(_cc_cache_dir())
    stashed = []
    if cache.is_dir():
        for so in cache.glob("*.so"):
            target = tmp_path / so.name
            shutil.move(str(so), str(target))
            stashed.append((so, target))
    saved = os.environ.get("CC")
    os.environ["CC"] = "/bin/false"
    reset_compiler_probe()
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("CC", None)
        else:
            os.environ["CC"] = saved
        for so, target in stashed:
            shutil.move(str(target), str(so))
        reset_compiler_probe()
        reset_breakers()


class TestToleranceContract:
    """The contract's constants and its ulp-distance reporter."""

    def test_tolerances_pinned(self):
        assert columnar.RTOL == 1e-9
        assert columnar.ATOL_SCALE == 1e-12

    def test_ulp_distance_identical_is_zero(self):
        a = np.array([0.0, 1.0, -3.5e-9])
        assert columnar.max_ulp_distance(a, a.copy()) == 0

    def test_ulp_distance_counts_representable_steps(self):
        a = np.array([1.0])
        b = np.nextafter(a, np.inf)
        assert columnar.max_ulp_distance(a, b) == 1
        c = np.nextafter(b, np.inf)
        assert columnar.max_ulp_distance(a, c) == 2


class TestColumnarGolden:
    """Columnar vs solo fused, within tolerance, instance for instance."""

    @pytest.mark.parametrize("variant", sorted(SPEC_VARIANTS))
    def test_spec_variants(self, variant, columnar_forced):
        lengths = VARIANT_LENGTHS.get(variant, LENGTHS)
        solos = [
            build_loop(length, variant).run(DURATION, backend="fused")
            for length in lengths
        ]
        reset_kernel_info()
        records = run_batch(
            [build_loop(length, variant) for length in lengths], DURATION
        )
        assert len(records) == len(lengths)
        for length, solo, rec in zip(lengths, solos, records):
            assert_within_contract(solo, rec, f"{variant}[{length}]")
            assert np.array_equal(solo.times, rec.times)
            assert solo.sample_rate == rec.sample_rate
        info = kernel_info()
        assert info.fallbacks == 0
        assert info.batch_columnar_runs == 1
        assert info.batch_instances == len(lengths)

    def test_noise_disabled(self, make_loop, columnar_forced):
        solos = [
            make_loop(include_noise=False).run(DURATION, backend="fused")
            for _ in range(3)
        ]
        records = run_batch(
            [make_loop(include_noise=False) for _ in range(3)], DURATION
        )
        for i, (solo, rec) in enumerate(zip(solos, records)):
            assert_within_contract(solo, rec, f"quiet[{i}]")

    def test_heterogeneous_durations(self, columnar_forced):
        durations = (0.003, 0.005, 0.002, 0.004)
        lengths = LENGTHS[: len(durations)]
        solos = [
            build_loop(length).run(d, backend="fused")
            for length, d in zip(lengths, durations)
        ]
        records = run_batch(
            [build_loop(length) for length in lengths], durations
        )
        assert len({len(r.displacement) for r in records}) == len(durations)
        for solo, rec in zip(solos, records):
            assert len(solo.displacement) == len(rec.displacement)
            assert_within_contract(solo, rec, "hetero")

    def test_multimode_batch(self, geometry, make_loop, columnar_forced):
        from repro.feedback import run_multimode_batch
        from repro.feedback.multimode import MultiModeLoop

        def make_mm():
            mm = MultiModeLoop.for_geometry(geometry, [20.0, 10.0], make_loop())
            mm.loop.auto_gain(1.0 / mm.resonators[0].timestep)
            return mm

        solos = [make_mm().run(0.002, backend="fused") for _ in range(2)]
        records = run_multimode_batch([make_mm(), make_mm()], 0.002)
        for i, (solo, rec) in enumerate(zip(solos, records)):
            assert_arrays_within(solo.samples, rec.samples, f"multimode[{i}]")
            assert solo.sample_rate == rec.sample_rate

    def test_per_instance_fallback(self, columnar_forced):
        solo_ref = build_loop(LENGTHS[1]).run(DURATION, backend="reference")
        solos = [
            build_loop(length).run(DURATION, backend="fused")
            for length in (LENGTHS[0], LENGTHS[2])
        ]
        loops = [build_loop(length) for length in LENGTHS[:3]]
        original = loops[1].vga.step
        loops[1].vga.step = lambda x: original(x)  # instance patch: refuses

        reset_kernel_info()
        records = run_batch(loops, DURATION)
        info = kernel_info()
        assert info.fallbacks == 1
        assert "patched" in info.last_fallback_reason
        assert info.batch_instances == 2
        assert_within_contract(solos[0], records[0], "columnar[0]")
        assert_records_equal(solo_ref, records[1], "fallback[1]")
        assert_within_contract(solos[1], records[2], "columnar[2]")

    @needs_cc
    def test_compiled_engine_tag_recorded(self, columnar_forced):
        loops = [build_loop(length) for length in LENGTHS]
        run_batch(loops, DURATION)
        for loop in loops:
            assert loop.last_kernel_info is not None
            assert loop.last_kernel_info.engine.startswith("cc-columnar")


class TestEngineSelection:
    """``auto`` resolution order, env gates, and the declined pin."""

    def test_batch_engines_pinned(self):
        assert BATCH_ENGINES == ("auto", "columnar", "row")
        assert BATCH_AUTO_ORDER == ("columnar:cc", "row:cc", "fused:solo")
        assert BATCH_DECLINE_MIN_SAMPLES == 8192

    def test_unknown_engine_raises(self):
        kern, prep = lowered(build_loop())
        batch = KernelBatch([kern], [prep.n], [prep.bridge_noise])
        with pytest.raises(KernelError, match="unknown batch engine"):
            batch.run(engine="sideways")

    @needs_cc
    def test_wide_auto_batch_selects_columnar(self, monkeypatch):
        monkeypatch.delenv(COLUMNAR_ENV, raising=False)
        monkeypatch.delenv(COLUMNAR_MIN_ENV, raising=False)
        loops = [build_loop(length) for length in np.linspace(170, 230, 8)]
        reset_kernel_info()
        run_batch(loops, 0.002)
        info = kernel_info()
        assert info.batch_columnar_runs == 1
        assert info.batch_row_runs == 0
        for loop in loops:
            assert loop.last_kernel_info.engine.startswith("cc-columnar")

    @needs_cc
    def test_columnar_min_env_gates_auto(self, monkeypatch):
        monkeypatch.delenv(COLUMNAR_ENV, raising=False)
        monkeypatch.setenv(COLUMNAR_MIN_ENV, "99")
        loops = [build_loop(length) for length in np.linspace(170, 230, 8)]
        reset_kernel_info()
        # 0.002 s keeps every instance under BATCH_DECLINE_MIN_SAMPLES,
        # so a 1-thread box routes to the row engine, not "declined"
        run_batch(loops, 0.002)
        info = kernel_info()
        assert info.batch_columnar_runs == 0
        assert info.batch_runs == 1

    @needs_cc
    def test_env_off_disables_columnar(self, monkeypatch):
        monkeypatch.setenv(COLUMNAR_ENV, "0")
        loops = [build_loop(length) for length in np.linspace(170, 230, 8)]
        reset_kernel_info()
        run_batch(loops, 0.002)
        assert kernel_info().batch_columnar_runs == 0

    @needs_cc
    def test_batch_declined_runs_serial_fused(self, monkeypatch):
        """Narrow batch of long programs at 1 thread: serial fused,
        bit-exact, counted in ``batch_declined`` — the regression pin
        for the overhead heuristic."""
        monkeypatch.delenv(COLUMNAR_ENV, raising=False)
        monkeypatch.delenv(COLUMNAR_MIN_ENV, raising=False)
        lengths = LENGTHS[:3]
        solos = [
            build_loop(length).run(DURATION, backend="fused")
            for length in lengths
        ]
        assert all(len(s.displacement) >= BATCH_DECLINE_MIN_SAMPLES
                   for s in solos)
        reset_kernel_info()
        records = run_batch(
            [build_loop(length) for length in lengths], DURATION, threads=1
        )
        info = kernel_info()
        assert info.batch_declined == 1
        assert info.batch_runs == 0
        assert info.runs.get("fused", 0) == len(lengths)
        for length, solo, rec in zip(lengths, solos, records):
            assert_records_equal(solo, rec, f"declined[{length}]")
        assert resilience_snapshot()["batch_declined"] == 1


class TestNumpyTwin:
    """No compiler: an explicit columnar request keeps the contract."""

    def test_twin_matches_fused_without_compiler(self, tmp_path, monkeypatch):
        monkeypatch.setenv(COLUMNAR_ENV, "1")
        lengths = LENGTHS[:3]
        with broken_compiler(tmp_path):
            solos = [
                build_loop(length).run(0.002, backend="fused")
                for length in lengths
            ]
            loops = [build_loop(length) for length in lengths]
            records = run_batch(loops, 0.002)
            for length, solo, rec in zip(lengths, solos, records):
                assert_within_contract(solo, rec, f"twin[{length}]")
            for loop in loops:
                assert loop.last_kernel_info.engine == "columnar-np"

    def test_explicit_engine_twin_at_kernel_level(self, tmp_path):
        kern_solo, prep_solo = lowered(build_loop(), 0.002)
        solo = kern_solo.run(prep_solo.n, prep_solo.bridge_noise,
                             backend="fused")
        with broken_compiler(tmp_path):
            kern, prep = lowered(build_loop(), 0.002)
            batch = KernelBatch([kern], [prep.n], [prep.bridge_noise])
            (rec,) = batch.run(engine="columnar")
            assert_within_contract(solo, rec, "twin-kernel")
            assert rec.info.engine == "columnar-np"


class TestFusionProfile:
    """Profile counters and the profile-guided fusion decisions."""

    def test_op_samples_histogram(self):
        reset_kernel_info()
        build_loop().run(DURATION, backend="fused")
        hist = kernel_info().op_samples
        assert hist, "solo fused runs must feed the op profile"
        assert set(hist) <= set(OP_NAMES)
        assert all(v > 0 for v in hist.values())
        assert hist.get("SOS", 0) > 0  # every loop has biquad sections

    def test_hot_plan_fuses_sos_pairs(self, columnar_forced, monkeypatch):
        monkeypatch.setenv(columnar.FUSION_THRESHOLD_ENV, "0")
        columnar._SEGMENT_CACHE.clear()
        reset_kernel_info()
        run_batch([build_loop(length) for length in LENGTHS], 0.002)
        decisions = kernel_info().fusion_decisions
        plan = [d for d in decisions if d.get("engine") == "columnar"
                and "fused_segments" in d]
        assert plan, "hot batch must record a fusion decision"
        assert plan[-1]["hot"] is True
        assert plan[-1]["mode"] == "safe"
        assert any(seg[0] == "sos2" for seg in plan[-1]["fused_segments"])

    def test_cold_plan_stays_generic(self, columnar_forced, monkeypatch):
        monkeypatch.setenv(columnar.FUSION_THRESHOLD_ENV, str(10**15))
        columnar._SEGMENT_CACHE.clear()
        reset_kernel_info()
        loops = [build_loop(length) for length in LENGTHS]
        run_batch(loops, 0.002)
        decisions = kernel_info().fusion_decisions
        plan = [d for d in decisions if d.get("engine") == "columnar"
                and "fused_segments" in d]
        assert plan and plan[-1]["hot"] is False
        assert plan[-1]["fused_segments"] == []
        if cc_available():
            for loop in loops:
                assert loop.last_kernel_info.engine == "cc-columnar"

    def test_fusion_off_env(self, columnar_forced, monkeypatch):
        monkeypatch.setenv(columnar.FUSION_ENV, "off")
        columnar._SEGMENT_CACHE.clear()
        solos = [
            build_loop(length).run(0.002, backend="fused")
            for length in LENGTHS
        ]
        reset_kernel_info()
        records = run_batch(
            [build_loop(length) for length in LENGTHS], 0.002
        )
        plan = [d for d in kernel_info().fusion_decisions
                if d.get("engine") == "columnar" and "fused_segments" in d]
        assert plan and plan[-1]["mode"] == "off"
        assert plan[-1]["fused_segments"] == []
        for solo, rec in zip(solos, records):
            assert_within_contract(solo, rec, "fusion-off")

    @needs_cc
    def test_specialize_decision_recorded(self, columnar_forced, monkeypatch):
        monkeypatch.setenv(columnar.FUSION_THRESHOLD_ENV, "0")
        columnar._SEGMENT_CACHE.clear()
        columnar._SPECIALIZED.clear()
        reset_kernel_info()
        loops = [build_loop(length) for length in LENGTHS]
        run_batch(loops, 0.002)
        spec = [d for d in kernel_info().fusion_decisions
                if d.get("stage") == "specialize"]
        assert spec, "first hot run must record the specialize attempt"
        if spec[-1]["built"]:
            for loop in loops:
                assert loop.last_kernel_info.engine == "cc-columnar-fused"

    def test_health_snapshot_surfaces_columnar_counters(self, columnar_forced):
        reset_kernel_info()
        run_batch([build_loop(length) for length in LENGTHS], 0.002)
        snap = resilience_snapshot()
        for key in ("batch_declined", "batch_columnar_runs",
                    "batch_row_runs", "op_samples", "fusion_decisions"):
            assert key in snap
        assert snap["batch_columnar_runs"] == 1
        json.dumps(snap)  # the whole snapshot must stay JSON-clean


pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


class TestPropertyAgreement:
    """Any geometry mix: columnar within contract of solo fused."""

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.floats(min_value=165.0, max_value=235.0,
                              allow_nan=False),
                    min_size=2, max_size=4))
    def test_columnar_agrees_with_fused(self, lengths):
        solos = []
        for length in lengths:
            kern, prep = lowered(build_loop(length), 0.0015)
            solos.append(kern.run(prep.n, prep.bridge_noise, backend="fused"))
        kernels, ns, noises = [], [], []
        for length in lengths:
            kern, prep = lowered(build_loop(length), 0.0015)
            kernels.append(kern)
            ns.append(prep.n)
            noises.append(prep.bridge_noise)
        records = KernelBatch(kernels, ns, noises).run(engine="columnar")
        for length, solo, rec in zip(lengths, solos, records):
            assert_within_contract(solo, rec, f"prop[{length:.1f}]")
