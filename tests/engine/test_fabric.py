"""The distributed sweep fabric, pinned end to end.

The acceptance criteria of the fabric PR live here:

* a >= 64-point closed-loop sweep executed by two leased worker
  processes is ``np.array_equal`` to the serial reference — bit-exact,
  not merely close;
* killing a worker mid-grid and resuming completes the sweep with
  **zero** recomputed points (proved by per-tier cache counters and
  disk entry counts);
* repeated chunk failure parks the chunk and quarantines the worker
  through its circuit breaker;
* the chunk planner and job submission are idempotent, so resumes
  never duplicate work.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.analysis import LoopSweepTask, plan_chunks, run_spec_sweep
from repro.config import REFERENCE_RESONANT_SENSOR
from repro.engine import TieredCache
from repro.engine.fabric import (
    CRASH_EXIT_CODE,
    FabricWorker,
    _worker_process_main,
    run_fabric_sweep,
    submit_fabric_job,
)
from repro.errors import FabricError
from repro.service import JobRecord, JobSpec, JobState, new_job_id
from repro.service.store import open_job_store

DURATION = 0.003
PATH = "cantilever.length_um"


def values_for(n):
    return [round(170.0 + 0.5 * i, 3) for i in range(n)]


def serial_reference(values):
    return run_spec_sweep(
        REFERENCE_RESONANT_SENSOR, PATH, values,
        LoopSweepTask(duration=DURATION), workers=0, backend="serial",
    )


def assert_bit_exact(reference, result):
    assert list(reference.columns) == list(result.columns)
    for name in reference.columns:
        assert np.array_equal(
            np.asarray(reference.columns[name]),
            np.asarray(result.columns[name]),
        ), f"column {name} deviates from the serial reference"


class TestPlanChunks:
    def test_contiguous_cover(self):
        assert plan_chunks(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_exact_division(self):
        assert plan_chunks(8, 4) == [(0, 4), (4, 8)]

    def test_single_chunk(self):
        assert plan_chunks(3, 8) == [(0, 3)]

    def test_empty_grid_is_an_empty_plan(self):
        assert plan_chunks(0, 4) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            plan_chunks(-1, 4)
        with pytest.raises(ValueError):
            plan_chunks(4, 0)


class TestSubmission:
    def test_resubmit_reuses_job_and_chunks(self, tmp_path):
        store = open_job_store(tmp_path / "jobs.sqlite")
        first = submit_fabric_job(
            store, REFERENCE_RESONANT_SENSOR, PATH, values_for(8),
            duration=DURATION, chunk_size=4,
        )
        second = submit_fabric_job(
            store, REFERENCE_RESONANT_SENSOR, PATH, values_for(8),
            duration=DURATION, chunk_size=4,
        )
        assert second.job_id == first.job_id
        assert store.chunk_counts(first.job_id) == {"queued": 2}


class TestBitExactness:
    def test_in_process_fabric_equals_serial(self, tmp_path):
        values = values_for(16)
        result = run_fabric_sweep(
            REFERENCE_RESONANT_SENSOR, PATH, values,
            db=tmp_path / "jobs.sqlite", cache_dir=tmp_path / "cache",
            duration=DURATION, workers=0, chunk_size=4,
        )
        assert_bit_exact(serial_reference(values), result)

    def test_64_points_two_leased_workers_equal_serial(self, tmp_path):
        """The headline acceptance: 64 points, 2 worker processes."""
        values = values_for(64)
        store = open_job_store(tmp_path / "jobs.sqlite")
        result = run_fabric_sweep(
            REFERENCE_RESONANT_SENSOR, PATH, values,
            db=tmp_path / "jobs.sqlite", cache_dir=tmp_path / "cache",
            duration=DURATION, workers=2, chunk_size=8,
            lease_seconds=30.0,
        )
        assert_bit_exact(serial_reference(values), result)
        record = store.list_jobs()[0]
        assert record.state.phase == "done"
        counts = store.chunk_counts(record.job_id)
        assert counts == {"done": 8}
        # at least two distinct workers actually leased chunks
        workers = {c.worker_id for c in store.chunks(record.job_id)}
        assert len(workers) >= 2

    def test_rerun_is_pure_cache_hits(self, tmp_path):
        values = values_for(12)
        kwargs = dict(
            db=tmp_path / "jobs.sqlite", cache_dir=tmp_path / "cache",
            duration=DURATION, workers=0, chunk_size=4,
        )
        first = run_fabric_sweep(
            REFERENCE_RESONANT_SENSOR, PATH, values, **kwargs)
        cache = TieredCache(tmp_path / "cache")
        second = run_fabric_sweep(
            REFERENCE_RESONANT_SENSOR, PATH, values, cache=cache, **kwargs)
        assert_bit_exact(first, second)
        info = cache.cache_info()
        assert info.stores == 0          # nothing recomputed, nothing written
        assert info.misses == 0


class TestKillAndResume:
    def test_killed_worker_resumes_with_zero_recomputes(self, tmp_path):
        values = values_for(16)
        db = tmp_path / "jobs.sqlite"
        cache_dir = tmp_path / "cache"
        store = open_job_store(db)
        record = submit_fabric_job(
            store, REFERENCE_RESONANT_SENSOR, PATH, values,
            duration=DURATION, chunk_size=4,
        )
        store.claim(record.job_id)

        # phase 1: a worker hard-exits (os._exit) after 5 fresh points,
        # mid-chunk, lease still held
        ctx = mp.get_context("spawn")
        proc = ctx.Process(
            target=_worker_process_main,
            args=(str(db), str(cache_dir),
                  {"job_id": record.job_id, "lease_seconds": 5.0,
                   "points_limit": 5}),
        )
        proc.start()
        proc.join(timeout=180)
        assert proc.exitcode == CRASH_EXIT_CODE
        survivors = sum(1 for _ in cache_dir.rglob("*.pkl"))
        assert survivors == 5
        assert "leased" in store.chunk_counts(record.job_id)

        # phase 2: resume; only the missing 11 points are computed
        cache = TieredCache(cache_dir)
        result = run_fabric_sweep(
            REFERENCE_RESONANT_SENSOR, PATH, values,
            db=db, cache_dir=cache_dir, duration=DURATION,
            workers=0, chunk_size=4, cache=cache,
        )
        info = cache.cache_info()
        assert info.stores == len(values) - survivors + 1  # + result blob
        # every pre-crash point was served from a tier, not recomputed
        entries = sum(1 for _ in cache_dir.rglob("*.pkl"))
        assert entries == len(values) + 1
        assert_bit_exact(serial_reference(values), result)


class TestQuarantine:
    def make_poisoned_job(self, store, n=8):
        """A fabric job whose every point raises (override path is bogus)."""
        spec = JobSpec(
            base=REFERENCE_RESONANT_SENSOR.to_dict(),
            path="cantilever.does_not_exist",
            values=tuple(float(v) for v in range(n)),
            duration=DURATION, fabric=True, chunk_size=4,
        )
        record = JobRecord(
            job_id=new_job_id(), spec=spec,
            state=JobState(total=n, submitted_at=1000.0),
        )
        store.put(record)
        store.create_chunks(record.job_id, plan_chunks(n, 4))
        return record

    def test_failing_chunks_trip_the_breaker(self, tmp_path):
        store = open_job_store(tmp_path / "jobs.sqlite")
        record = self.make_poisoned_job(store)
        worker = FabricWorker(
            store, TieredCache(tmp_path / "cache"),
            job_id=record.job_id, max_attempts=1, breaker_threshold=2,
            lease_seconds=30.0,
        )
        stats = worker.run(idle_exit=None)
        assert stats.quarantined
        assert stats.chunks_failed == 2      # threshold, then it stopped
        assert stats.chunks_done == 0
        assert not worker.breaker.allow()
        counts = store.chunk_counts(record.job_id)
        assert counts.get("failed", 0) == 2

    def test_parked_chunks_fail_the_sweep(self, tmp_path):
        with pytest.raises(FabricError, match="failed permanently"):
            run_fabric_sweep(
                REFERENCE_RESONANT_SENSOR, "cantilever.does_not_exist",
                [1.0, 2.0, 3.0, 4.0],
                db=tmp_path / "jobs.sqlite", cache_dir=tmp_path / "cache",
                duration=DURATION, workers=0, chunk_size=2, max_attempts=1,
            )
        store = open_job_store(tmp_path / "jobs.sqlite")
        record = store.list_jobs()[0]
        assert record.state.phase == "failed"
        assert record.state.error
