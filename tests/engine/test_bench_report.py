"""Smoke test for the BENCH_fig5.json generator (``make bench-json``)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def load_bench_report_module():
    spec = importlib.util.spec_from_file_location(
        "bench_report", REPO / "tools" / "bench_report.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_report"] = module
    spec.loader.exec_module(module)
    return module


def test_report_written_and_well_formed(tmp_path):
    bench_report = load_bench_report_module()
    out = tmp_path / "BENCH_fig5.json"
    code = bench_report.main(
        ["--output", str(out), "--duration", "0.01",
         "--repeats", "1", "--quick"]
    )
    assert code == 0

    report = json.loads(out.read_text())
    backends = {r["backend"]: r for r in report["backends"]}
    assert {"reference", "fused", "interp"} <= set(backends)
    for row in backends.values():
        assert row["samples_per_sec"] > 0
        assert row["samples"] > 0
    assert backends["reference"]["speedup_vs_reference"] == 1.0
    assert report["fused_speedup"] == backends["fused"]["speedup_vs_reference"]
    assert report["kernel_fallbacks"] == 0
    # the committed report at the repo root asserts >= 5x; the smoke run
    # uses a tiny duration, so only require the fused path to be faster
    assert report["fused_speedup"] > 1.0
