"""StageTimer and speedup helpers."""

import time

import pytest

from repro.engine import StageTimer, speedup


class TestStageTimer:
    def test_stage_records_elapsed(self):
        timer = StageTimer()
        with timer.stage("work"):
            time.sleep(0.01)
        assert timer.seconds("work") >= 0.01
        assert timer.total == pytest.approx(timer.seconds("work"))

    def test_repeated_stage_accumulates(self):
        timer = StageTimer()
        timer.record("a", 0.5)
        timer.record("a", 0.25)
        timer.record("b", 1.0)
        assert timer.seconds("a") == pytest.approx(0.75)
        assert timer.total == pytest.approx(1.75)

    def test_absent_stage_is_zero(self):
        assert StageTimer().seconds("nope") == 0.0

    def test_stage_recorded_even_on_error(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("boom"):
                raise RuntimeError("task failed")
        assert len(timer.stages) == 1

    def test_report_lists_stages_and_total(self):
        timer = StageTimer()
        timer.record("serial", 2.0)
        timer.record("parallel", 0.5)
        report = timer.format_report()
        assert "serial" in report
        assert "parallel" in report
        assert report.strip().endswith("s")
        assert "total" in report

    def test_empty_report(self):
        assert "no stages" in StageTimer().format_report()


class TestSpeedup:
    def test_ratio(self):
        assert speedup(4.0, 1.0) == pytest.approx(4.0)

    def test_zero_parallel_time_is_inf(self):
        assert speedup(1.0, 0.0) == float("inf")
