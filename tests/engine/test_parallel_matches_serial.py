"""Property test: run_parallel == sweep, element-for-element.

Determinism is the engine's contract: for any grid and any worker
count, the parallel sweep must reproduce the serial sweep bit-for-bit.
Seeded random grids (no hypothesis dependency) probe the property over
sizes, backends, and cache states.
"""

import functools

import numpy as np
import pytest

from repro.analysis import run_parallel, sweep
from repro.engine import ResultCache


def physics_like_point(x, gain=2.5):
    """A deterministic stand-in for a device simulation.

    Mixes transcendental math and a parameter-seeded RNG, so any
    ordering or seeding bug in the engine shows up as a bit difference.
    """
    rng = np.random.default_rng(int(abs(x) * 1e6) % (2**31))
    noise = float(rng.standard_normal(4).sum())
    return {
        "response": float(np.sin(gain * x) * np.exp(-0.1 * x)),
        "noise": noise,
        "snr": float(np.sin(gain * x) / (abs(noise) + 1e-9)),
    }


def assert_sweeps_identical(a, b):
    assert a.parameters == b.parameters
    assert list(a.columns) == list(b.columns)
    for name in a.columns:
        np.testing.assert_array_equal(a.column(name), b.column(name))


class TestRandomGrids:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_random_grids_match_serial(self, backend):
        rng = np.random.default_rng(987654321)
        for trial in range(8):
            size = int(rng.integers(1, 13))
            grid = [float(v) for v in rng.uniform(-5.0, 5.0, size)]
            serial = sweep("x", grid, physics_like_point)
            parallel = run_parallel(
                "x", grid, physics_like_point, workers=3, backend=backend
            )
            assert_sweeps_identical(parallel, serial)

    def test_worker_count_irrelevant(self):
        grid = [0.1 * i for i in range(11)]
        serial = sweep("x", grid, physics_like_point)
        for workers in (1, 2, 5):
            parallel = run_parallel(
                "x", grid, physics_like_point, workers=workers
            )
            assert_sweeps_identical(parallel, serial)

    def test_partial_evaluate_matches(self):
        grid = [0.5, 1.5, 2.5]
        evaluate = functools.partial(physics_like_point, gain=4.0)
        serial = sweep("x", grid, evaluate)
        parallel = run_parallel("x", grid, evaluate, workers=2)
        assert_sweeps_identical(parallel, serial)

    def test_empty_grid(self):
        result = run_parallel("x", [], physics_like_point, workers=4)
        assert result.parameters == []
        assert result.columns == {}


class TestCachedPath:
    def test_cold_and_warm_cache_match_serial(self, tmp_path):
        grid = [float(i) for i in range(9)]
        serial = sweep("x", grid, physics_like_point)
        cache = ResultCache(tmp_path / "cache")

        cold = run_parallel("x", grid, physics_like_point, workers=3, cache=cache)
        assert_sweeps_identical(cold, serial)
        assert cache.cache_info().stores == len(grid)

        warm = run_parallel("x", grid, physics_like_point, workers=3, cache=cache)
        assert_sweeps_identical(warm, serial)
        info = cache.cache_info()
        assert info.hits == len(grid)
        assert info.stores == len(grid)  # no new stores on the warm run

    def test_partially_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_parallel("x", [1.0, 2.0], physics_like_point, workers=2, cache=cache)
        mixed = run_parallel(
            "x", [1.0, 2.0, 3.0, 4.0], physics_like_point, workers=2, cache=cache
        )
        serial = sweep("x", [1.0, 2.0, 3.0, 4.0], physics_like_point)
        assert_sweeps_identical(mixed, serial)
        info = cache.cache_info()
        assert info.hits == 2
        assert info.stores == 4


class TestErrorParity:
    def test_task_error_reraised_like_serial(self):
        with pytest.raises(ZeroDivisionError):
            sweep("x", [1.0, 0.0], reciprocal_point)
        with pytest.raises(ZeroDivisionError):
            run_parallel("x", [1.0, 0.0], reciprocal_point, workers=2)

    def test_key_mismatch_detected(self):
        with pytest.raises(KeyError):
            run_parallel("x", [0.0, 1.0], shape_shifting_point, workers=1)


def reciprocal_point(x):
    return {"y": 1.0 / x}


def shape_shifting_point(x):
    return {"a": x} if x < 0.5 else {"b": x}
