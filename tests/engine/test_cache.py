"""ResultCache contract: hits, invalidation, corruption recovery, hashing."""

import functools
import pickle
from dataclasses import dataclass

import numpy as np
import pytest

from repro.engine import CACHE_VERSION, ResultCache, stable_hash
from repro.errors import CacheError

CALLS = []


def expensive(x):
    CALLS.append(x)
    return x * 10


def other_function(x):
    return -x


@dataclass(frozen=True)
class Config:
    gain: float = 3.0
    points: int = 7


@pytest.fixture()
def cache(tmp_path):
    CALLS.clear()
    return ResultCache(tmp_path / "cache")


class TestHitMiss:
    def test_hit_after_identical_call(self, cache):
        first = cache.get_or_compute(expensive, 4)
        second = cache.get_or_compute(expensive, 4)
        assert first == second == 40
        assert CALLS == [4]  # computed exactly once
        info = cache.cache_info()
        assert (info.hits, info.misses, info.stores) == (1, 1, 1)

    def test_miss_after_parameter_change(self, cache):
        cache.get_or_compute(expensive, 4)
        cache.get_or_compute(expensive, 5)
        assert CALLS == [4, 5]
        assert cache.cache_info().misses == 2

    def test_miss_after_extra_context_change(self, cache):
        cache.get_or_compute(expensive, 4, extra=Config(gain=3.0))
        cache.get_or_compute(expensive, 4, extra=Config(gain=4.0))
        assert CALLS == [4, 4]

    def test_hit_survives_new_cache_instance(self, cache):
        cache.get_or_compute(expensive, 4)
        reopened = ResultCache(cache.directory)
        assert reopened.get_or_compute(expensive, 4) == 40
        assert CALLS == [4]
        assert reopened.cache_info().hits == 1


class TestInvalidation:
    def test_miss_after_version_bump(self, cache):
        cache.get_or_compute(expensive, 4)
        bumped = ResultCache(cache.directory, version=CACHE_VERSION + 1)
        assert bumped.get_or_compute(expensive, 4) == 40
        assert CALLS == [4, 4]  # old entry not visible to the new version

    def test_different_functions_do_not_collide(self, cache):
        assert cache.key_for(expensive, 4) != cache.key_for(other_function, 4)

    def test_clear_removes_entries(self, cache):
        cache.get_or_compute(expensive, 4)
        assert cache.clear() == 1
        cache.get_or_compute(expensive, 4)
        assert CALLS == [4, 4]


class TestCorruption:
    def test_corrupted_file_falls_back_to_recompute(self, cache):
        key = cache.key_for(expensive, 4)
        cache.get_or_compute(expensive, 4)
        path = cache._path_for(key)
        path.write_bytes(b"not a pickle at all")
        assert cache.get_or_compute(expensive, 4) == 40
        assert CALLS == [4, 4]
        # the corrupted entry was replaced with a good one
        assert cache.get(key) == 40

    def test_truncated_pickle_falls_back(self, cache):
        key = cache.key_for(expensive, 4)
        cache.get_or_compute(expensive, 4)
        path = cache._path_for(key)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get_or_compute(expensive, 4) == 40
        assert CALLS == [4, 4]

    def test_foreign_payload_rejected(self, cache):
        key = cache.key_for(expensive, 4)
        cache.directory.mkdir(parents=True, exist_ok=True)
        with open(cache._path_for(key), "wb") as fh:
            pickle.dump({"version": cache.version, "key": "someone-else"}, fh)
        assert cache.get(key) is cache.MISS

    def test_hand_corrupted_blob_counted_evicted_recomputed(self, cache):
        # flip one byte mid-file: the outer pickle still loads, but the
        # blob's sha256 no longer matches — the checksum is the only
        # thing standing between this and silently wrong numbers
        key = cache.key_for(expensive, 4)
        cache.get_or_compute(expensive, 4)
        path = cache._path_for(key)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.get(key) is cache.MISS
        info = cache.cache_info()
        assert info.corruptions == 1
        assert not path.exists()  # evicted, not left to fail again
        assert cache.get_or_compute(expensive, 4) == 40
        assert CALLS == [4, 4]
        assert cache.get(key) == 40  # clean entry back on disk


class TestStableHash:
    def test_stable_across_instances(self):
        assert stable_hash(Config(), [1, 2.0, "x"]) == stable_hash(
            Config(), [1, 2.0, "x"]
        )

    def test_type_tagged(self):
        assert stable_hash(1) != stable_hash(1.0)
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)

    def test_ndarray_content_hashed(self):
        a = np.arange(6, dtype=float)
        b = np.arange(6, dtype=float)
        assert stable_hash(a) == stable_hash(b)
        b[3] = 99.0
        assert stable_hash(a) != stable_hash(b)
        assert stable_hash(a) != stable_hash(a.astype(np.float32))

    def test_dict_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_partial_identity(self):
        p1 = functools.partial(expensive, scale=2)
        p2 = functools.partial(expensive, scale=2)
        p3 = functools.partial(expensive, scale=3)
        assert stable_hash(p1) == stable_hash(p2)
        assert stable_hash(p1) != stable_hash(p3)

    def test_lambda_rejected(self):
        with pytest.raises(CacheError):
            stable_hash(lambda x: x)

    def test_plain_value_object_hashed_by_state(self):
        from repro.core.presets import reference_geometry

        g1, g2 = reference_geometry(), reference_geometry()
        assert stable_hash(g1) == stable_hash(g2)

    def test_stateless_opaque_object_rejected(self):
        with pytest.raises(CacheError):
            stable_hash(object())
