"""Lowering rules and the kernel's fall-back contract.

A chain the kernel cannot prove equivalent must *never* lower: unknown
``step`` overrides, instance-patched methods, per-sample noise sources
and subclassed resonators all raise :class:`LoweringError`, and the
loop simulators catch it and run the reference path — with the reason
logged and counted, never an exception to the caller.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.circuits import LimitingAmplifier
from repro.circuits.amplifier import Amplifier
from repro.circuits.block import Block, Chain, Gain, Passthrough, Saturation
from repro.engine import kernel_info, lower_block, reset_kernel_info
from repro.engine.kernel import resolve_backend
from repro.errors import KernelError, LoweringError
from repro.feedback.loop import lower_resonator_mode
from repro.mechanics import ModalResonator


class CustomBlock(Block):
    """User subclass with its own step() and no lowering rule."""

    def process(self, signal):
        return signal

    def step(self, x: float) -> float:
        return x * 2.0


class CustomGain(Gain):
    """Subclass that overrides step() without updating lower_stage()."""

    def step(self, x: float) -> float:
        return x * self.gain + 1e-9


class TestLowerBlock:
    def test_known_blocks_lower(self):
        for block in (Gain(2.0), Passthrough(), Saturation(-1.0, 1.0),
                      LimitingAmplifier(40.0, 0.3)):
            stage = lower_block(block)
            assert stage.label == type(block).__name__

    def test_chain_lowers_recursively(self):
        stage = lower_block(Chain([Gain(2.0), Saturation(-1.0, 1.0)]))
        assert len(stage.ops) == 2

    def test_unknown_subclass_refuses(self):
        with pytest.raises(LoweringError, match="CustomBlock"):
            lower_block(CustomBlock())

    def test_step_override_without_lowering_refuses(self):
        with pytest.raises(LoweringError, match="CustomGain"):
            lower_block(CustomGain(2.0))

    def test_instance_patched_step_refuses(self):
        block = Gain(2.0)
        block.step = lambda x: -x
        with pytest.raises(LoweringError, match="patched"):
            lower_block(block)

    def test_noisy_amplifier_refuses(self):
        amp = Amplifier(gain=10.0, noise_density=5e-9)
        with pytest.raises(LoweringError, match="noise"):
            lower_block(amp)

    def test_quiet_amplifier_lowers(self):
        stage = lower_block(Amplifier(gain=10.0))
        assert stage.ops  # bias + gain at minimum


class TestResonatorLowering:
    def make(self):
        return ModalResonator(
            effective_mass=1e-11,
            effective_stiffness=0.4,
            quality_factor=5.0,
            timestep=1e-6,
        )

    def test_stock_resonator_lowers(self):
        mode = lower_resonator_mode(self.make(), 1.0)
        assert mode.coef == 1.0

    def test_subclassed_step_refuses(self):
        class Duffingish(ModalResonator):
            def step(self, force):
                return super().step(force * 1.0)

        r = Duffingish(
            effective_mass=1e-11, effective_stiffness=0.4,
            quality_factor=5.0, timestep=1e-6,
        )
        with pytest.raises(LoweringError):
            lower_resonator_mode(r, 1.0)

    def test_instance_patched_step_refuses(self):
        r = self.make()
        r.step = lambda force: 0.0
        with pytest.raises(LoweringError):
            lower_resonator_mode(r, 1.0)


class TestLoopFallback:
    def test_patched_block_falls_back_cleanly(self, make_loop, caplog):
        reset_kernel_info()
        loop = make_loop()
        loop.auto_gain(1.0 / loop.resonator.timestep)
        original = loop.vga.step
        loop.vga.step = lambda x: original(x)
        with caplog.at_level(logging.INFO, logger="repro.engine.kernel"):
            record = loop.run(0.005, backend="auto")
        assert loop.last_kernel_info is None  # reference path ran
        assert len(record.bridge_voltage) > 0
        info = kernel_info()
        assert info.fallbacks == 1
        assert "patched" in info.last_fallback_reason
        assert any("fallback to reference path" in m for m in caplog.messages)

    def test_fallback_waveform_matches_pure_reference(self, make_loop):
        def patched(loop):
            original = loop.vga.step
            loop.vga.step = lambda x: original(x)
            return loop

        ref = make_loop()
        ref.auto_gain(1.0 / ref.resonator.timestep)
        ref_rec = ref.run(0.005, backend="reference")

        fb = patched(make_loop())
        fb.auto_gain(1.0 / fb.resonator.timestep)
        fb_rec = fb.run(0.005, backend="fused")
        assert np.array_equal(ref_rec.bridge_voltage, fb_rec.bridge_voltage)

    def test_custom_actuator_falls_back(self, make_loop):
        reset_kernel_info()
        loop = make_loop()
        loop.auto_gain(1.0 / loop.resonator.timestep)

        class OddActuator:
            def tip_force_from_voltage(self, v):
                return 1e-9 * np.tanh(v)

        loop.actuator = OddActuator()
        loop.run(0.005, backend="auto")
        assert loop.last_kernel_info is None
        assert kernel_info().fallbacks == 1

    def test_multimode_falls_back(self, geometry, make_loop):
        from repro.feedback.multimode import MultiModeLoop

        reset_kernel_info()
        mm = MultiModeLoop.for_geometry(
            geometry, quality_factors=[5.0, 8.0], loop=make_loop()
        )
        mm.loop.auto_gain(1.0 / mm.resonators[0].timestep)
        mm.resonators[1].step = lambda force: 0.0
        out = mm.run(0.003, backend="auto")
        assert mm.last_kernel_info is None
        assert len(out.samples) > 0
        assert kernel_info().fallbacks == 1


class TestResolveBackend:
    def test_known_backends(self):
        assert resolve_backend("reference") == "reference"
        assert resolve_backend("fused") == "fused"
        assert resolve_backend("interp") == "interp"
        assert resolve_backend("auto") in ("fused", "numba")

    def test_unknown_backend_raises(self):
        with pytest.raises(KernelError, match="unknown"):
            resolve_backend("turbo")

    def test_numba_without_numba_raises(self):
        from repro.engine import numba_available

        if numba_available():  # pragma: no cover - numba-only
            pytest.skip("numba installed on this machine")
        with pytest.raises(KernelError, match="numba"):
            resolve_backend("numba")
