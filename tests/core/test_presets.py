"""Paper-calibrated preset configurations."""

import pytest

from repro.core import presets
from repro.mechanics import natural_frequency


class TestReferenceDevice:
    def test_geometry_dimensions(self):
        g = presets.reference_geometry()
        assert g.length == pytest.approx(500e-6)
        assert g.width == pytest.approx(100e-6)
        assert g.thickness == pytest.approx(5e-6)

    def test_reference_frequency(self):
        g = presets.reference_geometry()
        assert natural_frequency(g) == pytest.approx(27.5e3, rel=0.01)

    def test_dielectric_variant(self):
        coated = presets.reference_cantilever(keep_dielectrics=True)
        bare = presets.reference_cantilever()
        assert coated.geometry.thickness > bare.geometry.thickness


class TestBridges:
    def test_static_bridge_offset_mv_scale(self):
        b = presets.static_bridge()
        assert 0.0 < abs(b.offset_voltage()) < 20e-3

    def test_static_bridge_deterministic(self):
        assert presets.static_bridge().offset_voltage() == pytest.approx(
            presets.static_bridge().offset_voltage()
        )

    def test_resonant_bridge_higher_resistance(self):
        static = presets.static_bridge(mismatch_sigma=0.0)
        resonant = presets.resonant_bridge(mismatch_sigma=0.0)
        assert resonant.output_resistance() > static.output_resistance()

    def test_resonant_bridge_lower_power(self):
        static = presets.static_bridge(mismatch_sigma=0.0)
        resonant = presets.resonant_bridge(mismatch_sigma=0.0)
        assert resonant.power_dissipation() < static.power_dissipation()

    def test_resonant_bridge_worse_corner(self):
        static = presets.static_bridge(mismatch_sigma=0.0)
        resonant = presets.resonant_bridge(mismatch_sigma=0.0)
        assert resonant.corner_frequency() > 10.0 * static.corner_frequency()


class TestReadoutBlocks:
    def test_stage_names(self):
        blocks = presets.static_readout_blocks()
        assert list(blocks) == ["chopper", "lowpass", "offset_dac", "gain2", "gain3"]

    def test_first_stage_needs_chopping(self):
        amp = presets.first_stage_amplifier()
        # offset x full chain gain would slam the rails without chopping
        total_gain = 100.0 * 10.0 * 5.0
        assert abs(amp.input_offset) * total_gain > 2.5
