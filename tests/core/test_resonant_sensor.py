"""The assembled resonant biosensor (Fig. 2 + Fig. 5)."""

import numpy as np
import pytest

from repro.biochem import AssayProtocol, FunctionalizedSurface, get_analyte
from repro.core import ResonantCantileverSensor
from repro.units import nM, pg


@pytest.fixture(scope="module")
def sensor(geometry, water):
    surface = FunctionalizedSurface(get_analyte("streptavidin"), geometry)
    return ResonantCantileverSensor(surface, water)


class TestPhysics:
    def test_baseline_frequency_is_fluid_loaded(self, sensor):
        assert sensor.frequency_for_added_mass(0.0) == pytest.approx(
            sensor.fluid_mode.frequency, rel=1e-6
        )

    def test_mass_lowers_frequency(self, sensor):
        assert sensor.frequency_for_added_mass(pg(100)) < (
            sensor.frequency_for_added_mass(0.0)
        )

    def test_responsivity_matches_finite_difference(self, sensor):
        dm = pg(1.0)
        fd = (
            sensor.frequency_for_added_mass(dm)
            - sensor.frequency_for_added_mass(0.0)
        ) / dm
        assert sensor.mass_responsivity() == pytest.approx(fd, rel=1e-3)

    def test_liquid_blunts_responsivity(self, geometry, water):
        from repro.mechanics import mass_responsivity

        surface = FunctionalizedSurface(get_analyte("streptavidin"), geometry)
        wet = ResonantCantileverSensor(surface, water)
        dry_resp = mass_responsivity(geometry, distribution="uniform")
        # fluid loading raises the modal mass, cutting |df/dm|
        assert abs(wet.mass_responsivity()) < abs(dry_resp) / 3.0

    def test_counter_limited_lod(self, sensor):
        lod_1s = sensor.minimum_detectable_mass(gate_time=1.0)
        lod_10s = sensor.minimum_detectable_mass(gate_time=10.0)
        assert lod_10s == pytest.approx(lod_1s / 10.0)


class TestClosedLoopMeasurement:
    def test_measured_frequency_near_truth(self, sensor):
        mean_f, readings = sensor.measure_frequency(gate_time=0.05, gates=3)
        truth = sensor.frequency_for_added_mass(0.0)
        assert mean_f == pytest.approx(truth, rel=0.02)
        assert len(readings) == 3

    def test_readings_quantized_by_gate(self, sensor):
        _, readings = sensor.measure_frequency(gate_time=0.05, gates=3)
        resolution = 1.0 / 0.05
        for r in readings:
            assert r % resolution == pytest.approx(0.0, abs=1e-9)


class TestTrackingAssay:
    def test_tracks_binding(self, sensor):
        protocol = AssayProtocol.injection(
            nM(100), baseline=120, exposure=1800, wash=120
        )
        result = sensor.run_tracking_assay(
            protocol, gate_time=10.0, include_noise=False
        )
        # frequency falls while mass binds
        assert result.true_frequency[-1] < result.true_frequency[0]
        assert result.total_shift < 0.0

    def test_shift_magnitude_matches_physics(self, sensor):
        protocol = AssayProtocol.injection(
            nM(100), baseline=60, exposure=1800, wash=60
        )
        result = sensor.run_tracking_assay(
            protocol, gate_time=10.0, include_noise=False
        )
        expected = sensor.mass_responsivity() * result.added_mass[-1]
        true_shift = result.true_frequency[-1] - result.true_frequency[0]
        assert true_shift == pytest.approx(expected, rel=0.05)

    def test_measured_includes_closed_loop_offset(self, sensor):
        protocol = AssayProtocol.injection(nM(10), baseline=60, exposure=300, wash=60)
        result = sensor.run_tracking_assay(protocol, gate_time=10.0, include_noise=False)
        # measured frequency differs from truth by the calibrated loop
        # offset, not by much more
        frac = result.measured_frequency[0] / result.true_frequency[0] - 1.0
        assert abs(frac) < 0.02

    def test_quantization_applied(self, sensor):
        protocol = AssayProtocol.injection(nM(10), baseline=60, exposure=300, wash=60)
        result = sensor.run_tracking_assay(protocol, gate_time=2.0, include_noise=False)
        steps = result.measured_frequency * 2.0
        assert np.allclose(steps, np.round(steps))
