"""Dual-oscillator resonant chip."""

import math

import numpy as np
import pytest

from repro.biochem import AssayProtocol, FunctionalizedSurface, get_analyte
from repro.core import ResonantArrayChip
from repro.units import nM


@pytest.fixture(scope="module")
def chip(geometry, water):
    surface = FunctionalizedSurface(get_analyte("streptavidin"), geometry)
    return ResonantArrayChip(surface, water)


class TestConstruction:
    def test_reference_is_blocked(self, chip):
        assert chip.reference.surface.is_reference
        assert not chip.sensing.surface.is_reference

    def test_reference_detuned_upward(self, chip):
        f_s = chip.sensing.frequency_for_added_mass(0.0)
        f_r = chip.reference.frequency_for_added_mass(0.0)
        assert f_r / f_s == pytest.approx(1.02, rel=5e-3)

    def test_same_liquid_same_q_class(self, chip):
        q_s = chip.sensing.fluid_mode.quality_factor
        q_r = chip.reference.fluid_mode.quality_factor
        assert q_r == pytest.approx(q_s, rel=0.1)


class TestLiveMeasurement:
    def test_batched_equals_serial_pair(self, chip):
        """Both loops as ONE kernel batch == two solo runs, exactly."""
        batched = chip.measure_frequencies(gate_time=0.02, gates=2, batch=True)
        serial = chip.measure_frequencies(gate_time=0.02, gates=2, batch=False)
        assert batched == serial

    def test_both_loops_lock(self, chip):
        f_s, f_r = chip.measure_frequencies(gate_time=0.02, gates=2)
        assert f_s == pytest.approx(
            chip.sensing.fluid_mode.frequency, rel=0.02
        )
        assert f_r == pytest.approx(
            chip.reference.fluid_mode.frequency, rel=0.02
        )
        assert f_r > f_s


class TestCompensatedAssay:
    @pytest.fixture(scope="class")
    def result(self, chip):
        protocol = AssayProtocol.injection(
            nM(100), baseline=300, exposure=1800, wash=300
        )
        # +/-2 K swing: large enough that the raw thermal error
        # clearly exceeds the 30 s counter quantization
        wobble = lambda t: 2.0 * math.sin(2.0 * math.pi * t / 1200.0)
        return chip.run_compensated_assay(protocol, wobble, gate_time=30.0)

    def test_raw_trace_carries_temperature(self, chip, result):
        # the sensing frequency wobbles with the cell temperature
        detrended = result.sensing_frequency - np.mean(result.sensing_frequency)
        thermal_amp = abs(chip.tcf) * 2.0 * result.sensing_frequency[0]
        assert np.max(np.abs(detrended)) > 0.5 * thermal_amp

    def test_ratio_tracks_binding(self, chip, result):
        # the residual error floor is the counter's +/-1-count grid at
        # this gate time, in fractional units
        f0 = result.sensing_frequency[0]
        quantum = (1.0 / result.gate_time) / f0
        compensated = result.compensated_shift_fraction
        true_binding = float(result.true_binding_ratio[-1] - 1.0)
        assert abs(compensated - true_binding) <= 3.0 * quantum

    def test_ratio_rejects_temperature(self, chip, result):
        # residual thermal content of the ratio is bounded by counter
        # quantization, far below the raw thermal swing
        f0 = result.sensing_frequency[0]
        quantum = (1.0 / result.gate_time) / f0
        thermal_raw = abs(chip.tcf) * 2.0
        residual = np.abs(result.ratio / result.ratio[0] - result.true_binding_ratio)
        assert np.max(residual) < 3.0 * quantum
        assert 3.0 * quantum < 0.5 * thermal_raw  # compensation still wins

    def test_temperature_recorded(self, result):
        assert np.max(np.abs(result.temperature)) == pytest.approx(2.0, rel=0.05)
