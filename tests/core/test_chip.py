"""The 4-cantilever array chip with multiplexed readout."""

import numpy as np
import pytest

from repro.biochem import AssayProtocol, get_analyte
from repro.core import BiosensorChip, ChannelConfig
from repro.errors import AssayError
from repro.units import nM


@pytest.fixture(scope="module")
def chip(fabricated):
    return BiosensorChip(
        cantilever=fabricated,
        channels=[
            ChannelConfig(analyte=get_analyte("igg"), label="anti-IgG"),
            ChannelConfig(analyte=get_analyte("crp"), label="anti-CRP"),
            ChannelConfig(analyte=None, label="ref1"),
            ChannelConfig(analyte=None, label="ref2"),
        ],
        temperature_drift=20e-6,
    )


@pytest.fixture(scope="module")
def calibrated_chip(chip):
    chip.calibrate()
    return chip


class TestConstruction:
    def test_reference_channels_detected(self, chip):
        assert chip.reference_channels == (2, 3)

    def test_needs_exactly_four_channels(self, fabricated):
        with pytest.raises(AssayError):
            BiosensorChip(
                cantilever=fabricated,
                channels=[ChannelConfig(analyte=None)] * 3,
            )

    def test_channel_plan_mandatory(self, fabricated):
        # channels is a required argument...
        with pytest.raises(TypeError):
            BiosensorChip(cantilever=fabricated)
        # ...and an explicit None is rejected with a helpful message
        with pytest.raises(AssayError):
            BiosensorChip(cantilever=fabricated, channels=None)

    def test_four_sensors_built(self, chip):
        assert len(chip.sensors) == 4

    def test_distinct_bridges_per_channel(self, chip):
        offsets = [s.bridge.offset_voltage() for s in chip.sensors]
        assert len(set(offsets)) == 4  # different mismatch per beam


class TestArrayAssay:
    def test_active_channels_respond(self, calibrated_chip):
        protocol = AssayProtocol.injection(nM(50), baseline=60, exposure=900, wash=60)
        result = calibrated_chip.run_array_assay(
            protocol, sample_interval=10.0, include_noise=False
        )
        for ch in (0, 1):
            signal = result.referenced(ch)
            assert abs(signal[-1] - signal[0]) > 1e-3

    def test_referencing_cancels_drift(self, calibrated_chip):
        protocol = AssayProtocol.injection(nM(50), baseline=60, exposure=900, wash=60)
        result = calibrated_chip.run_array_assay(
            protocol, sample_interval=10.0, include_noise=False
        )
        raw = result.channel_outputs[0]
        referenced = result.referenced(0)
        drift = 20e-6 * (result.times[-1] - result.times[0])
        # the blocked reference beams carry the full thermal drift...
        ref_trace = result.channel_outputs[2]
        assert ref_trace[-1] - ref_trace[0] == pytest.approx(drift, abs=1e-9)
        # ...and subtracting them removes it from the active channel
        step_ref = referenced[-1] - referenced[0]
        step_raw_minus_drift = (raw[-1] - raw[0]) - drift
        assert step_ref == pytest.approx(step_raw_minus_drift, abs=1e-9)

    def test_reference_channel_cannot_be_referenced(self, calibrated_chip):
        protocol = AssayProtocol.injection(nM(10), baseline=30, exposure=60, wash=30)
        result = calibrated_chip.run_array_assay(protocol, sample_interval=10.0)
        with pytest.raises(AssayError):
            result.referenced(2)

    def test_labels(self, calibrated_chip):
        protocol = AssayProtocol.injection(nM(10), baseline=30, exposure=60, wash=30)
        result = calibrated_chip.run_array_assay(protocol, sample_interval=10.0)
        assert result.channel_labels[0] == "anti-IgG"
        assert result.channel_labels[2] == "ref1"


class TestMuxScan:
    def test_scan_visits_all_channels(self, chip):
        muxed, slots = chip.scan_bridges(dwell_time=5e-3, duration=0.05)
        visited = {s.channel for s in slots}
        assert visited == {0, 1, 2, 3}

    def test_scan_levels_match_bridge_offsets(self, chip):
        muxed, slots = chip.scan_bridges(dwell_time=5e-3, duration=0.08)
        means = chip.mux.demultiplex_means(muxed, slots, settle_fraction=0.5)
        for ch in range(4):
            expected = chip.sensors[ch].bridge_voltage(0.0)
            assert np.mean(means[ch]) == pytest.approx(expected, abs=5e-5)
