"""The assembled static biosensor (Fig. 1 + Fig. 4)."""

import numpy as np
import pytest

from repro.biochem import AssayProtocol
from repro.core import StaticCantileverSensor
from repro.units import nM


@pytest.fixture(scope="module")
def sensor(igg_surface):
    s = StaticCantileverSensor(igg_surface)
    s.characterize_chain()
    s.calibrate_offset()
    return s


class TestTransduction:
    def test_stress_responsivity_sign_and_scale(self, sensor):
        r = sensor.stress_responsivity()
        # microvolts per mN/m from the bridge
        assert 1e-5 < abs(r) < 1e-1

    def test_bridge_voltage_includes_offset(self, igg_surface):
        s = StaticCantileverSensor(igg_surface)
        assert s.bridge_voltage(0.0) == pytest.approx(
            s.bridge.offset_voltage()
        )


class TestChainCharacterization:
    def test_dc_gain_scale(self, sensor):
        # nominal 5000 minus chopper GBW loss
        assert 2500.0 < sensor.dc_gain < 5000.0

    def test_noise_floor(self, sensor):
        # low-mV output noise -> sub-uV input-referred
        assert sensor.output_noise_rms < 10e-3
        assert sensor.output_noise_rms / sensor.dc_gain < 2e-6

    def test_lazy_characterization(self, igg_surface):
        s = StaticCantileverSensor(igg_surface)
        assert s.dc_gain != 0.0  # triggers characterize_chain()


class TestOffsetCalibration:
    def test_residual_small(self, igg_surface):
        s = StaticCantileverSensor(igg_surface)
        residual = s.calibrate_offset()
        # bridge offset (mV) x chain gain (~4k) would be several volts;
        # after calibration the residual is within a few DAC LSBs x gain
        post_gain = s.blocks["gain2"].gain * s.blocks["gain3"].gain
        assert abs(residual) < 3.0 * s.blocks["offset_dac"].lsb * post_gain

    def test_output_linear_in_stress(self, sensor):
        base = sensor.output_for_stress(0.0)
        v1 = sensor.output_for_stress(-1e-3) - base
        v2 = sensor.output_for_stress(-2e-3) - base
        assert v2 == pytest.approx(2.0 * v1, rel=1e-6)


class TestAssay:
    def test_assay_produces_negative_step(self, sensor):
        # compressive stress with the default bridge orientation
        protocol = AssayProtocol.injection(nM(10), baseline=60, exposure=600, wash=60)
        result = sensor.run_assay(protocol, sample_interval=5.0, include_noise=False)
        assert result.output_step(baseline_samples=10) < 0.0

    def test_higher_concentration_bigger_step(self, sensor):
        p_low = AssayProtocol.injection(nM(1), baseline=60, exposure=600, wash=60)
        p_high = AssayProtocol.injection(nM(100), baseline=60, exposure=600, wash=60)
        low = sensor.run_assay(p_low, 5.0, include_noise=False)
        high = sensor.run_assay(p_high, 5.0, include_noise=False)
        assert abs(high.output_step(10)) > abs(low.output_step(10))

    def test_noise_reproducible_by_seed(self, sensor):
        p = AssayProtocol.injection(nM(10), baseline=30, exposure=120, wash=30)
        a = sensor.run_assay(p, 5.0, seed=5)
        b = sensor.run_assay(p, 5.0, seed=5)
        assert np.array_equal(a.output_voltage, b.output_voltage)

    def test_signal_above_noise_at_10nm(self, sensor):
        p = AssayProtocol.injection(nM(10), baseline=120, exposure=1200, wash=60)
        r = sensor.run_assay(p, 5.0, include_noise=False)
        assert abs(r.output_step(10)) > 3.0 * sensor.output_noise_rms

    def test_trace_fields_consistent(self, sensor):
        p = AssayProtocol.injection(nM(10), baseline=30, exposure=120, wash=30)
        r = sensor.run_assay(p, 5.0)
        assert len(r.times) == len(r.coverage) == len(r.output_voltage)
        assert np.all(np.diff(r.times) > 0.0)


class TestFullRatePath:
    def test_waveform_processing(self, sensor):
        from repro.circuits import Signal

        # ride the tone on the bridge's own offset: the calibrated DAC
        # expects it, and feeding a bare tone would rail the gain stages
        tone = Signal.sine(
            10.0, 0.3, sensor.sample_rate, amplitude=100e-6,
            offset=sensor.bridge_voltage(0.0),
        )
        out = sensor.process_waveform(tone)
        # chain amplifies the 10 Hz tone by ~ dc gain
        gain = out.settle(0.5).std() / tone.settle(0.5).std()
        assert gain == pytest.approx(sensor.dc_gain, rel=0.2)
