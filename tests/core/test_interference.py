"""Monolithic vs external readout (the paper's integration claim)."""

import math

import pytest

from repro.circuits import DifferenceAmplifier, Signal
from repro.core import (
    EXTERNAL_PATH,
    MONOLITHIC_PATH,
    ReadoutPath,
    compare_paths,
    evaluate_path,
)

FS = 100e3


@pytest.fixture()
def bridge_signal():
    return Signal.sine(10.0, 0.5, FS, amplitude=50e-6)


@pytest.fixture()
def interferer():
    # 100 mV of mains-frequency pickup
    return Signal.sine(50.0, 0.5, FS, amplitude=0.1)


class TestPaths:
    def test_monolithic_pickup_tiny(self):
        assert MONOLITHIC_PATH.differential_pickup() < 1e-6

    def test_external_pickup_large(self):
        assert EXTERNAL_PATH.differential_pickup() > 100.0 * (
            MONOLITHIC_PATH.differential_pickup()
        )

    def test_input_pole(self):
        pole = EXTERNAL_PATH.input_pole(10e3)
        assert pole == pytest.approx(
            1.0 / (2.0 * math.pi * 10e3 * 20e-12), rel=1e-9
        )

    def test_no_capacitance_infinite_pole(self):
        path = ReadoutPath("x", 0.0, 0.0, 0.0)
        assert math.isinf(path.input_pole(10e3))


class TestComparison:
    def test_monolithic_wins_decisively(self, bridge_signal, interferer):
        mono, ext = compare_paths(bridge_signal, interferer)
        assert mono.snr_db > ext.snr_db + 40.0

    def test_monolithic_snr_stays_high(self, bridge_signal, interferer):
        mono, _ = compare_paths(bridge_signal, interferer)
        assert mono.snr_db > 40.0

    def test_external_fails_at_high_interference(self, bridge_signal):
        strong = Signal.sine(50.0, 0.5, FS, amplitude=1.0)
        _, ext = compare_paths(bridge_signal, strong)
        assert ext.snr_db < 10.0

    def test_snr_falls_with_interference(self, bridge_signal):
        results = []
        for amp in (0.01, 0.1, 1.0):
            interferer = Signal.sine(50.0, 0.5, FS, amplitude=amp)
            _, ext = compare_paths(bridge_signal, interferer)
            results.append(ext.snr_db)
        assert results[0] > results[1] > results[2]

    def test_no_interference_no_error(self, bridge_signal):
        silent = Signal.constant(0.0, 0.5, FS)
        mono, ext = compare_paths(bridge_signal, silent)
        assert mono.snr_db > 100.0
        assert ext.snr_db > 100.0

    def test_evaluate_path_fields(self, bridge_signal, interferer):
        amp = DifferenceAmplifier(gain=100.0, cmrr_db=90.0, noise_density=0.0)
        result = evaluate_path(EXTERNAL_PATH, amp, bridge_signal, interferer)
        assert result.path_name == "external"
        assert result.signal_rms > 0.0
        assert result.error_rms > 0.0
