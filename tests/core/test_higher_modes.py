"""Higher-mode operation of the resonant sensor."""

import pytest

from repro.biochem import FunctionalizedSurface, get_analyte
from repro.core import ResonantCantileverSensor


@pytest.fixture(scope="module")
def mode1(geometry, water):
    surface = FunctionalizedSurface(get_analyte("igg"), geometry)
    return ResonantCantileverSensor(surface, water, mode=1)


@pytest.fixture(scope="module")
def mode2(geometry, water):
    surface = FunctionalizedSurface(get_analyte("igg"), geometry)
    return ResonantCantileverSensor(surface, water, mode=2)


class TestModePhysics:
    def test_mode2_higher_frequency(self, mode1, mode2):
        ratio = mode2.fluid_mode.frequency / mode1.fluid_mode.frequency
        # vacuum ratio is 6.27; fluid loading compresses it somewhat
        assert 5.0 < ratio < 7.5

    def test_mode2_higher_q_in_liquid(self, mode1, mode2):
        assert mode2.fluid_mode.quality_factor > (
            1.5 * mode1.fluid_mode.quality_factor
        )

    def test_mode2_better_mass_responsivity(self, mode1, mode2):
        # the central reason to go up in mode number
        assert abs(mode2.mass_responsivity()) > 4.0 * abs(
            mode1.mass_responsivity()
        )

    def test_mode2_better_counter_lod(self, mode1, mode2):
        assert mode2.minimum_detectable_mass(1.0) < 0.25 * (
            mode1.minimum_detectable_mass(1.0)
        )


class TestMode2Loop:
    def test_loop_locks_on_mode2(self, mode2):
        mean_f, _ = mode2.measure_frequency(gate_time=0.02, gates=3)
        assert mean_f == pytest.approx(mode2.fluid_mode.frequency, rel=0.02)

    def test_mode2_frequency_for_mass_consistent(self, mode2):
        from repro.units import pg

        f0 = mode2.frequency_for_added_mass(0.0)
        f1 = mode2.frequency_for_added_mass(pg(100))
        assert f1 < f0
        assert (f1 - f0) / pg(100) == pytest.approx(
            mode2.mass_responsivity(), rel=1e-3
        )
