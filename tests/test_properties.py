"""Property-based tests (hypothesis) on core invariants.

Each property encodes a physical law or structural invariant that must
hold over the whole parameter space, not just at the calibration points
the unit tests pin down.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.biochem import (
    coverage_transient,
    equilibrium_coverage,
    get_analyte,
)
from repro.circuits import LimitingAmplifier, OffsetCompensationDAC, Signal
from repro.circuits.chopper import square_carrier
from repro.mechanics import CantileverGeometry, stoney_uniform
from repro.mechanics.beam import spring_constant
from repro.mechanics.modal import natural_frequency
from repro.mechanics.resonance import (
    frequency_with_added_mass,
    mass_from_frequency_shift,
)
from repro.mechanics.surface_stress import curvature, tip_deflection
from repro.transduction import DiffusedResistor, matched_bridge
from repro.units import um


# -- strategies ---------------------------------------------------------------

lengths = st.floats(min_value=100.0, max_value=1000.0)  # um
widths = st.floats(min_value=20.0, max_value=200.0)  # um
thicknesses = st.floats(min_value=1.0, max_value=10.0)  # um
stresses = st.floats(min_value=-50e-3, max_value=50e-3)  # N/m
concentrations = st.floats(min_value=0.0, max_value=1e22)  # molecules/m^3
coverages = st.floats(min_value=0.0, max_value=1.0)


def build_geometry(length_um, width_um, thickness_um):
    return CantileverGeometry.uniform(
        um(length_um), um(width_um), um(thickness_um)
    )


# -- mechanics ----------------------------------------------------------------


class TestMechanicsProperties:
    @given(lengths, widths, thicknesses)
    @settings(max_examples=60, deadline=None)
    def test_spring_constant_scaling(self, l, w, t):
        assume(l > 2.5 * t)
        g = build_geometry(l, w, t)
        doubled = g.scaled(length_factor=2.0)
        assert spring_constant(doubled) == pytest.approx(
            spring_constant(g) / 8.0, rel=1e-9
        )

    @given(lengths, widths, thicknesses)
    @settings(max_examples=60, deadline=None)
    def test_frequency_scaling_t_over_l2(self, l, w, t):
        assume(l > 5.0 * t)
        g = build_geometry(l, w, t)
        f = natural_frequency(g)
        g2 = g.scaled(length_factor=2.0, thickness_factor=2.0)
        assert natural_frequency(g2) == pytest.approx(f / 2.0, rel=1e-9)

    @given(lengths, widths, thicknesses, stresses, stresses)
    @settings(max_examples=60, deadline=None)
    def test_stoney_superposition(self, l, w, t, s1, s2):
        assume(l > 2.5 * t)
        g = build_geometry(l, w, t)
        z1 = tip_deflection(g, s1)
        z2 = tip_deflection(g, s2)
        z12 = tip_deflection(g, s1 + s2)
        assert z12 == pytest.approx(z1 + z2, rel=1e-9, abs=1e-18)

    @given(lengths, widths, thicknesses, stresses)
    @settings(max_examples=60, deadline=None)
    def test_wide_beam_bends_less_than_uniaxial(self, l, w, t, s):
        assume(l > 2.5 * t)
        assume(abs(s) > 1e-6)
        g = build_geometry(l, w, t)
        si = g.stack.layers[0].material
        uniaxial = stoney_uniform(
            si.youngs_modulus, si.poisson_ratio, g.thickness, s, wide=False
        )
        # narrow beams equal the uniaxial value through a different
        # float path; allow rounding headroom
        assert abs(curvature(g, s)) <= abs(uniaxial) * (1.0 + 1e-12)

    @given(
        lengths,
        widths,
        thicknesses,
        st.floats(min_value=1e-16, max_value=1e-10),
    )
    @settings(max_examples=60, deadline=None)
    def test_mass_inversion_round_trip(self, l, w, t, dm):
        assume(l > 2.5 * t)
        g = build_geometry(l, w, t)
        f = frequency_with_added_mass(g, dm)
        f0 = natural_frequency(g)
        recovered = mass_from_frequency_shift(g, f - f0)
        assert recovered == pytest.approx(dm, rel=1e-6)

    @given(lengths, widths, thicknesses, st.floats(min_value=0.0, max_value=1e-9))
    @settings(max_examples=60, deadline=None)
    def test_added_mass_never_raises_frequency(self, l, w, t, dm):
        assume(l > 2.5 * t)
        g = build_geometry(l, w, t)
        assert frequency_with_added_mass(g, dm) <= natural_frequency(g) + 1e-9


# -- biochemistry ---------------------------------------------------------------


class TestBindingProperties:
    @given(concentrations)
    @settings(max_examples=60, deadline=None)
    def test_equilibrium_in_unit_interval(self, c):
        igg = get_analyte("igg")
        theta = equilibrium_coverage(igg, c)
        assert 0.0 <= theta <= 1.0

    @given(concentrations, concentrations)
    @settings(max_examples=60, deadline=None)
    def test_isotherm_monotone(self, c1, c2):
        igg = get_analyte("igg")
        low, high = sorted((c1, c2))
        assert equilibrium_coverage(igg, low) <= equilibrium_coverage(igg, high)

    @given(concentrations, coverages, st.floats(min_value=0.1, max_value=1e5))
    @settings(max_examples=60, deadline=None)
    def test_transient_bounded(self, c, theta0, t_end):
        igg = get_analyte("igg")
        t = np.linspace(0.0, t_end, 50)
        theta = coverage_transient(igg, c, t, initial_coverage=theta0)
        assert np.all(theta >= -1e-12)
        assert np.all(theta <= 1.0 + 1e-12)

    @given(concentrations, coverages, st.floats(min_value=0.1, max_value=1e5))
    @settings(max_examples=60, deadline=None)
    def test_transient_monotone_toward_equilibrium(self, c, theta0, t_end):
        igg = get_analyte("igg")
        t = np.linspace(0.0, t_end, 50)
        theta = coverage_transient(igg, c, t, initial_coverage=theta0)
        theta_eq = equilibrium_coverage(igg, c)
        if theta0 <= theta_eq:
            assert np.all(np.diff(theta) >= -1e-12)
        else:
            assert np.all(np.diff(theta) <= 1e-12)


# -- transduction -----------------------------------------------------------------


class TestBridgeProperties:
    @given(st.floats(min_value=-50e6, max_value=50e6))
    @settings(max_examples=60, deadline=None)
    def test_balanced_bridge_odd_response(self, sigma):
        bridge = matched_bridge(DiffusedResistor(nominal_resistance=10e3))
        v_plus = bridge.output_voltage(sigma)
        v_minus = bridge.output_voltage(-sigma)
        assert v_plus == pytest.approx(-v_minus, rel=1e-3, abs=1e-12)

    @given(
        st.floats(min_value=1e3, max_value=100e3),
        st.floats(min_value=0.5, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_bounded_by_supply(self, resistance, bias):
        bridge = matched_bridge(
            DiffusedResistor(nominal_resistance=resistance), bias_voltage=bias
        )
        for sigma in (-1e9, -1e6, 0.0, 1e6, 1e9):
            assert abs(bridge.output_voltage(sigma)) <= bias


# -- circuits ----------------------------------------------------------------------


class TestCircuitProperties:
    @given(st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=60, deadline=None)
    def test_describing_function_below_small_signal_gain(self, amplitude):
        limiter = LimitingAmplifier(small_signal_gain=5.0, output_level=1.0)
        assert limiter.describing_function(amplitude) <= 5.0 + 1e-9

    @given(st.floats(min_value=-0.999, max_value=0.999))
    @settings(max_examples=60, deadline=None)
    def test_dac_residual_within_half_lsb(self, offset):
        dac = OffsetCompensationDAC(full_scale=1.0, bits=10)
        residual = dac.calibrate(offset)
        assert abs(residual) <= dac.lsb / 2.0 + 1e-12

    @given(
        st.floats(min_value=100.0, max_value=40e3),
        st.integers(min_value=100, max_value=5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_carrier_is_binary(self, f_chop, n):
        carrier = square_carrier(f_chop, n, 100e3)
        assert set(np.unique(carrier)).issubset({-1.0, 1.0})
        assert len(carrier) == n

    @given(st.floats(min_value=-10.0, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_limiter_output_strictly_bounded(self, x):
        limiter = LimitingAmplifier(small_signal_gain=3.0, output_level=0.7)
        assert abs(limiter.step(x)) <= 0.7
