"""Rectangle/layout primitives."""

import pytest

from repro.errors import GeometryError
from repro.fabrication import Layout, Rect


class TestRect:
    def test_dimensions(self):
        r = Rect(0.0, 0.0, 3.0, 2.0)
        assert r.width == 3.0
        assert r.height == 2.0
        assert r.min_dimension == 2.0
        assert r.area == 6.0
        assert r.center == (1.5, 1.0)

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Rect(0.0, 0.0, 0.0, 1.0)

    def test_from_size(self):
        r = Rect.from_size(5.0, 5.0, 2.0, 4.0)
        assert (r.x0, r.y0, r.x1, r.y1) == (4.0, 3.0, 6.0, 7.0)

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert not a.intersects(Rect(3, 3, 4, 4))

    def test_edge_contact_is_not_overlap(self):
        a = Rect(0, 0, 2, 2)
        assert not a.intersects(Rect(2, 0, 4, 2))

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains(Rect(1, 1, 9, 9))
        assert not outer.contains(Rect(5, 5, 11, 9))

    def test_enclosure_margin(self):
        outer = Rect(0, 0, 10, 10)
        inner = Rect(2, 3, 8, 9)
        assert outer.enclosure_of(inner) == pytest.approx(1.0)

    def test_enclosure_negative_when_outside(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.enclosure_of(Rect(-1, 2, 5, 5)) < 0.0

    def test_separation(self):
        a = Rect(0, 0, 1, 1)
        assert a.separation(Rect(3, 0, 4, 1)) == pytest.approx(2.0)
        assert a.separation(Rect(0.5, 0.5, 2, 2)) == 0.0

    def test_diagonal_separation(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(4, 5, 5, 6)
        assert a.separation(b) == pytest.approx(5.0)  # 3-4-5 triangle

    def test_expanded(self):
        r = Rect(1, 1, 2, 2).expanded(0.5)
        assert (r.x0, r.y0, r.x1, r.y1) == (0.5, 0.5, 2.5, 2.5)


class TestLayout:
    def test_add_and_shapes(self):
        layout = Layout()
        layout.add("m1", Rect(0, 0, 1, 1))
        layout.add("m1", Rect(2, 2, 3, 3))
        assert len(layout.shapes("m1")) == 2

    def test_unknown_layer_empty(self):
        assert Layout().shapes("nothing") == []

    def test_layer_names_sorted(self):
        layout = Layout()
        layout.add("z", Rect(0, 0, 1, 1))
        layout.add("a", Rect(0, 0, 1, 1))
        assert layout.layer_names() == ["a", "z"]

    def test_bounding_box(self):
        layout = Layout()
        layout.add("m", Rect(0, 0, 1, 1))
        layout.add("m", Rect(5, 5, 6, 7))
        bb = layout.bounding_box("m")
        assert (bb.x0, bb.y0, bb.x1, bb.y1) == (0, 0, 6, 7)

    def test_bounding_box_empty(self):
        assert Layout().bounding_box("m") is None
