"""The complete post-CMOS flow (Fig. 3)."""

import pytest

from repro.fabrication import PostCMOSFlow
from repro.fabrication.layers import LayerRole


class TestDefaultFlow:
    def test_before_after_layer_counts(self):
        result = PostCMOSFlow().run()
        assert len(result.before.layers) == 11
        assert result.before.layer_names()[0] == "substrate"
        # bare-silicon beam: only the n-well survives at the beam site
        assert result.beam_site.layer_names() == ["nwell"]

    def test_trench_cleared(self):
        result = PostCMOSFlow().run()
        assert result.trench_site.layer_names() == []
        assert result.released

    def test_koh_time_reported(self):
        result = PostCMOSFlow().run()
        assert result.koh_time > 3600.0

    def test_beam_thickness_is_nwell_depth(self):
        result = PostCMOSFlow(nwell_depth=4e-6).run()
        assert result.beam_site.total_thickness == pytest.approx(4e-6)

    def test_history_preserved_on_before(self):
        result = PostCMOSFlow().run()
        assert len(result.before.history) == 1  # untouched snapshot
        assert len(result.beam_site.history) > 1


class TestDielectricVariant:
    def test_dielectrics_retained(self):
        result = PostCMOSFlow(keep_dielectrics_on_beam=True).run()
        names = result.beam_site.layer_names()
        assert "nwell" in names
        assert "passivation" in names
        assert "metal2" in names  # the coil metal can stay on the beam

    def test_trench_still_cleared(self):
        result = PostCMOSFlow(keep_dielectrics_on_beam=True).run()
        assert result.released

    def test_heavier_beam(self):
        bare = PostCMOSFlow().run()
        coated = PostCMOSFlow(keep_dielectrics_on_beam=True).run()
        assert (
            coated.beam_site.total_thickness > bare.beam_site.total_thickness
        )
