"""KOH and RIE etch models."""

import math

import pytest

from repro.constants import KOH_SIDEWALL_ANGLE_DEG
from repro.errors import FabricationError
from repro.fabrication import (
    KOHEtch,
    WaferCrossSection,
    cmos_08um_stack,
    dielectric_release_etch,
    silicon_release_etch,
)
from repro.fabrication.layers import LayerRole


class TestKOHRate:
    def test_reference_point(self):
        # ~1.4 um/min at 90 C / 30 wt%
        koh = KOHEtch()
        assert koh.rate_100 * 60e6 == pytest.approx(1.4, rel=0.05)

    def test_arrhenius_slows_at_lower_temperature(self):
        hot = KOHEtch(temperature=363.15)
        cold = KOHEtch(temperature=333.15)
        assert cold.rate_100 < hot.rate_100 / 3.0

    def test_etch_time_of_wafer(self):
        koh = KOHEtch()
        hours = koh.etch_time(520e-6) / 3600.0
        assert 4.0 < hours < 9.0

    def test_invalid_concentration(self):
        with pytest.raises(FabricationError):
            KOHEtch(concentration_percent=80.0)

    def test_undercut_small(self):
        koh = KOHEtch()
        assert koh.sidewall_undercut(500e-6) == pytest.approx(500e-6 / 400.0)


class TestSidewallGeometry:
    def test_opening_larger_than_membrane(self):
        opening = KOHEtch.mask_opening_for_membrane(500e-6, 520e-6)
        assert opening > 500e-6

    def test_slope_factor(self):
        depth = 520e-6
        opening = KOHEtch.mask_opening_for_membrane(100e-6, depth)
        slope = math.tan(math.radians(KOH_SIDEWALL_ANGLE_DEG))
        assert opening == pytest.approx(100e-6 + 2.0 * depth / slope)

    def test_round_trip(self):
        opening = KOHEtch.mask_opening_for_membrane(300e-6, 520e-6)
        membrane = KOHEtch.membrane_for_mask_opening(opening, 520e-6)
        assert membrane == pytest.approx(300e-6)

    def test_self_terminating_pit_raises(self):
        with pytest.raises(FabricationError):
            KOHEtch.membrane_for_mask_opening(100e-6, 520e-6)


class TestKOHApply:
    def test_removes_substrate_keeps_nwell(self):
        cs = WaferCrossSection(cmos_08um_stack())
        KOHEtch().apply(cs)
        assert "substrate" not in cs.layer_names()
        assert "nwell" in cs.layer_names()

    def test_returns_etch_time(self):
        cs = WaferCrossSection(cmos_08um_stack())
        t = KOHEtch().apply(cs)
        assert t > 3600.0

    def test_requires_nwell(self):
        stack = [l for l in cmos_08um_stack() if l.name != "nwell"]
        cs = WaferCrossSection(stack)
        with pytest.raises(FabricationError):
            KOHEtch().apply(cs)

    def test_double_etch_rejected(self):
        cs = WaferCrossSection(cmos_08um_stack())
        KOHEtch().apply(cs)
        with pytest.raises(FabricationError):
            KOHEtch().apply(cs)

    def test_history_records_recipe(self):
        cs = WaferCrossSection(cmos_08um_stack())
        KOHEtch().apply(cs)
        assert any("KOH" in h for h in cs.history)


class TestRIE:
    def test_dielectric_etch_strips_backend(self):
        cs = WaferCrossSection(cmos_08um_stack())
        removed = dielectric_release_etch().apply(cs)
        assert "passivation" in removed
        assert "metal1" in removed
        assert cs.layer_names() == ["substrate", "nwell"]

    def test_silicon_etch_after_dielectric(self):
        cs = WaferCrossSection(cmos_08um_stack())
        KOHEtch().apply(cs)
        dielectric_release_etch().apply(cs)
        silicon_release_etch().apply(cs)
        assert cs.layer_names() == []

    def test_etch_with_nothing_to_remove_raises(self):
        cs = WaferCrossSection(cmos_08um_stack())
        dielectric_release_etch().apply(cs)
        with pytest.raises(FabricationError):
            dielectric_release_etch().apply(cs)
