"""Fabrication-to-mechanics bridge."""

import pytest

from repro.errors import FabricationError
from repro.fabrication import (
    PostCMOSFlow,
    WaferCrossSection,
    cmos_08um_stack,
    fabricate_cantilever,
    stack_from_cross_section,
)
from repro.mechanics import natural_frequency
from repro.units import um


class TestStackConversion:
    def test_rejects_unreleased_section(self):
        cs = WaferCrossSection(cmos_08um_stack())
        with pytest.raises(FabricationError):
            stack_from_cross_section(cs)

    def test_converts_released_section(self):
        result = PostCMOSFlow().run()
        stack = stack_from_cross_section(result.beam_site)
        assert stack.total_thickness == pytest.approx(5e-6)
        assert stack.layers[0].material.name == "silicon"


class TestFabricateCantilever:
    def test_geometry_matches_drawn_dimensions(self, fabricated):
        assert fabricated.geometry.length == pytest.approx(500e-6)
        assert fabricated.geometry.width == pytest.approx(100e-6)
        assert fabricated.geometry.thickness == pytest.approx(5e-6)

    def test_silicon_thickness_from_etch_stop(self, fabricated):
        assert fabricated.silicon_thickness == pytest.approx(5e-6)

    def test_frequency_of_fabricated_beam(self, fabricated):
        # the etch-stop-defined beam resonates where the design predicts
        assert natural_frequency(fabricated.geometry) == pytest.approx(
            27.5e3, rel=0.01
        )

    def test_nwell_depth_controls_frequency(self):
        thin = fabricate_cantilever(
            um(500), um(100), PostCMOSFlow(nwell_depth=2.5e-6)
        )
        thick = fabricate_cantilever(
            um(500), um(100), PostCMOSFlow(nwell_depth=5e-6)
        )
        ratio = natural_frequency(thick.geometry) / natural_frequency(thin.geometry)
        assert ratio == pytest.approx(2.0, rel=1e-6)

    def test_backside_opening_exceeds_beam(self, fabricated):
        # the 54.74-degree sidewalls demand a much larger backside window
        assert fabricated.backside_opening > 1e-3

    def test_dielectric_variant_stiffer(self):
        bare = fabricate_cantilever(um(500), um(100))
        coated = fabricate_cantilever(
            um(500), um(100), PostCMOSFlow(keep_dielectrics_on_beam=True)
        )
        assert (
            coated.geometry.flexural_rigidity > bare.geometry.flexural_rigidity
        )

    def test_process_record_attached(self, fabricated):
        assert fabricated.process.released
        assert fabricated.process.koh_time > 0.0
