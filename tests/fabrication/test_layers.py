"""CMOS layer stack and wafer cross-section bookkeeping."""

import pytest

from repro.errors import FabricationError
from repro.fabrication import (
    NWELL_DEPTH,
    WAFER_THICKNESS,
    LayerRole,
    WaferCrossSection,
    cmos_08um_stack,
)


class TestStackDefinition:
    def test_layer_order(self):
        names = [l.name for l in cmos_08um_stack()]
        assert names[0] == "substrate"
        assert names[1] == "nwell"
        assert names[-1] == "passivation"
        assert names.index("metal1") < names.index("metal2")
        assert names.index("poly1") < names.index("poly2")

    def test_double_poly_double_metal(self):
        stack = cmos_08um_stack()
        polys = [l for l in stack if l.role == LayerRole.POLYSILICON]
        metals = [l for l in stack if l.role == LayerRole.METAL]
        assert len(polys) == 2
        assert len(metals) == 2

    def test_total_silicon_is_wafer_thickness(self):
        stack = cmos_08um_stack()
        silicon = sum(
            l.thickness
            for l in stack
            if l.role in (LayerRole.SUBSTRATE, LayerRole.WELL)
        )
        assert silicon == pytest.approx(WAFER_THICKNESS)

    def test_custom_nwell_depth(self):
        stack = cmos_08um_stack(nwell_depth=3e-6)
        nwell = next(l for l in stack if l.name == "nwell")
        assert nwell.thickness == pytest.approx(3e-6)

    def test_unreasonable_nwell_rejected(self):
        with pytest.raises(FabricationError):
            cmos_08um_stack(nwell_depth=1e-3)


class TestCrossSection:
    def test_find(self):
        cs = WaferCrossSection(cmos_08um_stack())
        assert cs.find("metal1").role == LayerRole.METAL

    def test_find_missing_raises(self):
        cs = WaferCrossSection(cmos_08um_stack())
        with pytest.raises(FabricationError):
            cs.find("metal3")

    def test_remove(self):
        cs = WaferCrossSection(cmos_08um_stack())
        cs.remove(["passivation", "metal2"], "test etch")
        assert "passivation" not in cs.layer_names()
        assert "test etch" in cs.history

    def test_remove_to_empty_allowed(self):
        cs = WaferCrossSection(cmos_08um_stack())
        cs.remove(cs.layer_names(), "punch through")
        assert cs.layer_names() == []

    def test_thin(self):
        cs = WaferCrossSection(cmos_08um_stack())
        cs.thin("nwell", 2e-6, "timed etch")
        assert cs.find("nwell").thickness == pytest.approx(2e-6)

    def test_thin_cannot_grow(self):
        cs = WaferCrossSection(cmos_08um_stack())
        with pytest.raises(FabricationError):
            cs.thin("nwell", 10e-6, "impossible")

    def test_copy_independent(self):
        cs = WaferCrossSection(cmos_08um_stack())
        clone = cs.copy()
        cs.remove(["passivation"], "etch")
        assert "passivation" in clone.layer_names()

    def test_describe(self):
        cs = WaferCrossSection(cmos_08um_stack())
        text = cs.describe()
        assert "nwell" in text
        assert "passivation" in text

    def test_history_starts_with_fabrication(self):
        cs = WaferCrossSection(cmos_08um_stack())
        assert "as-fabricated" in cs.history[0]
