"""Process-variation Monte Carlo."""

import numpy as np
import pytest

from repro.fabrication import (
    ProcessCorners,
    expected_frequency_spread,
    monte_carlo_devices,
)
from repro.units import um


@pytest.fixture(scope="module")
def mc_result():
    return monte_carlo_devices(um(500), um(100), samples=120, seed=5)


class TestMonteCarlo:
    def test_sample_count(self, mc_result):
        assert len(mc_result.frequencies) == 120

    def test_mean_near_nominal(self, mc_result):
        assert np.mean(mc_result.frequencies) == pytest.approx(27.5e3, rel=0.02)

    def test_spread_matches_first_order(self, mc_result):
        measured = mc_result.frequency_spread_ppm() / 1e6
        expected = expected_frequency_spread()
        assert measured == pytest.approx(expected, rel=0.3)

    def test_reproducible_with_seed(self):
        a = monte_carlo_devices(um(500), um(100), samples=10, seed=9)
        b = monte_carlo_devices(um(500), um(100), samples=10, seed=9)
        assert np.array_equal(a.frequencies, b.frequencies)

    def test_summary_keys(self, mc_result):
        summary = mc_result.summary()
        assert set(summary) >= {
            "f_mean_Hz",
            "f_sigma_Hz",
            "f_spread_ppm",
            "k_mean_N_per_m",
        }

    def test_zero_corners_zero_spread(self):
        corners = ProcessCorners(
            nwell_depth_sigma=0.0, length_sigma=0.0, width_sigma=0.0
        )
        result = monte_carlo_devices(um(500), um(100), corners, samples=5)
        assert result.frequency_spread_ppm() == pytest.approx(0.0, abs=1e-6)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            monte_carlo_devices(um(500), um(100), samples=1)


class TestAnalytic:
    def test_thickness_dominates(self):
        thick_only = ProcessCorners(
            nwell_depth_sigma=0.03, length_sigma=0.0, width_sigma=0.0
        )
        litho_only = ProcessCorners(
            nwell_depth_sigma=0.0, length_sigma=0.002, width_sigma=0.0
        )
        assert expected_frequency_spread(thick_only) > 5.0 * (
            expected_frequency_spread(litho_only)
        )

    def test_width_irrelevant_to_frequency(self):
        narrow = ProcessCorners(width_sigma=0.0)
        wide = ProcessCorners(width_sigma=0.2)
        assert expected_frequency_spread(narrow) == pytest.approx(
            expected_frequency_spread(wide)
        )


class TestYield:
    def test_full_window_full_yield(self, mc_result):
        from repro.fabrication import yield_fraction

        assert yield_fraction(mc_result, 0.0, 1e9) == 1.0

    def test_tight_window_partial_yield(self, mc_result):
        from repro.fabrication import yield_fraction

        inside = yield_fraction(mc_result, 27.5e3 * 0.99, 27.5e3 * 1.01)
        assert 0.05 < inside < 0.95

    def test_spec_window_round_trip(self, mc_result):
        from repro.fabrication import spec_window_for_yield, yield_fraction

        low, high = spec_window_for_yield(mc_result, target_yield=0.90)
        assert yield_fraction(mc_result, low, high) >= 0.90

    def test_wider_target_wider_window(self, mc_result):
        from repro.fabrication import spec_window_for_yield

        narrow = spec_window_for_yield(mc_result, 0.5)
        wide = spec_window_for_yield(mc_result, 0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_invalid_inputs(self, mc_result):
        from repro.fabrication import spec_window_for_yield, yield_fraction

        with pytest.raises(ValueError):
            yield_fraction(mc_result, 2.0, 1.0)
        with pytest.raises(ValueError):
            spec_window_for_yield(mc_result, 0.0)
