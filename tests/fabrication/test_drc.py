"""Design-rule checking of the three post-CMOS masks."""

import pytest

from repro.errors import DesignRuleViolation
from repro.fabrication import (
    KOHEtch,
    LAYER_METAL2,
    LAYER_NWELL,
    MASK_BACKSIDE_ETCH,
    MASK_DIELECTRIC_ETCH,
    MASK_SILICON_ETCH,
    Layout,
    Rect,
    cantilever_layout,
    post_cmos_rule_deck,
)
from repro.units import um


@pytest.fixture(scope="module")
def deck():
    return post_cmos_rule_deck()


@pytest.fixture()
def clean_layout():
    return cantilever_layout(um(500), um(100))


class TestCleanLayout:
    def test_reference_layout_passes(self, deck, clean_layout):
        assert deck.check(clean_layout) == []

    def test_verify_does_not_raise(self, deck, clean_layout):
        deck.verify(clean_layout)

    def test_rule_names(self, deck):
        names = deck.rule_names()
        assert "backside.window_size" in names
        assert any("min_width" in n for n in names)


class TestMinWidth:
    def test_narrow_trench_flagged(self, deck, clean_layout):
        clean_layout.add(MASK_SILICON_ETCH, Rect(0.0, 500e-6, 2e-6, 600e-6))
        violations = deck.check(clean_layout)
        assert any("min_width" in v.rule for v in violations)

    def test_verify_raises_with_violations(self, deck, clean_layout):
        clean_layout.add(MASK_SILICON_ETCH, Rect(0.0, 500e-6, 2e-6, 600e-6))
        with pytest.raises(DesignRuleViolation) as excinfo:
            deck.verify(clean_layout)
        assert len(excinfo.value.violations) >= 1


class TestMinSpacing:
    def test_thin_ridge_flagged(self, deck):
        layout = cantilever_layout(um(500), um(100))
        # a second trench 1 um away from the frame: ridge collapses
        layout.add(
            MASK_SILICON_ETCH,
            Rect(0.0, 71e-6, 100e-6, 91e-6),
        )
        violations = deck.check(layout)
        assert any("min_spacing" in v.rule for v in violations)

    def test_touching_shapes_legal(self, deck, clean_layout):
        # the clean layout's trench frame shares edges: no violation
        assert not any(
            "min_spacing" in v.rule for v in deck.check(clean_layout)
        )


class TestEnclosure:
    def test_trench_outside_dielectric_window_flagged(self, deck, clean_layout):
        clean_layout.add(
            MASK_SILICON_ETCH, Rect(900e-6, 0.0, 950e-6, 50e-6)
        )
        violations = deck.check(clean_layout)
        assert any("dielectric_etch.encloses" in v.rule for v in violations)

    def test_trench_outside_nwell_flagged(self, deck):
        layout = Layout()
        layout.add(MASK_SILICON_ETCH, Rect(0.0, 0.0, 50e-6, 20e-6))
        layout.add(MASK_DIELECTRIC_ETCH, Rect(-5e-6, -5e-6, 60e-6, 30e-6))
        # no nwell at all
        violations = deck.check(layout)
        assert any("nwell.encloses" in v.rule for v in violations)


class TestKeepout:
    def test_metal_in_etch_window_flagged(self, deck, clean_layout):
        box = clean_layout.bounding_box(MASK_DIELECTRIC_ETCH)
        clean_layout.add(
            LAYER_METAL2,
            Rect(box.x0 + 1e-6, box.y0 + 1e-6, box.x0 + 10e-6, box.y0 + 10e-6),
        )
        violations = deck.check(clean_layout)
        assert any("keepout" in v.rule for v in violations)

    def test_metal_outside_window_fine(self, deck, clean_layout):
        clean_layout.add(LAYER_METAL2, Rect(-200e-6, -200e-6, -100e-6, -100e-6))
        assert not any("keepout" in v.rule for v in deck.check(clean_layout))


class TestBacksideWindow:
    def test_undersized_opening_flagged(self, deck):
        layout = cantilever_layout(um(500), um(100))
        # replace with a too-small backside opening
        layout._layers[MASK_BACKSIDE_ETCH] = [
            Rect.from_size(250e-6, 0.0, 300e-6, 300e-6)
        ]
        violations = deck.check(layout)
        assert any(v.rule == "backside.window_size" for v in violations)

    def test_message_mentions_needed_size(self, deck):
        layout = cantilever_layout(um(500), um(100))
        layout._layers[MASK_BACKSIDE_ETCH] = [
            Rect.from_size(250e-6, 0.0, 300e-6, 300e-6)
        ]
        v = [x for x in deck.check(layout) if x.rule == "backside.window_size"][0]
        assert "um" in v.message


class TestViolationReporting:
    def test_violation_str(self, deck, clean_layout):
        clean_layout.add(MASK_SILICON_ETCH, Rect(0.0, 500e-6, 2e-6, 600e-6))
        violation = deck.check(clean_layout)[0]
        text = str(violation)
        assert violation.layer in text
