"""Array-level layout generation and DRC."""

import pytest

from repro.errors import GeometryError
from repro.fabrication import (
    MASK_BACKSIDE_ETCH,
    MASK_SILICON_ETCH,
    array_layout,
    die_area_for_array,
    post_cmos_rule_deck,
)
from repro.units import um


class TestGeneration:
    def test_four_beams_twelve_trench_rects(self):
        layout = array_layout(um(500), um(100), count=4)
        assert len(layout.shapes(MASK_SILICON_ETCH)) == 12

    def test_shared_membrane_single_opening(self):
        layout = array_layout(um(500), um(100), shared_membrane=True)
        assert len(layout.shapes(MASK_BACKSIDE_ETCH)) == 1

    def test_individual_membranes_per_beam(self):
        layout = array_layout(um(500), um(100), count=4, shared_membrane=False)
        assert len(layout.shapes(MASK_BACKSIDE_ETCH)) == 4

    def test_pitch_guard(self):
        with pytest.raises(GeometryError):
            array_layout(um(500), um(100), pitch=um(110))

    def test_count_guard(self):
        with pytest.raises(GeometryError):
            array_layout(um(500), um(100), count=0)


class TestDRC:
    def test_shared_membrane_clean(self):
        layout = array_layout(um(500), um(100), shared_membrane=True)
        assert post_cmos_rule_deck().check(layout) == []

    def test_individual_membranes_violate_spacing_at_mid_pitch(self):
        # at ~1.1 mm pitch the ~1 mm KOH pits leave a ridge thinner than
        # the 200 um backside spacing rule: the physical reason the real
        # chip shares one membrane instead
        layout = array_layout(
            um(500), um(100), pitch=1.1e-3, shared_membrane=False
        )
        violations = post_cmos_rule_deck().check(layout)
        assert any("min_spacing" in v.rule for v in violations)

    def test_individual_membranes_merge_at_tight_pitch(self):
        # below that, the drawn pits overlap outright — they merge into
        # a de-facto shared membrane and the deck accepts the geometry
        layout = array_layout(um(500), um(100), shared_membrane=False)
        assert post_cmos_rule_deck().check(layout) == []

    def test_individual_membranes_legal_at_huge_pitch(self):
        layout = array_layout(
            um(500), um(100), count=2, pitch=2.0e-3, shared_membrane=False
        )
        assert post_cmos_rule_deck().check(layout) == []


class TestDieArea:
    def test_shared_cheaper_than_individual(self):
        shared = array_layout(um(500), um(100), shared_membrane=True)
        individual = array_layout(
            um(500), um(100), count=4, pitch=2.0e-3, shared_membrane=False
        )
        assert die_area_for_array(shared) < die_area_for_array(individual)

    def test_area_scale(self):
        layout = array_layout(um(500), um(100))
        area = die_area_for_array(layout)
        # low single-digit mm^2
        assert 1e-6 < area < 10e-6

    def test_missing_backside_raises(self):
        from repro.fabrication import Layout

        with pytest.raises(GeometryError):
            die_area_for_array(Layout())
