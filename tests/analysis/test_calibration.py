"""Responsivity / LOD calibration chain."""

import pytest

from repro.analysis import (
    concentration_responsivity,
    coverage_lod_to_concentration,
    limit_of_detection,
    snr_db,
)
from repro.biochem import equilibrium_coverage, get_analyte


class TestLimitOfDetection:
    def test_three_sigma(self):
        lod = limit_of_detection(responsivity=2.0, noise_rms=0.1, units="V per X")
        assert lod.lod == pytest.approx(0.15)

    def test_sigma_parameter(self):
        lod = limit_of_detection(2.0, 0.1, "x", sigma=5.0)
        assert lod.lod == pytest.approx(0.25)

    def test_negative_responsivity_ok(self):
        lod = limit_of_detection(-2.0, 0.1, "Hz/kg")
        assert lod.lod == pytest.approx(0.15)

    def test_zero_responsivity_rejected(self):
        with pytest.raises(ValueError):
            limit_of_detection(0.0, 0.1, "x")

    def test_str_contains_units(self):
        text = str(limit_of_detection(2.0, 0.1, "mN/m"))
        assert "mN/m" in text


class TestConcentrationChain:
    def test_isotherm_slope_at_zero(self, igg_surface):
        igg = igg_surface.analyte
        # at C = 0 the slope is 1/K_D
        r = concentration_responsivity(igg_surface, 1.0, 0.0)
        assert r == pytest.approx(1.0 / igg.dissociation_constant)

    def test_slope_decreases_with_concentration(self, igg_surface):
        kd = igg_surface.analyte.dissociation_constant
        r0 = concentration_responsivity(igg_surface, 1.0, 0.0)
        r_kd = concentration_responsivity(igg_surface, 1.0, kd)
        assert r_kd == pytest.approx(r0 / 4.0)

    def test_coverage_lod_inversion(self):
        igg = get_analyte("igg")
        c = coverage_lod_to_concentration(0.5, igg)
        assert c == pytest.approx(igg.dissociation_constant)
        assert equilibrium_coverage(igg, c) == pytest.approx(0.5)

    def test_invalid_coverage_lod(self):
        igg = get_analyte("igg")
        with pytest.raises(ValueError):
            coverage_lod_to_concentration(1.0, igg)


class TestSNR:
    def test_20db_per_decade(self):
        assert snr_db(1.0, 0.1) == pytest.approx(20.0)
        assert snr_db(1.0, 0.01) == pytest.approx(40.0)

    def test_zero_noise_rejected(self):
        with pytest.raises(Exception):
            snr_db(1.0, 0.0)
