"""Frequency estimators."""

import math

import numpy as np
import pytest

from repro.analysis import (
    fft_peak_frequency,
    ring_down_quality_factor,
    zero_crossing_frequency,
)
from repro.circuits import Signal
from repro.errors import SignalError
from repro.mechanics import ModalResonator

FS = 500e3


class TestZeroCrossing:
    def test_clean_tone(self):
        s = Signal.sine(8877.3, 0.05, FS)
        assert zero_crossing_frequency(s) == pytest.approx(8877.3, rel=1e-5)

    def test_with_offset_fails_gracefully(self):
        s = Signal.constant(1.0, 0.01, FS)
        with pytest.raises(SignalError):
            zero_crossing_frequency(s)

    def test_robust_to_moderate_noise(self, rng):
        t = np.arange(int(0.05 * FS)) / FS
        x = np.sin(2 * np.pi * 5e3 * t) + 0.05 * rng.normal(size=len(t))
        s = Signal(x, FS)
        f = zero_crossing_frequency(s, hysteresis=0.5)
        assert f == pytest.approx(5e3, rel=1e-3)


class TestFFTPeak:
    def test_resolves_below_bin_spacing(self):
        # 0.02 s record: bin spacing 50 Hz; interpolation should do ~ Hz
        s = Signal.sine(8877.3, 0.02, FS)
        assert fft_peak_frequency(s) == pytest.approx(8877.3, abs=5.0)

    def test_ignores_dc(self):
        s = Signal.sine(1e3, 0.05, FS, offset=5.0)
        assert fft_peak_frequency(s) == pytest.approx(1e3, rel=1e-3)

    def test_rejects_tiny_records(self):
        with pytest.raises(SignalError):
            fft_peak_frequency(Signal(np.ones(4), FS))

    def test_windows(self):
        s = Signal.sine(2e3, 0.05, FS)
        assert fft_peak_frequency(s, window="none") == pytest.approx(2e3, rel=1e-2)
        with pytest.raises(SignalError):
            fft_peak_frequency(s, window="kaiser")


class TestRingDownQ:
    def test_recovers_modal_q(self):
        q_true = 80.0
        f0 = 10e3
        m = 1e-9
        k = m * (2 * math.pi * f0) ** 2
        res = ModalResonator(m, k, q_true, 1.0 / (f0 * 60))
        res.reset(displacement=1e-8)
        x = res.ring_down(cycles=120)
        s = Signal(x, 1.0 / res.timestep)
        q_est = ring_down_quality_factor(s, f0)
        assert q_est == pytest.approx(q_true, rel=0.1)

    def test_rejects_growing_signal(self):
        t = np.arange(int(0.01 * FS)) / FS
        x = np.exp(3.0 * t / t[-1]) * np.sin(2 * np.pi * 5e3 * t)
        with pytest.raises(SignalError):
            ring_down_quality_factor(Signal(x, FS), 5e3)

    def test_rejects_short_record(self):
        s = Signal.sine(100.0, 0.005, FS)
        with pytest.raises(SignalError):
            ring_down_quality_factor(s, 100.0)
