"""Autonomous-detection algorithms: baseline, CUSUM, dose-response."""

import numpy as np
import pytest

from repro.analysis import (
    cusum_detect,
    fit_baseline,
    fit_dose_response,
)
from repro.biochem import equilibrium_coverage, get_analyte
from repro.errors import SignalError
from repro.units import nM


def make_trace(rng, step=0.05, onset=300.0, drift=1e-5, noise=5e-3, n=600):
    t = np.arange(n, dtype=float) * 2.0
    v = drift * t + noise * rng.standard_normal(n)
    v[t >= onset] += step
    return t, v


class TestBaseline:
    def test_recovers_offset_and_slope(self, rng):
        t = np.arange(200, dtype=float)
        v = 0.5 + 1e-4 * t + 1e-4 * rng.standard_normal(200)
        baseline = fit_baseline(t, v, window=199.0)
        assert baseline.offset == pytest.approx(0.5, abs=1e-3)
        assert baseline.slope == pytest.approx(1e-4, rel=0.05)

    def test_noise_estimate(self, rng):
        t = np.arange(500, dtype=float)
        v = 2e-3 * rng.standard_normal(500)
        baseline = fit_baseline(t, v, window=499.0)
        assert baseline.noise_rms == pytest.approx(2e-3, rel=0.1)

    def test_window_too_small(self):
        with pytest.raises(SignalError):
            fit_baseline(np.arange(10.0), np.zeros(10), window=1.0)


class TestCusum:
    def test_detects_step(self, rng):
        t, v = make_trace(rng)
        baseline = fit_baseline(t, v, window=250.0)
        detection = cusum_detect(t, v, baseline)
        assert detection.detected
        # onset found shortly after (never before) the true event
        assert detection.onset_time == pytest.approx(300.0, abs=150.0)
        assert detection.onset_time >= 300.0 - 10.0

    def test_no_false_alarm_on_baseline(self, rng):
        t = np.arange(600, dtype=float) * 2.0
        v = 1e-5 * t + 5e-3 * rng.standard_normal(len(t))
        baseline = fit_baseline(t, v, window=400.0)
        # conservative operating point: the default k=0.5/h=5 CUSUM has
        # an in-control ARL (~900 samples) comparable to this trace
        detection = cusum_detect(t, v, baseline, sigmas=8.0, drift_sigmas=1.0)
        assert not detection.detected

    def test_detects_negative_steps(self, rng):
        t, v = make_trace(rng, step=-0.05)
        baseline = fit_baseline(t, v, window=250.0)
        detection = cusum_detect(t, v, baseline)
        assert detection.detected

    def test_threshold_scales_with_sigmas(self, rng):
        t, v = make_trace(rng)
        baseline = fit_baseline(t, v, window=250.0)
        loose = cusum_detect(t, v, baseline, sigmas=3.0)
        tight = cusum_detect(t, v, baseline, sigmas=8.0)
        assert tight.threshold > loose.threshold

    def test_small_step_below_threshold_ignored(self, rng):
        t, v = make_trace(rng, step=0.002, noise=5e-3)
        baseline = fit_baseline(t, v, window=250.0)
        detection = cusum_detect(t, v, baseline, sigmas=8.0, drift_sigmas=1.0)
        assert not detection.detected


class TestDoseResponse:
    def test_recovers_kd_from_clean_isotherm(self):
        igg = get_analyte("igg")
        kd = igg.dissociation_constant
        c = np.asarray([nM(0.1), nM(0.3), nM(1), nM(3), nM(10), nM(100)])
        r = np.asarray([equilibrium_coverage(igg, ci) for ci in c]) * 0.05
        fit = fit_dose_response(c, r)
        assert fit.k_d == pytest.approx(kd, rel=0.01)
        assert fit.max_response == pytest.approx(0.05, rel=0.01)

    def test_sign_agnostic(self):
        igg = get_analyte("igg")
        c = np.asarray([nM(0.3), nM(1), nM(3), nM(10), nM(100)])
        r = -np.asarray([equilibrium_coverage(igg, ci) for ci in c]) * 0.02
        fit = fit_dose_response(c, r)
        assert fit.k_d == pytest.approx(igg.dissociation_constant, rel=0.05)

    def test_concentration_inversion(self):
        igg = get_analyte("igg")
        c = np.asarray([nM(0.3), nM(1), nM(3), nM(10), nM(100)])
        r = np.asarray([equilibrium_coverage(igg, ci) for ci in c]) * 0.05
        fit = fit_dose_response(c, r)
        unknown_c = nM(2.5)
        response = fit.response_at(np.asarray([unknown_c]))[0]
        assert fit.concentration_from_response(response) == pytest.approx(
            unknown_c, rel=1e-6
        )

    def test_inversion_range_guard(self):
        igg = get_analyte("igg")
        c = np.asarray([nM(1), nM(10), nM(100)])
        r = np.asarray([equilibrium_coverage(igg, ci) for ci in c])
        fit = fit_dose_response(c, r)
        with pytest.raises(SignalError):
            fit.concentration_from_response(fit.max_response * 1.1)

    def test_too_few_points(self):
        with pytest.raises(SignalError):
            fit_dose_response(np.asarray([1.0, 2.0]), np.asarray([0.1, 0.2]))
