"""Welch PSD helpers."""

import numpy as np
import pytest

from repro.analysis import band_power, band_rms, psd_slope, welch_psd
from repro.circuits import Signal
from repro.errors import SignalError

FS = 100e3


class TestWelch:
    def test_tone_power_in_band(self):
        s = Signal.sine(5e3, 1.0, FS, amplitude=1.0)
        power = band_power(s, 4e3, 6e3)
        assert power == pytest.approx(0.5, rel=0.05)  # A^2/2

    def test_tone_absent_outside_band(self):
        s = Signal.sine(5e3, 1.0, FS, amplitude=1.0)
        assert band_power(s, 10e3, 20e3) < 1e-6

    def test_band_rms(self):
        s = Signal.sine(5e3, 1.0, FS, amplitude=1.0)
        assert band_rms(s, 4e3, 6e3) == pytest.approx(np.sqrt(0.5), rel=0.05)

    def test_white_noise_level(self, rng):
        density = 1e-10
        x = rng.normal(0.0, np.sqrt(density * FS / 2.0), 200000)
        s = Signal(x, FS)
        freqs, psd = welch_psd(s, segments=16)
        mid = psd[(freqs > 1e3) & (freqs < 40e3)]
        assert np.mean(mid) == pytest.approx(density, rel=0.1)

    def test_invalid_band(self):
        s = Signal.sine(1e3, 0.1, FS)
        with pytest.raises(SignalError):
            band_power(s, 5e3, 1e3)

    def test_empty_band_rejected(self):
        s = Signal.sine(1e3, 0.01, FS)
        with pytest.raises(SignalError):
            band_power(s, 49.99e3, 49.995e3)


class TestSlope:
    def test_white_slope_zero(self, rng):
        x = rng.normal(0.0, 1.0, 200000)
        assert abs(psd_slope(Signal(x, FS), 100.0, 40e3)) < 0.1

    def test_integrated_noise_slope_minus_two(self, rng):
        x = np.cumsum(rng.normal(0.0, 1.0, 400000))
        slope = psd_slope(Signal(x, FS), 100.0, 10e3)
        assert slope == pytest.approx(-2.0, abs=0.2)

    def test_too_few_bins_rejected(self, rng):
        x = rng.normal(0.0, 1.0, 64)
        with pytest.raises(SignalError):
            psd_slope(Signal(x, FS), 1.0, 2.0)
