"""Swept-sine resonance measurement and Lorentzian fitting."""

import math

import numpy as np
import pytest

from repro.analysis import fit_resonance, measure_resonance, swept_sine_response
from repro.analysis.resonance_fit import _magnitude_model
from repro.errors import ConvergenceError, SignalError
from repro.mechanics import ModalResonator


def make_resonator(f0=10e3, q=50.0, steps_per_cycle=50):
    m = 1e-10
    k = m * (2 * math.pi * f0) ** 2
    return ModalResonator(m, k, q, 1.0 / (f0 * steps_per_cycle))


class TestFitOnSyntheticData:
    def test_exact_recovery(self):
        f = np.linspace(8e3, 12e3, 101)
        a = _magnitude_model(f, 10e3, 40.0, 1e-9)
        fit = fit_resonance(f, a)
        assert fit.frequency == pytest.approx(10e3, rel=1e-6)
        assert fit.quality_factor == pytest.approx(40.0, rel=1e-6)
        assert fit.residual_rms < 1e-15

    def test_recovery_with_noise(self, rng):
        f = np.linspace(8e3, 12e3, 201)
        a = _magnitude_model(f, 10e3, 40.0, 1e-9)
        noisy = a * (1.0 + 0.02 * rng.standard_normal(len(a)))
        fit = fit_resonance(f, noisy)
        assert fit.frequency == pytest.approx(10e3, rel=1e-3)
        assert fit.quality_factor == pytest.approx(40.0, rel=0.1)

    def test_low_q_curve(self):
        f = np.linspace(2e3, 18e3, 101)
        a = _magnitude_model(f, 10e3, 3.0, 1e-9)
        fit = fit_resonance(f, a)
        assert fit.quality_factor == pytest.approx(3.0, rel=1e-3)

    def test_input_validation(self):
        with pytest.raises(SignalError):
            fit_resonance(np.asarray([1.0, 2.0]), np.asarray([1.0, 2.0]))
        with pytest.raises(SignalError):
            fit_resonance(
                np.linspace(1, 10, 10), -np.ones(10)
            )


class TestSweptSine:
    def test_peak_near_resonance(self):
        res = make_resonator(q=25.0)
        f = np.linspace(9e3, 11e3, 21)
        amps = swept_sine_response(res, f, force_amplitude=1e-9)
        f_peak = f[np.argmax(amps)]
        assert f_peak == pytest.approx(res.resonance_peak_frequency(), rel=0.01)

    def test_amplitude_at_resonance_is_q_times_static(self):
        res = make_resonator(q=25.0)
        force = 1e-9
        amps = swept_sine_response(
            res, np.asarray([res.natural_frequency]), force
        )
        static = force / res.effective_stiffness
        assert amps[0] == pytest.approx(25.0 * static, rel=0.05)


class TestEndToEnd:
    def test_measure_resonance_recovers_parameters(self):
        res = make_resonator(f0=10e3, q=30.0)
        fit = measure_resonance(res, span_factor=0.3, points=25)
        assert fit.frequency == pytest.approx(10e3, rel=0.005)
        assert fit.quality_factor == pytest.approx(30.0, rel=0.1)

    def test_liquid_damped_resonator(self):
        res = make_resonator(f0=9e3, q=6.0)
        fit = measure_resonance(res, span_factor=0.5, points=31)
        assert fit.frequency == pytest.approx(9e3, rel=0.01)
        assert fit.quality_factor == pytest.approx(6.0, rel=0.15)

    def test_too_few_points_rejected(self):
        res = make_resonator()
        with pytest.raises(SignalError):
            measure_resonance(res, points=5)
