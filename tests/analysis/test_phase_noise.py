"""Leeson phase-noise model of the oscillation loop."""

import math

import numpy as np
import pytest

from repro.analysis.phase_noise import (
    OscillatorNoiseBudget,
    allan_from_white_fm,
    leeson_phase_noise,
    leeson_phase_noise_dbc,
    loop_noise_budget,
    white_fm_coefficient,
)
from repro.errors import SignalError


F0 = 8900.0
Q = 6.0
V_SIG = 3e-3
S_V = 1e-14


class TestLeesonSpectrum:
    def test_far_out_flat(self):
        # far outside f0/2Q the spectrum flattens to S_v / 2 V^2
        df = np.asarray([1e5, 2e5])
        l = leeson_phase_noise(df, F0, Q, V_SIG, S_V)
        floor = S_V / (2.0 * V_SIG**2)
        assert l[0] == pytest.approx(floor, rel=0.01)
        assert l[1] == pytest.approx(floor, rel=0.01)

    def test_close_in_20db_per_decade(self):
        df = np.asarray([1.0, 10.0])
        l = leeson_phase_noise(df, F0, Q, V_SIG, S_V)
        assert l[0] / l[1] == pytest.approx(100.0, rel=0.01)

    def test_corner_at_half_bandwidth(self):
        half_bw = F0 / (2.0 * Q)
        l = leeson_phase_noise(np.asarray([half_bw]), F0, Q, V_SIG, S_V)
        floor = S_V / (2.0 * V_SIG**2)
        assert l[0] == pytest.approx(2.0 * floor, rel=1e-9)

    def test_dbc_conversion(self):
        df = np.asarray([1e3])
        linear = leeson_phase_noise(df, F0, Q, V_SIG, S_V)[0]
        dbc = leeson_phase_noise_dbc(df, F0, Q, V_SIG, S_V)[0]
        assert dbc == pytest.approx(10.0 * math.log10(linear))

    def test_zero_offset_rejected(self):
        with pytest.raises(SignalError):
            leeson_phase_noise(np.asarray([0.0]), F0, Q, V_SIG, S_V)


class TestWhiteFM:
    def test_h0_definition(self):
        h0 = white_fm_coefficient(Q, V_SIG, S_V)
        assert h0 == pytest.approx(S_V / (V_SIG**2 * 4.0 * Q**2))

    def test_allan_tau_scaling(self):
        h0 = 1e-12
        assert allan_from_white_fm(h0, 4.0) == pytest.approx(
            allan_from_white_fm(h0, 1.0) / 2.0
        )

    def test_higher_q_more_stable(self):
        low_q = white_fm_coefficient(3.0, V_SIG, S_V)
        high_q = white_fm_coefficient(30.0, V_SIG, S_V)
        assert high_q == pytest.approx(low_q / 100.0)

    def test_larger_signal_more_stable(self):
        small = white_fm_coefficient(Q, 1e-3, S_V)
        large = white_fm_coefficient(Q, 1e-2, S_V)
        assert large == pytest.approx(small / 100.0)


class TestLoopBudget:
    @pytest.fixture()
    def budget(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        return loop_noise_budget(loop, fs)

    def test_budget_fields(self, budget):
        assert budget.carrier_frequency == pytest.approx(8919.7, rel=0.01)
        assert budget.signal_rms > 0.0
        assert budget.noise_psd > 0.0

    def test_intrinsic_floor_below_counter(self, budget):
        # the electronics-limited floor sits orders below the 20 ms
        # counter quantization (~1.6e-3 fractional): EXT2b's conclusion
        # derived a second, independent way
        sigma = budget.allan_deviation(0.02)
        assert sigma < 1e-4

    def test_frequency_noise_consistent(self, budget):
        tau = 1.0
        assert budget.frequency_noise(tau) == pytest.approx(
            budget.allan_deviation(tau) * budget.carrier_frequency
        )

    def test_phase_noise_reasonable(self, budget):
        # a few kHz out, an electromechanical oscillator of this class
        # sits far below the carrier
        assert budget.phase_noise_dbc(1e3) < -40.0
