"""Sweep utilities used by the bench harness."""

import numpy as np
import pytest

from repro.analysis import SweepResult, geometric_space, sweep


class TestSweep:
    def test_collects_columns(self):
        result = sweep("x", [1.0, 2.0, 3.0], lambda x: {"square": x**2, "cube": x**3})
        assert result.parameters == [1.0, 2.0, 3.0]
        assert list(result.column("square")) == [1.0, 4.0, 9.0]
        assert list(result.column("cube")) == [1.0, 8.0, 27.0]

    def test_rows(self):
        result = sweep("x", [1, 2], lambda x: {"y": x * 10})
        assert result.rows() == [(1, 10), (2, 20)]

    def test_changed_keys_rejected(self):
        def unstable(x):
            return {"a": x} if x < 2 else {"b": x}

        with pytest.raises(KeyError):
            sweep("x", [1, 2], unstable)

    def test_format_table_contains_everything(self):
        result = sweep("freq", [10.0, 20.0], lambda f: {"gain": 1.0 / f})
        table = result.format_table()
        assert "freq" in table
        assert "gain" in table
        assert "0.05" in table

    def test_format_table_string_cells(self):
        result = sweep("x", [1], lambda x: {"verdict": "ok"})
        assert "ok" in result.format_table()


class TestGeometricSpace:
    def test_endpoints(self):
        grid = geometric_space(1.0, 100.0, 5)
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(100.0)

    def test_log_spacing(self):
        grid = geometric_space(1.0, 16.0, 5)
        assert np.allclose(grid[1:] / grid[:-1], 2.0)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            geometric_space(0.0, 10.0, 3)
