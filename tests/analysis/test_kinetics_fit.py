"""SPR-style kinetics extraction from binding transients."""

import numpy as np
import pytest

from repro.analysis.kinetics_fit import (
    extract_kinetics,
    fit_kobs_line,
    fit_transient,
)
from repro.biochem import coverage_transient, get_analyte
from repro.errors import ConvergenceError, SignalError
from repro.units import nM


@pytest.fixture(scope="module")
def igg():
    return get_analyte("igg")


class TestTransientFit:
    def test_recovers_kobs_exactly(self, igg):
        c = nM(10)
        k_true = igg.k_on * c + igg.k_off
        t = np.linspace(0.0, 5.0 / k_true, 200)
        theta = coverage_transient(igg, c, t)
        fit = fit_transient(t, theta)
        assert fit.k_obs == pytest.approx(k_true, rel=1e-6)
        assert fit.residual_rms < 1e-9

    def test_works_on_scaled_signals(self, igg):
        # volts instead of coverage: same k_obs
        c = nM(10)
        k_true = igg.k_on * c + igg.k_off
        t = np.linspace(0.0, 5.0 / k_true, 200)
        volts = -0.035 * coverage_transient(igg, c, t) + 1.2
        fit = fit_transient(t, volts)
        assert fit.k_obs == pytest.approx(k_true, rel=1e-6)
        assert fit.amplitude < 0.0

    def test_with_noise(self, igg, rng):
        c = nM(30)
        k_true = igg.k_on * c + igg.k_off
        t = np.linspace(0.0, 5.0 / k_true, 400)
        theta = coverage_transient(igg, c, t)
        noisy = theta + 0.01 * rng.standard_normal(len(t))
        fit = fit_transient(t, noisy)
        assert fit.k_obs == pytest.approx(k_true, rel=0.1)

    def test_input_validation(self):
        with pytest.raises(SignalError):
            fit_transient(np.asarray([1.0, 2.0]), np.asarray([0.0, 1.0]))
        with pytest.raises(SignalError):
            fit_transient(np.asarray([1.0, 1.0, 2.0, 3.0, 4.0]), np.zeros(5))


class TestKobsLine:
    def test_recovers_constants(self, igg):
        cs = np.asarray([nM(1), nM(3), nM(10), nM(30)])
        ks = igg.k_on * cs + igg.k_off
        fit = fit_kobs_line(cs, ks)
        assert fit.k_on == pytest.approx(igg.k_on, rel=1e-9)
        assert fit.k_off == pytest.approx(igg.k_off, rel=1e-6)
        assert fit.dissociation_constant == pytest.approx(
            igg.dissociation_constant, rel=1e-6
        )

    def test_flat_line_rejected(self):
        cs = np.asarray([nM(1), nM(3), nM(10)])
        with pytest.raises(ConvergenceError):
            fit_kobs_line(cs, np.asarray([1e-3, 1e-3, 1e-3]))

    def test_negative_intercept_clamped(self, igg):
        cs = np.asarray([nM(1), nM(3), nM(10)])
        ks = igg.k_on * cs - 1e-6  # unphysical but plausible noisy data
        fit = fit_kobs_line(cs, ks)
        assert fit.k_off == 0.0

    def test_too_few_points(self):
        with pytest.raises(SignalError):
            fit_kobs_line(np.asarray([1.0, 2.0]), np.asarray([1.0, 2.0]))


class TestEndToEnd:
    def test_full_pipeline_from_sensor_traces(self, igg_surface):
        """From static-sensor outputs to K_D, across a titration."""
        from repro.biochem import AssayProtocol
        from repro.core import StaticCantileverSensor

        igg = igg_surface.analyte
        sensor = StaticCantileverSensor(igg_surface)
        sensor.calibrate_offset()

        concentrations = [nM(3), nM(10), nM(30)]
        traces = []
        for c in concentrations:
            k_true = igg.k_on * c + igg.k_off
            exposure = 5.0 / k_true
            protocol = AssayProtocol.injection(
                c, baseline=60, exposure=exposure, wash=1.0
            )
            run = sensor.run_assay(
                protocol, sample_interval=exposure / 200, include_noise=False
            )
            mask = (run.times >= 60.0) & (run.times <= 60.0 + exposure)
            traces.append((run.times[mask] - 60.0, run.output_voltage[mask]))

        fit = extract_kinetics(concentrations, traces)
        assert fit.k_on == pytest.approx(igg.k_on, rel=0.05)
        assert fit.k_off == pytest.approx(igg.k_off, rel=0.25)

    def test_mismatched_inputs(self):
        with pytest.raises(SignalError):
            extract_kinetics([1.0], [])
