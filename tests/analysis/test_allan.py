"""Allan deviation: known scaling laws and conversion to mass noise."""

import numpy as np
import pytest

from repro.analysis import (
    allan_curve,
    allan_deviation,
    allan_variance,
    fractional_frequencies,
    frequency_noise_to_mass_noise,
)
from repro.errors import SignalError


class TestAllanBasics:
    def test_constant_data_zero_deviation(self):
        y = np.zeros(100)
        assert allan_deviation(y) == 0.0

    def test_alternating_data(self):
        y = np.asarray([1.0, -1.0] * 50)
        # successive differences are +/-2: sigma^2 = 0.5*4 = 2
        assert allan_variance(y, 1) == pytest.approx(2.0)

    def test_white_noise_scaling(self, rng):
        # white frequency noise: sigma_y(tau) ~ tau^-1/2
        y = rng.normal(0.0, 1e-6, 65536)
        s1 = allan_deviation(y, 1)
        s16 = allan_deviation(y, 16)
        assert s1 / s16 == pytest.approx(4.0, rel=0.15)

    def test_linear_drift_scaling(self):
        # pure drift: sigma_y(tau) ~ tau
        y = np.linspace(0.0, 1e-3, 4096)
        s1 = allan_deviation(y, 1)
        s8 = allan_deviation(y, 8)
        assert s8 / s1 == pytest.approx(8.0, rel=0.05)

    def test_too_few_samples_rejected(self):
        with pytest.raises(SignalError):
            allan_deviation(np.ones(3), 2)

    def test_invalid_factor(self):
        with pytest.raises(SignalError):
            allan_deviation(np.ones(10), 0)


class TestAllanCurve:
    def test_octave_spacing(self, rng):
        y = rng.normal(0.0, 1e-6, 1024)
        curve = allan_curve(y, tau0=0.1)
        ratios = curve.taus[1:] / curve.taus[:-1]
        assert np.allclose(ratios, 2.0)

    def test_white_noise_optimal_is_longest(self, rng):
        y = rng.normal(0.0, 1e-6, 4096)
        curve = allan_curve(y, tau0=1.0)
        # pure white FM keeps improving with averaging
        assert curve.optimal_tau() == curve.taus[-1]

    def test_drift_limited_optimum_interior(self, rng):
        n = 4096
        y = rng.normal(0.0, 1e-6, n) + np.linspace(0.0, 2e-5, n)
        curve = allan_curve(y, tau0=1.0)
        assert curve.optimal_tau() < curve.taus[-1]

    def test_minimum_deviation(self, rng):
        y = rng.normal(0.0, 1e-6, 1024)
        curve = allan_curve(y, tau0=1.0)
        assert curve.minimum_deviation() == pytest.approx(
            np.min(curve.deviations)
        )


class TestConversions:
    def test_fractional(self):
        y = fractional_frequencies(np.asarray([10010.0, 9990.0]), 10000.0)
        assert y == pytest.approx([1e-3, -1e-3])

    def test_mass_noise(self):
        # sigma_y = 1e-6 at f0 = 10 kHz with |df/dm| = 1 Hz/pg
        sigma_m = frequency_noise_to_mass_noise(1e-6, 10e3, -1.0 / 1e-15)
        assert sigma_m == pytest.approx(1e-2 * 1e-15)

    def test_zero_responsivity_rejected(self):
        with pytest.raises(SignalError):
            frequency_noise_to_mass_noise(1e-6, 1e4, 0.0)
