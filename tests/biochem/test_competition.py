"""Competitive binding and cross-reactivity."""

import numpy as np
import pytest

from repro.biochem import (
    competitive_equilibrium,
    competitive_transient,
    cross_reactivity,
    equilibrium_coverage,
    get_analyte,
    weakened_analyte,
)
from repro.errors import AssayError
from repro.units import nM


@pytest.fixture(scope="module")
def igg():
    return get_analyte("igg")


@pytest.fixture(scope="module")
def cross(igg):
    return weakened_analyte(igg, affinity_penalty=100.0)


class TestEquilibrium:
    def test_single_species_reduces_to_langmuir(self, igg):
        c = nM(10)
        theta = competitive_equilibrium([igg], [c])
        assert theta[0] == pytest.approx(equilibrium_coverage(igg, c))

    def test_competitor_suppresses_target(self, igg, cross):
        alone = competitive_equilibrium([igg], [nM(1)])[0]
        with_comp = competitive_equilibrium([igg, cross], [nM(1), nM(1000)])[0]
        assert with_comp < alone

    def test_total_coverage_below_one(self, igg, cross):
        thetas = competitive_equilibrium(
            [igg, cross], [nM(1e4), nM(1e4)]
        )
        assert float(np.sum(thetas)) < 1.0

    def test_equal_load_equal_coverage(self, igg, cross):
        # C_i/K_i equal -> identical coverages despite 100x affinity gap
        thetas = competitive_equilibrium([igg, cross], [nM(1), nM(100)])
        assert thetas[0] == pytest.approx(thetas[1], rel=1e-9)

    def test_irreversible_binder_rejected(self, igg):
        import dataclasses

        sticky = dataclasses.replace(igg, name="sticky", k_off=0.0)
        with pytest.raises(AssayError):
            competitive_equilibrium([sticky], [nM(1)])

    def test_mismatched_lists_rejected(self, igg):
        with pytest.raises(AssayError):
            competitive_equilibrium([igg], [nM(1), nM(2)])


class TestTransient:
    def test_converges_to_competitive_equilibrium(self, igg, cross):
        concentrations = [nM(5), nM(200)]
        t = np.linspace(1.0, 5e5, 60)
        traj = competitive_transient([igg, cross], concentrations, t)
        expected = competitive_equilibrium([igg, cross], concentrations)
        assert traj[0, -1] == pytest.approx(expected[0], rel=0.02)
        assert traj[1, -1] == pytest.approx(expected[1], rel=0.02)

    def test_coverages_bounded(self, igg, cross):
        t = np.linspace(1.0, 1e4, 50)
        traj = competitive_transient([igg, cross], [nM(1e3), nM(1e3)], t)
        assert np.all(traj >= 0.0)
        assert np.all(np.sum(traj, axis=0) <= 1.0 + 1e-9)

    def test_wash_separates_species(self, igg, cross):
        # load both, then wash: the weak binder leaves much faster
        t_load = np.linspace(1.0, 3600.0, 30)
        loaded = competitive_transient([igg, cross], [nM(2), nM(200)], t_load)
        theta0 = loaded[:, -1]
        t_wash = np.linspace(1.0, 1800.0, 30)
        washed = competitive_transient(
            [igg, cross], [0.0, 0.0], t_wash, initial_coverages=theta0
        )
        target_retained = washed[0, -1] / theta0[0]
        interferent_retained = washed[1, -1] / theta0[1]
        assert target_retained > 0.7
        assert interferent_retained < 0.3 * target_retained

    def test_initial_coverage_validation(self, igg, cross):
        with pytest.raises(AssayError):
            competitive_transient(
                [igg, cross], [nM(1), nM(1)], np.asarray([1.0]),
                initial_coverages=np.asarray([0.7, 0.6]),
            )


class TestCrossReactivityReport:
    def test_selectivity_equals_affinity_ratio(self, igg, cross):
        report = cross_reactivity(igg, nM(1), cross, nM(1))
        # with equal concentrations the coverage ratio is K_i/K_t = 100
        assert report.selectivity == pytest.approx(100.0, rel=1e-6)

    def test_excess_fraction_at_equal_load(self, igg, cross):
        report = cross_reactivity(igg, nM(1), cross, nM(100))
        assert report.apparent_excess_fraction == pytest.approx(0.5, rel=1e-6)

    def test_trace_target_overwhelmed(self, igg, cross):
        # 10000x excess of the weak binder dominates the signal
        report = cross_reactivity(igg, nM(0.1), cross, nM(1000))
        assert report.apparent_excess_fraction > 0.9


class TestWeakenedAnalyte:
    def test_kd_scaled(self, igg, cross):
        assert cross.dissociation_constant == pytest.approx(
            100.0 * igg.dissociation_constant
        )

    def test_penalty_validation(self, igg):
        with pytest.raises(AssayError):
            weakened_analyte(igg, 0.5)
