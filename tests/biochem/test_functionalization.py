"""Functionalized surface: coverage to mass and surface stress."""

import numpy as np
import pytest

from repro.biochem import FunctionalizedSurface, get_analyte
from repro.errors import UnitError


class TestSiteBookkeeping:
    def test_site_count(self, geometry):
        igg = get_analyte("igg")
        s = FunctionalizedSurface(igg, geometry, immobilization_efficiency=0.5)
        expected = igg.full_coverage_density * 0.5 * geometry.planform_area
        assert s.site_count == pytest.approx(expected)

    def test_saturation_mass(self, igg_surface):
        assert igg_surface.saturation_mass == pytest.approx(
            igg_surface.site_count * igg_surface.analyte.molecular_mass
        )

    def test_saturation_mass_realistic(self, igg_surface):
        # tens to hundreds of pg on a 500x100 um beam
        assert 10e-15 < igg_surface.saturation_mass < 1e-12

    def test_efficiency_bounds(self, geometry):
        with pytest.raises(UnitError):
            FunctionalizedSurface(get_analyte("igg"), geometry, immobilization_efficiency=1.2)


class TestCoverageMapping:
    def test_added_mass_linear(self, igg_surface):
        assert igg_surface.added_mass(0.5) == pytest.approx(
            igg_surface.saturation_mass * 0.5
        )

    def test_surface_stress_linear(self, igg_surface):
        full = igg_surface.saturation_surface_stress
        assert igg_surface.surface_stress(0.25) == pytest.approx(full * 0.25)

    def test_stress_includes_efficiency(self, geometry):
        igg = get_analyte("igg")
        half = FunctionalizedSurface(igg, geometry, immobilization_efficiency=0.35)
        assert half.saturation_surface_stress == pytest.approx(
            igg.surface_stress_full_coverage * 0.35
        )

    def test_array_input(self, igg_surface):
        theta = np.asarray([0.0, 0.5, 1.0])
        masses = igg_surface.added_mass(theta)
        assert masses.shape == (3,)
        assert masses[0] == 0.0
        assert masses[2] == pytest.approx(igg_surface.saturation_mass)

    def test_coverage_clipped(self, igg_surface):
        assert igg_surface.added_mass(1.5) == pytest.approx(
            igg_surface.saturation_mass
        )
        assert igg_surface.added_mass(-0.5) == 0.0

    def test_bound_molecules(self, igg_surface):
        assert igg_surface.bound_molecules(1.0) == pytest.approx(
            igg_surface.site_count
        )


class TestReferenceSurface:
    def test_zero_efficiency_is_reference(self, geometry):
        ref = FunctionalizedSurface(
            get_analyte("igg"), geometry, immobilization_efficiency=0.0
        )
        assert ref.is_reference
        assert ref.saturation_mass == 0.0
        assert ref.surface_stress(1.0) == 0.0

    def test_active_surface_is_not_reference(self, igg_surface):
        assert not igg_surface.is_reference
