"""Assay protocols and piecewise-exponential binding traces."""

import numpy as np
import pytest

from repro.biochem import (
    AssayProtocol,
    AssayStep,
    equilibrium_coverage,
    get_analyte,
    run_assay,
    run_binding,
)
from repro.errors import AssayError
from repro.units import nM


@pytest.fixture(scope="module")
def igg():
    return get_analyte("igg")


class TestProtocolConstruction:
    def test_injection_shape(self):
        p = AssayProtocol.injection(nM(10), baseline=100, exposure=500, wash=200)
        assert [s.label for s in p.steps] == ["baseline", "inject", "wash"]
        assert p.total_duration == pytest.approx(800.0)

    def test_titration_shape(self):
        p = AssayProtocol.titration([nM(1), nM(10)], baseline=60, exposure_each=120)
        assert len(p.steps) == 3
        assert p.steps[1].concentration == pytest.approx(nM(1))
        assert p.steps[2].concentration == pytest.approx(nM(10))

    def test_empty_protocol_rejected(self):
        with pytest.raises(AssayError):
            AssayProtocol(steps=())

    def test_empty_titration_rejected(self):
        with pytest.raises(AssayError):
            AssayProtocol.titration([])

    def test_step_boundaries(self):
        p = AssayProtocol.injection(nM(1), baseline=10, exposure=20, wash=5)
        assert p.step_boundaries() == pytest.approx([0.0, 10.0, 30.0, 35.0])

    def test_concentration_program(self):
        p = AssayProtocol.injection(nM(10), baseline=10, exposure=20, wash=5)
        t = np.asarray([5.0, 15.0, 32.0])
        c = p.concentration_at(t)
        assert c[0] == 0.0
        assert c[1] == pytest.approx(nM(10))
        assert c[2] == 0.0


class TestRunBinding:
    def test_coverage_continuous_at_boundaries(self, igg):
        p = AssayProtocol.injection(nM(50), baseline=60, exposure=600, wash=300)
        curve = run_binding(igg, p, sample_interval=1.0)
        # no jumps bigger than the local rate allows
        dtheta = np.abs(np.diff(curve.coverage))
        assert np.max(dtheta) < 0.02

    def test_baseline_flat(self, igg):
        p = AssayProtocol.injection(nM(50), baseline=120, exposure=60, wash=60)
        curve = run_binding(igg, p, sample_interval=1.0)
        mask = curve.times < 115.0
        assert np.all(curve.coverage[mask] == 0.0)

    def test_wash_decreases_coverage(self, igg):
        p = AssayProtocol.injection(nM(50), baseline=60, exposure=1800, wash=600)
        curve = run_binding(igg, p, sample_interval=2.0)
        peak = np.max(curve.coverage)
        assert curve.final_coverage < peak

    def test_long_exposure_reaches_equilibrium(self, igg):
        c = nM(100)
        p = AssayProtocol(steps=(AssayStep("long", 3e5, c),))
        curve = run_binding(igg, p, sample_interval=500.0)
        assert curve.final_coverage == pytest.approx(
            equilibrium_coverage(igg, c), rel=1e-3
        )

    def test_times_strictly_increasing(self, igg):
        p = AssayProtocol.titration([nM(1), nM(5), nM(25)])
        curve = run_binding(igg, p, sample_interval=3.0)
        assert np.all(np.diff(curve.times) > 0.0)

    def test_titration_steps_monotone(self, igg):
        p = AssayProtocol.titration([nM(1), nM(10), nM(100)], exposure_each=3000)
        curve = run_binding(igg, p, sample_interval=5.0)
        assert np.all(np.diff(curve.coverage) >= -1e-12)


class TestRunAssay:
    def test_active_surface_produces_signal(self, igg_surface):
        p = AssayProtocol.injection(nM(10), baseline=60, exposure=600, wash=60)
        trace = run_assay(igg_surface, p, sample_interval=2.0)
        assert trace.added_mass[-1] > 0.0
        assert trace.surface_stress[-1] < 0.0  # compressive

    def test_reference_surface_flat(self, geometry):
        from repro.biochem import FunctionalizedSurface

        ref = FunctionalizedSurface(
            get_analyte("igg"), geometry, immobilization_efficiency=0.0
        )
        p = AssayProtocol.injection(nM(100))
        trace = run_assay(ref, p, sample_interval=10.0)
        assert np.all(trace.added_mass == 0.0)
        assert np.all(trace.surface_stress == 0.0)

    def test_mass_stress_consistent_with_coverage(self, igg_surface):
        p = AssayProtocol.injection(nM(10), baseline=60, exposure=300, wash=60)
        trace = run_assay(igg_surface, p, sample_interval=5.0)
        i = len(trace.times) // 2
        assert trace.added_mass[i] == pytest.approx(
            igg_surface.saturation_mass * trace.coverage[i]
        )

    def test_invalid_step_duration(self):
        with pytest.raises(Exception):
            AssayStep("bad", -5.0, 0.0)
