"""Mass-transport-limited binding kinetics."""

import numpy as np
import pytest

from repro.biochem import (
    TransportModel,
    coverage_transient,
    effective_time_constant_ratio,
    equilibrium_coverage,
    get_analyte,
    initial_binding_rate,
    initial_rate_transport_limited,
    surface_concentration,
    transport_limited_transient,
)
from repro.errors import AssayError, UnitError
from repro.units import nM


@pytest.fixture(scope="module")
def igg():
    return get_analyte("igg")


@pytest.fixture()
def slow_cell():
    return TransportModel(boundary_layer=100e-6)


@pytest.fixture()
def fast_cell():
    return TransportModel(boundary_layer=0.1e-6)


class TestDamkoehler:
    def test_definition(self, igg):
        tr = TransportModel()
        expected = igg.k_on * tr.site_density / tr.mass_transfer_coefficient
        assert tr.damkoehler(igg) == pytest.approx(expected)

    def test_thicker_layer_more_limited(self, igg):
        thin = TransportModel(boundary_layer=5e-6)
        thick = TransportModel(boundary_layer=100e-6)
        assert thick.damkoehler(igg) > thin.damkoehler(igg)

    def test_slowdown_factor(self, igg, slow_cell):
        assert effective_time_constant_ratio(igg, slow_cell) == pytest.approx(
            1.0 + slow_cell.damkoehler(igg)
        )

    def test_invalid_parameters(self):
        with pytest.raises(UnitError):
            TransportModel(boundary_layer=-1.0)


class TestSurfaceConcentration:
    def test_depleted_below_bulk_at_zero_coverage(self, igg, slow_cell):
        c_bulk = nM(10)
        c_s = surface_concentration(igg, slow_cell, c_bulk, 0.0)
        assert 0.0 < c_s < c_bulk

    def test_fast_transport_no_depletion(self, igg, fast_cell):
        c_bulk = nM(10)
        c_s = surface_concentration(igg, fast_cell, c_bulk, 0.0)
        # Da ~ 0.004 leaves sub-percent depletion
        assert c_s == pytest.approx(c_bulk, rel=1e-2)

    def test_saturated_surface_stops_depleting(self, igg, slow_cell):
        c_bulk = nM(10)
        # at theta = theta_eq the net flux vanishes and C_s -> near bulk
        theta_eq = equilibrium_coverage(igg, c_bulk)
        c_s = surface_concentration(igg, slow_cell, c_bulk, theta_eq)
        assert c_s == pytest.approx(c_bulk, rel=0.05)

    def test_desorbing_surface_enriches(self, igg, slow_cell):
        # washing (C_bulk = 0) with a loaded surface: C_s > 0 from k_off flux
        c_s = surface_concentration(igg, slow_cell, 0.0, 0.9)
        assert c_s > 0.0


class TestTransient:
    def test_fast_transport_recovers_langmuir(self, igg, fast_cell):
        t = np.linspace(1.0, 3000.0, 40)
        limited = transport_limited_transient(igg, fast_cell, nM(10), t)
        free = coverage_transient(igg, nM(10), t)
        assert np.allclose(limited, free, rtol=0.02)

    def test_slow_transport_slows_binding(self, igg, slow_cell):
        t = np.linspace(1.0, 2000.0, 40)
        limited = transport_limited_transient(igg, slow_cell, nM(10), t)
        free = coverage_transient(igg, nM(10), t)
        assert np.all(limited <= free + 1e-9)
        assert limited[-1] < 0.95 * free[-1]

    def test_same_equilibrium_eventually(self, igg, slow_cell):
        # transport changes the rate, never the thermodynamics
        t = np.linspace(1.0, 3e5, 60)
        limited = transport_limited_transient(igg, slow_cell, nM(100), t)
        assert limited[-1] == pytest.approx(
            equilibrium_coverage(igg, nM(100)), rel=0.02
        )

    def test_bounded(self, igg, slow_cell):
        t = np.linspace(1.0, 1e4, 50)
        theta = transport_limited_transient(igg, slow_cell, nM(1000), t, 0.5)
        assert np.all(theta >= 0.0)
        assert np.all(theta <= 1.0)

    def test_invalid_times(self, igg, slow_cell):
        with pytest.raises(AssayError):
            transport_limited_transient(
                igg, slow_cell, nM(1), np.asarray([3.0, 1.0])
            )


class TestInitialRate:
    def test_interpolates_between_limits(self, igg):
        c = nM(10)
        reaction_rate = initial_binding_rate(igg, c)
        slow = TransportModel(boundary_layer=100e-6)
        limited = initial_rate_transport_limited(igg, slow, c)
        assert limited < reaction_rate
        # flux-limited asymptote: k_m C / Gamma_max
        flux_limit = slow.mass_transfer_coefficient * c / slow.site_density
        assert limited > 0.8 * flux_limit

    def test_fast_transport_reaction_limited(self, igg, fast_cell):
        c = nM(10)
        assert initial_rate_transport_limited(
            igg, fast_cell, c
        ) == pytest.approx(initial_binding_rate(igg, c), rel=1e-2)
