"""Langmuir binding kinetics: closed-form solution properties."""

import math

import numpy as np
import pytest

from repro.biochem import (
    binding_time_constant,
    coverage_transient,
    equilibrium_coverage,
    get_analyte,
    initial_binding_rate,
    time_to_coverage,
)
from repro.errors import AssayError
from repro.units import nM


@pytest.fixture(scope="module")
def igg():
    return get_analyte("igg")


class TestEquilibrium:
    def test_at_kd_half_coverage(self, igg):
        assert equilibrium_coverage(igg, igg.dissociation_constant) == pytest.approx(0.5)

    def test_zero_concentration(self, igg):
        assert equilibrium_coverage(igg, 0.0) == 0.0

    def test_saturation(self, igg):
        theta = equilibrium_coverage(igg, 1e4 * igg.dissociation_constant)
        assert theta == pytest.approx(1.0, abs=1e-3)

    def test_monotone_in_concentration(self, igg):
        cs = [nM(c) for c in (0.1, 1.0, 10.0, 100.0)]
        thetas = [equilibrium_coverage(igg, c) for c in cs]
        assert all(a < b for a, b in zip(thetas, thetas[1:]))


class TestTransient:
    def test_starts_at_initial(self, igg):
        theta = coverage_transient(igg, nM(10), np.asarray([0.0]), 0.3)
        assert theta[0] == pytest.approx(0.3)

    def test_converges_to_equilibrium(self, igg):
        tau = binding_time_constant(igg, nM(10))
        theta = coverage_transient(igg, nM(10), np.asarray([20.0 * tau]))
        assert theta[0] == pytest.approx(equilibrium_coverage(igg, nM(10)), rel=1e-6)

    def test_one_tau_63_percent(self, igg):
        tau = binding_time_constant(igg, nM(10))
        theta_eq = equilibrium_coverage(igg, nM(10))
        theta = coverage_transient(igg, nM(10), np.asarray([tau]))
        assert theta[0] == pytest.approx(theta_eq * (1.0 - math.exp(-1.0)), rel=1e-9)

    def test_wash_decays_with_koff(self, igg):
        # during a wash (C = 0), coverage decays at k_off
        t = np.asarray([1.0 / igg.k_off])
        theta = coverage_transient(igg, 0.0, t, initial_coverage=0.8)
        assert theta[0] == pytest.approx(0.8 * math.exp(-1.0), rel=1e-9)

    def test_bounded_in_unit_interval(self, igg):
        t = np.linspace(0.0, 1e5, 500)
        for c in (0.0, nM(0.1), nM(1e3)):
            theta = coverage_transient(igg, c, t, initial_coverage=0.5)
            assert np.all(theta >= 0.0)
            assert np.all(theta <= 1.0)

    def test_negative_time_rejected(self, igg):
        with pytest.raises(AssayError):
            coverage_transient(igg, nM(1), np.asarray([-1.0]))


class TestTimeToCoverage:
    def test_round_trip(self, igg):
        c = nM(10)
        target = 0.4
        t = time_to_coverage(igg, c, target)
        theta = coverage_transient(igg, c, np.asarray([t]))
        assert theta[0] == pytest.approx(target, rel=1e-9)

    def test_zero_time_for_current_coverage(self, igg):
        assert time_to_coverage(igg, nM(10), 0.25, initial_coverage=0.25) == 0.0

    def test_unreachable_target_raises(self, igg):
        c = nM(0.1)
        theta_eq = equilibrium_coverage(igg, c)
        with pytest.raises(AssayError):
            time_to_coverage(igg, c, theta_eq * 1.5)


class TestRates:
    def test_time_constant_shrinks_with_concentration(self, igg):
        assert binding_time_constant(igg, nM(100)) < binding_time_constant(igg, nM(1))

    def test_zero_everything_infinite_tau(self, igg):
        import dataclasses

        frozen = dataclasses.replace(igg, name="frozen_igg", k_off=0.0)
        assert math.isinf(binding_time_constant(frozen, 0.0))

    def test_initial_rate_linear_in_concentration(self, igg):
        assert initial_binding_rate(igg, nM(20)) == pytest.approx(
            2.0 * initial_binding_rate(igg, nM(10))
        )
