"""Analyte database sanity and derived molecular quantities."""

import pytest

from repro.constants import DALTON
from repro.errors import MaterialError
from repro.biochem import Analyte, dna_oligo, get_analyte, list_analytes, register_analyte


class TestDatabase:
    def test_igg_mass(self):
        igg = get_analyte("igg")
        assert igg.molecular_mass == pytest.approx(150e3 * DALTON, rel=1e-9)

    def test_kd_in_nanomolar_range(self):
        # antibody-antigen affinities: 0.1-100 nM
        for name in ("igg", "psa", "crp"):
            kd = get_analyte(name).dissociation_constant_molar
            assert 1e-10 < kd < 1e-7

    def test_streptavidin_biotin_femtomolar(self):
        kd = get_analyte("streptavidin").dissociation_constant_molar
        assert kd < 1e-12  # the strongest non-covalent pair known

    def test_monolayer_areal_mass_realistic(self):
        # protein monolayers: 1-5 mg/m^2
        for name in ("igg", "psa", "crp", "streptavidin"):
            m = get_analyte(name).full_coverage_mass_density
            assert 0.5e-6 < m < 6e-6

    def test_surface_stress_compressive(self):
        # binding-induced stress in the literature is mostly compressive
        for name in list_analytes():
            assert get_analyte(name).surface_stress_full_coverage < 0.0

    def test_unknown_raises(self):
        with pytest.raises(MaterialError):
            get_analyte("unicornase")

    def test_register_duplicate(self):
        a = get_analyte("igg")
        clone = Analyte(
            name="igg",
            molecular_mass=a.molecular_mass,
            k_on=a.k_on,
            k_off=a.k_off,
            surface_stress_full_coverage=a.surface_stress_full_coverage,
            full_coverage_density=a.full_coverage_density,
        )
        with pytest.raises(MaterialError):
            register_analyte(clone)


class TestDnaOligo:
    def test_mass_scales_with_length(self):
        d20 = dna_oligo(20)
        d40 = dna_oligo(40)
        assert d40.molecular_mass == pytest.approx(2.0 * d20.molecular_mass)

    def test_matches_builtin_20mer(self):
        assert dna_oligo(20).molecular_mass == pytest.approx(
            get_analyte("dna_20mer").molecular_mass
        )

    def test_custom_name(self):
        assert dna_oligo(25, name="probe_x").name == "probe_x"

    def test_too_short_rejected(self):
        with pytest.raises(MaterialError):
            dna_oligo(3)
