"""Anisotropic silicon: direction-dependent stiffness and piezoresistance."""

import pytest

from repro.errors import UnitError
from repro.materials.silicon import (
    PI44_P,
    gauge_factor,
    piezo_coefficients,
    youngs_modulus,
)


class TestYoungsModulus:
    def test_110_value(self):
        # textbook anchor: E<110> = 169 GPa
        assert youngs_modulus((1, 1, 0)) == pytest.approx(169e9, rel=0.01)

    def test_100_value(self):
        # E<100> = 1/S11 = 130 GPa
        assert youngs_modulus((1, 0, 0)) == pytest.approx(130e9, rel=0.01)

    def test_111_is_stiffest(self):
        e111 = youngs_modulus((1, 1, 1))
        assert e111 > youngs_modulus((1, 1, 0)) > youngs_modulus((1, 0, 0))
        assert e111 == pytest.approx(188e9, rel=0.02)

    def test_direction_normalization_irrelevant(self):
        assert youngs_modulus((2, 2, 0)) == pytest.approx(youngs_modulus((1, 1, 0)))

    def test_equivalent_directions(self):
        assert youngs_modulus((1, 0, 0)) == pytest.approx(youngs_modulus((0, 0, 1)))

    def test_zero_direction_rejected(self):
        with pytest.raises(UnitError):
            youngs_modulus((0, 0, 0))


class TestPiezoCoefficients:
    def test_p_type_110_dominated_by_pi44(self):
        c = piezo_coefficients("<110>", "p")
        assert c.longitudinal == pytest.approx(PI44_P / 2.0, rel=0.1)
        assert c.transverse == pytest.approx(-PI44_P / 2.0, rel=0.1)

    def test_p_type_signs(self):
        c = piezo_coefficients("<110>", "p")
        assert c.longitudinal > 0.0
        assert c.transverse < 0.0

    def test_n_type_100_longitudinal_negative(self):
        c = piezo_coefficients("<100>", "n")
        assert c.longitudinal < 0.0

    def test_p_type_100_small(self):
        # pi44 does not act along <100>: p-type <100> resistors are poor gauges
        c100 = piezo_coefficients("<100>", "p")
        c110 = piezo_coefficients("<110>", "p")
        assert abs(c100.longitudinal) < abs(c110.longitudinal) / 5.0

    def test_fractional_change_linear(self):
        c = piezo_coefficients("<110>", "p")
        one = c.fractional_resistance_change(1e6)
        two = c.fractional_resistance_change(2e6)
        assert two == pytest.approx(2.0 * one)

    def test_transverse_stress_contributes(self):
        c = piezo_coefficients("<110>", "p")
        assert c.fractional_resistance_change(0.0, 1e6) == pytest.approx(
            c.transverse * 1e6
        )

    def test_invalid_carrier(self):
        with pytest.raises(UnitError):
            piezo_coefficients("<110>", "x")

    def test_invalid_direction(self):
        with pytest.raises(UnitError):
            piezo_coefficients("<123>", "p")


class TestGaugeFactor:
    def test_p_110_is_large(self):
        gf = gauge_factor("<110>", "p")
        assert 80.0 < gf < 160.0  # silicon >> metal-foil ~2

    def test_n_100_is_negative_and_large(self):
        gf = gauge_factor("<100>", "n")
        assert gf < -80.0
