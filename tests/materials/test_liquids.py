"""Liquid property database and glycerol-mixture correlation."""

import pytest

from repro.errors import MaterialError, UnitError
from repro.materials import (
    AIR,
    Liquid,
    get_liquid,
    glycerol_water_mixture,
    list_liquids,
    register_liquid,
)


class TestDatabase:
    def test_water_properties(self):
        w = get_liquid("water")
        assert w.density == pytest.approx(997.0)
        assert w.viscosity == pytest.approx(0.89e-3)

    def test_air_much_lighter_than_water(self):
        assert AIR.density < get_liquid("water").density / 500.0

    def test_viscosity_ordering_of_glycerol_series(self):
        v20 = get_liquid("glycerol_20pct").viscosity
        v40 = get_liquid("glycerol_40pct").viscosity
        v60 = get_liquid("glycerol_60pct").viscosity
        assert v20 < v40 < v60

    def test_serum_more_viscous_than_buffer(self):
        assert get_liquid("serum").viscosity > get_liquid("pbs").viscosity

    def test_unknown_raises(self):
        with pytest.raises(MaterialError):
            get_liquid("mercury")

    def test_list_sorted(self):
        names = list_liquids()
        assert names == sorted(names)

    def test_kinematic_viscosity(self):
        w = get_liquid("water")
        assert w.kinematic_viscosity() == pytest.approx(w.viscosity / w.density)

    def test_register_duplicate_rejected(self):
        liq = Liquid(name="_test_oil", density=900.0, viscosity=0.05)
        register_liquid(liq)
        with pytest.raises(MaterialError):
            register_liquid(liq)

    def test_invalid_properties_rejected(self):
        with pytest.raises(UnitError):
            Liquid(name="bad", density=-1.0, viscosity=1e-3)
        with pytest.raises(UnitError):
            Liquid(name="bad", density=1000.0, viscosity=0.0)


class TestGlycerolMixture:
    def test_pure_water_limit(self):
        mix = glycerol_water_mixture(0.0)
        assert mix.density == pytest.approx(998.0, rel=0.01)
        assert mix.viscosity == pytest.approx(1.0e-3, rel=0.15)

    def test_pure_glycerol_limit(self):
        mix = glycerol_water_mixture(1.0)
        assert mix.density == pytest.approx(1263.0, rel=0.01)
        # ~1.4 Pa s at 20 C
        assert mix.viscosity == pytest.approx(1.4, rel=0.3)

    def test_60pct_matches_table_entry(self):
        mix = glycerol_water_mixture(0.60)
        table = get_liquid("glycerol_60pct")
        assert mix.density == pytest.approx(table.density, rel=0.02)
        assert mix.viscosity == pytest.approx(table.viscosity, rel=0.35)

    def test_viscosity_monotone_in_fraction(self):
        fractions = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
        values = [glycerol_water_mixture(c).viscosity for c in fractions]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_viscosity_decreases_with_temperature(self):
        cold = glycerol_water_mixture(0.5, temperature=283.15)
        warm = glycerol_water_mixture(0.5, temperature=313.15)
        assert warm.viscosity < cold.viscosity

    def test_fraction_out_of_range(self):
        with pytest.raises(UnitError):
            glycerol_water_mixture(1.2)

    def test_temperature_out_of_range(self):
        with pytest.raises(UnitError):
            glycerol_water_mixture(0.5, temperature=150.0)
