"""Solid material database."""

import pytest

from repro.errors import MaterialError, UnitError
from repro.materials import (
    Material,
    get_material,
    list_materials,
    register_material,
)


class TestLookup:
    def test_silicon_present(self):
        si = get_material("silicon")
        assert si.youngs_modulus == pytest.approx(169e9)
        assert si.density == pytest.approx(2329.0)

    def test_unknown_raises_with_known_names(self):
        with pytest.raises(MaterialError, match="silicon"):
            get_material("unobtainium")

    def test_list_is_sorted(self):
        names = list_materials()
        assert names == sorted(names)
        assert "aluminum" in names
        assert "silicon_nitride" in names

    def test_builtin_count(self):
        assert len(list_materials()) >= 8


class TestMaterialProperties:
    def test_biaxial_modulus(self):
        m = Material(name="m", youngs_modulus=100e9, density=1000.0, poisson_ratio=0.25)
        assert m.biaxial_modulus == pytest.approx(100e9 / 0.75)

    def test_plate_modulus(self):
        m = Material(name="m", youngs_modulus=100e9, density=1000.0, poisson_ratio=0.25)
        assert m.plate_modulus == pytest.approx(100e9 / (1 - 0.0625))

    def test_plate_below_biaxial(self):
        si = get_material("silicon_dioxide")
        assert si.plate_modulus < si.biaxial_modulus

    def test_invalid_modulus_rejected(self):
        with pytest.raises(UnitError):
            Material(name="bad", youngs_modulus=-1.0, density=1.0, poisson_ratio=0.2)

    def test_invalid_poisson_rejected(self):
        with pytest.raises(UnitError):
            Material(name="bad", youngs_modulus=1e9, density=1.0, poisson_ratio=0.6)

    def test_thermal_oxide_is_compressive(self):
        assert get_material("silicon_dioxide").intrinsic_stress < 0.0

    def test_nitride_is_tensile(self):
        assert get_material("silicon_nitride").intrinsic_stress > 0.0

    def test_metal_resistivities_ordered(self):
        # gold is a better conductor than titanium
        assert (
            get_material("gold").resistivity
            < get_material("titanium").resistivity
        )


class TestRegistration:
    def test_register_and_get(self):
        custom = Material(
            name="_test_su8", youngs_modulus=4e9, density=1200.0, poisson_ratio=0.22
        )
        register_material(custom)
        assert get_material("_test_su8") is custom

    def test_duplicate_rejected(self):
        custom = Material(
            name="_test_dup", youngs_modulus=1e9, density=1.0, poisson_ratio=0.2
        )
        register_material(custom)
        with pytest.raises(MaterialError, match="overwrite"):
            register_material(custom)

    def test_overwrite_allowed(self):
        a = Material(name="_test_ow", youngs_modulus=1e9, density=1.0, poisson_ratio=0.2)
        b = Material(name="_test_ow", youngs_modulus=2e9, density=2.0, poisson_ratio=0.2)
        register_material(a)
        register_material(b, overwrite=True)
        assert get_material("_test_ow").youngs_modulus == pytest.approx(2e9)
