"""Spec hierarchy: round-trips, eager validation, dotted-path overrides."""

import dataclasses

import pytest

from repro.config import (
    REFERENCE_SPECS,
    BridgeSpec,
    CantileverSpec,
    ChannelSpec,
    ChipSpec,
    ProcessSpec,
    ResonantSensorSpec,
    StaticReadoutSpec,
    StaticSensorSpec,
    parse_value,
)
from repro.errors import ConfigError, ReproError


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(REFERENCE_SPECS))
    def test_dict_round_trip_is_equal(self, name):
        spec = REFERENCE_SPECS[name]
        assert type(spec).from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("name", sorted(REFERENCE_SPECS))
    def test_json_round_trip_is_equal(self, name):
        spec = REFERENCE_SPECS[name]
        assert type(spec).from_json(spec.to_json()) == spec

    def test_dict_records_node_kinds(self):
        data = StaticSensorSpec().to_dict()
        assert data["$spec"] == "static_sensor"
        assert data["cantilever"]["$spec"] == "cantilever"
        assert data["bridge"]["$spec"] == "bridge"

    def test_channels_serialize_as_lists(self):
        data = ChipSpec().to_dict()
        assert isinstance(data["channels"], list)
        assert data["channels"][2]["analyte"] is None
        spec = ChipSpec.from_dict(data)
        assert isinstance(spec.channels, tuple)
        assert spec.channels[2].analyte is None

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(ConfigError, match="unknown field"):
            CantileverSpec.from_dict({"length_um": 300, "bogus": 1})

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ConfigError, match=r"\$spec"):
            CantileverSpec.from_dict({"$spec": "bridge"})

    def test_from_json_rejects_bad_json(self):
        with pytest.raises(ConfigError, match="invalid JSON"):
            CantileverSpec.from_json("{not json")

    def test_nested_error_carries_full_path(self):
        data = StaticSensorSpec().to_dict()
        data["cantilever"]["length_um"] = -1.0
        with pytest.raises(ConfigError, match="cantilever.length_um"):
            StaticSensorSpec.from_dict(data)

    def test_tuple_error_carries_index(self):
        data = ChipSpec().to_dict()
        data["channels"][1]["immobilization_efficiency"] = 2.0
        with pytest.raises(
            ConfigError, match="channels.1.immobilization_efficiency"
        ):
            ChipSpec.from_dict(data)


class TestValidation:
    def test_config_error_is_a_repro_error(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(ConfigError, ValueError)

    @pytest.mark.parametrize(
        "kwargs, path",
        [
            ({"length_um": 0.0}, "length_um"),
            ({"length_um": float("nan")}, "length_um"),
            ({"width_um": -5.0}, "width_um"),
        ],
    )
    def test_cantilever_rejects_bad_geometry(self, kwargs, path):
        with pytest.raises(ConfigError, match=path):
            CantileverSpec(**kwargs)

    def test_bridge_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            BridgeSpec(kind="strain-gauge")

    def test_bridge_allows_unseeded(self):
        assert BridgeSpec(seed=None).seed is None

    def test_process_rejects_non_bool_flag(self):
        with pytest.raises(ConfigError, match="keep_dielectrics"):
            ProcessSpec(keep_dielectrics=1)

    def test_readout_rejects_chopping_above_nyquist(self):
        with pytest.raises(ConfigError, match="chop_frequency_hz"):
            StaticReadoutSpec(chop_frequency_hz=150e3, sample_rate_hz=200e3)

    def test_sensor_rejects_empty_analyte(self):
        with pytest.raises(ConfigError, match="analyte"):
            StaticSensorSpec(analyte="")

    def test_chip_needs_exactly_four_channels(self):
        with pytest.raises(ConfigError, match="channels"):
            ChipSpec(channels=(ChannelSpec(), ChannelSpec()))

    def test_fraction_bounds(self):
        with pytest.raises(ConfigError, match="immobilization_efficiency"):
            ChannelSpec(immobilization_efficiency=1.5)


class TestOverrides:
    def test_single_level(self):
        spec = CantileverSpec().with_overrides({"length_um": 350})
        assert spec.length_um == 350.0
        assert isinstance(spec.length_um, float)  # int coerced for float field

    def test_nested_path(self):
        spec = StaticSensorSpec().with_overrides(
            {"cantilever.length_um": 350, "bridge.mismatch_sigma": 1e-3}
        )
        assert spec.cantilever.length_um == 350.0
        assert spec.bridge.mismatch_sigma == 1e-3

    def test_original_is_untouched(self):
        base = StaticSensorSpec()
        base.with_overrides({"cantilever.length_um": 350})
        assert base.cantilever.length_um == 500.0

    def test_tuple_index_path(self):
        spec = ChipSpec().with_overrides({"channels.2.label": "blank"})
        assert spec.channels[2].label == "blank"
        assert spec.channels[0].label == "anti-IgG"

    def test_string_values_are_parsed(self):
        spec = StaticSensorSpec().with_overrides(
            {"cantilever.length_um": "350", "process.keep_dielectrics": "true"}
        )
        assert spec.cantilever.length_um == 350.0
        assert spec.process.keep_dielectrics is True

    def test_unknown_field_lists_known(self):
        with pytest.raises(ConfigError, match="known:.*length_um"):
            CantileverSpec().with_overrides({"lenght_um": 350})

    def test_unknown_nested_field_names_level(self):
        with pytest.raises(ConfigError, match="bogus"):
            StaticSensorSpec().with_overrides({"cantilever.bogus": 1})

    def test_bad_value_carries_full_path(self):
        with pytest.raises(ConfigError, match="cantilever.length_um"):
            StaticSensorSpec().with_overrides({"cantilever.length_um": -1})

    def test_tuple_index_out_of_range(self):
        with pytest.raises(ConfigError, match="index out of range"):
            ChipSpec().with_overrides({"channels.7.label": "x"})

    def test_cannot_replace_whole_sub_spec(self):
        with pytest.raises(ConfigError, match="sub-spec"):
            StaticSensorSpec().with_overrides({"cantilever": CantileverSpec()})

    def test_bool_field_rejects_non_bool(self):
        with pytest.raises(ConfigError, match="keep_dielectrics"):
            StaticSensorSpec().with_overrides({"process.keep_dielectrics": 3})

    def test_override_none_for_optional_seed(self):
        spec = BridgeSpec().with_overrides({"seed": "none"})
        assert spec.seed is None

    def test_describe_paths_cover_nested_leaves(self):
        paths = ResonantSensorSpec().describe_paths()
        assert "cantilever.length_um" in paths
        assert "loop.mode" in paths
        assert "liquid" in paths
        chip_paths = ChipSpec().describe_paths()
        assert "channels.2.label" in chip_paths


class TestParseValue:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("true", True), ("FALSE", False), ("yes", True), ("off", False),
            ("none", None), ("null", None),
            ("42", 42), ("-3", -3), ("2.5e-3", 2.5e-3), ("350.0", 350.0),
            ("water", "water"), ("", ""),
        ],
    )
    def test_parsing(self, raw, expected):
        assert parse_value(raw) == expected
        if expected is not None:
            assert isinstance(parse_value(raw), type(expected))


class TestFrozen:
    def test_specs_are_frozen(self):
        spec = CantileverSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.length_um = 1.0
