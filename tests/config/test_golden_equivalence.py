"""Golden equivalence: spec-built devices == presets-built, bit for bit.

The refactor's acceptance bar: ``build(REFERENCE_*)`` must construct
devices *bit-identical* to the historical ``repro.core.presets``
factories — same fabricated geometry, same bridge mismatch draw, same
chain noise realization, same golden numbers.  Any drift here would
silently invalidate every pinned benchmark.
"""

import numpy as np
import pytest

from repro.biochem import FunctionalizedSurface, get_analyte
from repro.config import (
    REFERENCE_CHIP,
    REFERENCE_RESONANT_SENSOR,
    REFERENCE_STATIC_SENSOR,
    build,
)
from repro.core import StaticCantileverSensor
from repro.core.presets import (
    reference_cantilever,
    resonant_bridge,
    static_bridge,
)


@pytest.fixture(scope="module")
def spec_sensor():
    return build(REFERENCE_STATIC_SENSOR)


@pytest.fixture(scope="module")
def presets_sensor():
    surface = FunctionalizedSurface(
        get_analyte("igg"), reference_cantilever().geometry
    )
    return StaticCantileverSensor(surface)


class TestDeviceEquivalence:
    def test_geometry_is_identical(self, spec_sensor):
        g_spec = spec_sensor.geometry
        g_presets = reference_cantilever().geometry
        assert g_spec.length == g_presets.length
        assert g_spec.width == g_presets.width
        assert g_spec.thickness == g_presets.thickness

    def test_bridge_draw_is_identical(self, spec_sensor):
        assert (
            spec_sensor.bridge.offset_voltage()
            == static_bridge().offset_voltage()
        )

    def test_resonant_bridge_draw_is_identical(self):
        sensor = build(REFERENCE_RESONANT_SENSOR)
        assert (
            sensor.bridge.offset_voltage()
            == resonant_bridge().offset_voltage()
        )


class TestChainEquivalence:
    def test_characterization_is_bit_identical(
        self, spec_sensor, presets_sensor
    ):
        spec_gain, spec_noise = spec_sensor.characterize_chain()
        ref_gain, ref_noise = presets_sensor.characterize_chain()
        assert spec_gain == ref_gain
        assert spec_noise == ref_noise

    def test_golden_dc_gain_still_holds(self, spec_sensor):
        assert spec_sensor.dc_gain == pytest.approx(3858.0, rel=0.02)


class TestSystemEquivalence:
    def test_resonant_golden_frequency(self):
        sensor = build(REFERENCE_RESONANT_SENSOR)
        assert sensor.fluid_mode.frequency == pytest.approx(8919.7, rel=1e-3)

    def test_chip_matches_channelconfig_path(self):
        from repro.core import BiosensorChip, ChannelConfig

        spec_chip = build(REFERENCE_CHIP)
        manual = BiosensorChip(
            channels=[
                ChannelConfig(analyte=get_analyte("igg"), label="anti-IgG"),
                ChannelConfig(analyte=get_analyte("crp"), label="anti-CRP"),
                ChannelConfig(analyte=None, label="ref1"),
                ChannelConfig(analyte=None, label="ref2"),
            ],
        )
        assert spec_chip.reference_channels == manual.reference_channels
        offsets_spec = [s.bridge.offset_voltage() for s in spec_chip.sensors]
        offsets_manual = [s.bridge.offset_voltage() for s in manual.sensors]
        np.testing.assert_array_equal(offsets_spec, offsets_manual)

    def test_overridden_spec_builds_a_different_device(self):
        short = build(
            REFERENCE_STATIC_SENSOR.with_overrides(
                {"cantilever.length_um": 350}
            )
        )
        assert short.geometry.length == pytest.approx(350e-6)
