"""Fast tier-1 wrapper around the ``make spec-check`` self-check."""

from repro.config import REFERENCE_SPECS
from repro.config.check import SMOKE_OVERRIDES, check_spec, main


def test_every_reference_spec_passes():
    for name, spec in REFERENCE_SPECS.items():
        assert check_spec(name, spec) == []


def test_smoke_overrides_cover_all_composites():
    # every buildable composite exercises at least one dotted override
    for name in ("static_sensor", "resonant_sensor", "chip"):
        assert name in SMOKE_OVERRIDES
        assert SMOKE_OVERRIDES[name]


def test_main_exit_code_and_report(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "0 failure(s)" in out
    for name in REFERENCE_SPECS:
        assert name in out
