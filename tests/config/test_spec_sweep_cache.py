"""Spec-keyed sweeps: grids of whole device descriptions, warm-cacheable."""

import pytest

from repro.analysis import override_grid, run_spec_sweep, sweep
from repro.config import REFERENCE_STATIC_SENSOR, StaticSensorSpec
from repro.engine import ResultCache
from repro.errors import ConfigError

LENGTHS = [300.0, 400.0, 500.0]


def evaluate_point(spec):
    """Cheap deterministic per-spec result (module-level: picklable)."""
    beam = spec.cantilever
    return {
        "length_um": beam.length_um,
        "area_um2": beam.length_um * beam.width_um,
        "sigma": spec.bridge.mismatch_sigma,
    }


class TestOverrideGrid:
    def test_grid_points_are_full_specs(self):
        grid = override_grid(
            REFERENCE_STATIC_SENSOR, "cantilever.length_um", LENGTHS
        )
        assert [g.cantilever.length_um for g in grid] == LENGTHS
        # everything else is untouched reference state
        assert all(g.bridge == REFERENCE_STATIC_SENSOR.bridge for g in grid)

    def test_invalid_value_fails_eagerly_with_path(self):
        with pytest.raises(ConfigError, match="cantilever.length_um"):
            override_grid(
                REFERENCE_STATIC_SENSOR, "cantilever.length_um", [300.0, -1.0]
            )


class TestRunSpecSweep:
    def test_table_shows_raw_values(self):
        result = run_spec_sweep(
            REFERENCE_STATIC_SENSOR, "cantilever.length_um", LENGTHS,
            evaluate_point, workers=1,
        )
        assert result.parameters == LENGTHS
        assert result.parameter_name == "cantilever.length_um"
        assert list(result.column("length_um")) == LENGTHS

    def test_matches_serial_sweep(self):
        grid = override_grid(
            REFERENCE_STATIC_SENSOR, "cantilever.length_um", LENGTHS
        )
        serial = sweep("cantilever.length_um", grid, evaluate_point)
        fanned = run_spec_sweep(
            REFERENCE_STATIC_SENSOR, "cantilever.length_um", LENGTHS,
            evaluate_point, workers=1,
        )
        for name in serial.columns:
            assert fanned.columns[name] == serial.columns[name]


class TestWarmCache:
    def test_rerun_is_all_hits_zero_stores(self, tmp_path):
        cold = ResultCache(tmp_path)
        first = run_spec_sweep(
            REFERENCE_STATIC_SENSOR, "cantilever.length_um", LENGTHS,
            evaluate_point, workers=1, cache=cold,
        )
        info = cold.cache_info()
        assert info.misses == len(LENGTHS)
        assert info.stores == len(LENGTHS)

        warm = ResultCache(tmp_path)
        second = run_spec_sweep(
            REFERENCE_STATIC_SENSOR, "cantilever.length_um", LENGTHS,
            evaluate_point, workers=1, cache=warm,
        )
        info = warm.cache_info()
        assert info.hits == len(LENGTHS)
        assert info.misses == 0
        assert info.stores == 0
        for name in first.columns:
            assert second.columns[name] == first.columns[name]

    def test_equal_specs_hit_regardless_of_construction(self, tmp_path):
        """The key is the spec's *content*, not the object or its history."""
        cache = ResultCache(tmp_path)
        run_spec_sweep(
            REFERENCE_STATIC_SENSOR, "cantilever.length_um", LENGTHS,
            evaluate_point, workers=1, cache=cache,
        )
        # same grid, rebuilt from scratch through the JSON round-trip
        rebuilt_base = StaticSensorSpec.from_json(
            REFERENCE_STATIC_SENSOR.to_json()
        )
        warm = ResultCache(tmp_path)
        run_spec_sweep(
            rebuilt_base, "cantilever.length_um", LENGTHS,
            evaluate_point, workers=1, cache=warm,
        )
        assert warm.cache_info().hits == len(LENGTHS)
        assert warm.cache_info().stores == 0

    def test_different_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_spec_sweep(
            REFERENCE_STATIC_SENSOR, "cantilever.length_um", LENGTHS,
            evaluate_point, workers=1, cache=cache,
        )
        other = REFERENCE_STATIC_SENSOR.with_overrides(
            {"bridge.mismatch_sigma": 1e-3}
        )
        probe = ResultCache(tmp_path)
        run_spec_sweep(
            other, "cantilever.length_um", LENGTHS,
            evaluate_point, workers=1, cache=probe,
        )
        assert probe.cache_info().hits == 0
        assert probe.cache_info().misses == len(LENGTHS)
