"""spec_hash: the cache-key contract — stable across objects and processes."""

import subprocess
import sys

import pytest

from repro.config import (
    REFERENCE_SPECS,
    REFERENCE_STATIC_SENSOR,
    StaticSensorSpec,
    spec_hash,
)


class TestWithinProcess:
    def test_equal_specs_hash_equal(self):
        assert spec_hash(StaticSensorSpec()) == spec_hash(StaticSensorSpec())

    def test_round_trip_preserves_hash(self):
        spec = REFERENCE_STATIC_SENSOR
        back = StaticSensorSpec.from_json(spec.to_json())
        assert spec_hash(back) == spec_hash(spec)

    def test_any_field_change_changes_hash(self):
        base = spec_hash(REFERENCE_STATIC_SENSOR)
        for path, value in [
            ("cantilever.length_um", 350),
            ("bridge.mismatch_sigma", 1e-3),
            ("readout.rng_seed", 7),
            ("analyte", "crp"),
        ]:
            assert spec_hash(
                REFERENCE_STATIC_SENSOR.with_overrides({path: value})
            ) != base, f"override {path} did not change the hash"

    def test_reference_hashes_are_distinct(self):
        hashes = {spec_hash(s) for s in REFERENCE_SPECS.values()}
        assert len(hashes) == len(REFERENCE_SPECS)

    def test_int_and_float_hash_identically_after_round_trip(self):
        # 350 and 350.0 normalize to the same float field value
        a = StaticSensorSpec().with_overrides({"cantilever.length_um": 350})
        b = StaticSensorSpec().with_overrides({"cantilever.length_um": 350.0})
        assert spec_hash(a) == spec_hash(b)


class TestAcrossProcesses:
    def test_hash_is_stable_in_a_fresh_interpreter(self):
        """The on-disk cache key must survive interpreter restarts.

        Python salts ``hash()`` per process; ``spec_hash`` must not.  A
        subprocess recomputes every reference hash from scratch and must
        reproduce this process's values exactly.
        """
        expected = {
            name: spec_hash(spec) for name, spec in REFERENCE_SPECS.items()
        }
        script = (
            "from repro.config import REFERENCE_SPECS, spec_hash\n"
            "for name in sorted(REFERENCE_SPECS):\n"
            "    print(name, spec_hash(REFERENCE_SPECS[name]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        ).stdout
        seen = dict(line.split() for line in out.strip().splitlines())
        assert seen == expected
