"""End-to-end integration: fabrication -> sensing -> readout -> analysis.

These tests exercise the complete chains the paper describes, crossing
every package boundary in the library.
"""

import numpy as np
import pytest

from repro import (
    AssayProtocol,
    BiosensorChip,
    ChannelConfig,
    FunctionalizedSurface,
    PostCMOSFlow,
    ResonantCantileverSensor,
    StaticCantileverSensor,
    fabricate_cantilever,
    get_analyte,
    get_liquid,
)
from repro.analysis import allan_curve, fractional_frequencies
from repro.fabrication import cantilever_layout, post_cmos_rule_deck
from repro.units import nM, um


class TestFabricationToSensor:
    """DRC-clean layout -> process flow -> released beam -> live sensor."""

    def test_full_static_pipeline(self):
        # 1. layout passes DRC
        layout = cantilever_layout(um(500), um(100))
        post_cmos_rule_deck().verify(layout)

        # 2. process flow releases the beam
        device = fabricate_cantilever(um(500), um(100))
        assert device.process.released

        # 3. functionalize and assemble the static sensor
        surface = FunctionalizedSurface(get_analyte("crp"), device.geometry)
        sensor = StaticCantileverSensor(surface)
        sensor.calibrate_offset()

        # 4. run an immunoassay and detect the step
        protocol = AssayProtocol.injection(nM(20), baseline=60, exposure=900, wash=120)
        result = sensor.run_assay(protocol, sample_interval=5.0, include_noise=False)
        assert abs(result.output_step(10)) > 3.0 * sensor.output_noise_rms

    def test_full_resonant_pipeline(self):
        device = fabricate_cantilever(um(500), um(100))
        surface = FunctionalizedSurface(get_analyte("streptavidin"), device.geometry)
        sensor = ResonantCantileverSensor(surface, get_liquid("pbs"))

        # the closed loop oscillates at the fluid-loaded resonance
        mean_f, _ = sensor.measure_frequency(gate_time=0.05, gates=3)
        assert mean_f == pytest.approx(sensor.fluid_mode.frequency, rel=0.02)

        # a saturating assay shifts the frequency down
        protocol = AssayProtocol.injection(nM(100), baseline=60, exposure=1200, wash=60)
        result = sensor.run_tracking_assay(protocol, gate_time=10.0, include_noise=False)
        assert result.true_frequency[-1] < result.true_frequency[0]


class TestEtchStopControlsEverything:
    """The n-well depth propagates from process to sensor behaviour."""

    def test_thinner_beam_softer_and_more_sensitive(self):
        thin = fabricate_cantilever(um(500), um(100), PostCMOSFlow(nwell_depth=2.5e-6))
        thick = fabricate_cantilever(um(500), um(100), PostCMOSFlow(nwell_depth=5e-6))

        from repro.mechanics.surface_stress import tip_deflection

        # Stoney: deflection ~ 1/t^2 -> thin beam bends 4x more
        z_thin = tip_deflection(thin.geometry, 1e-3)
        z_thick = tip_deflection(thick.geometry, 1e-3)
        assert z_thin / z_thick == pytest.approx(4.0, rel=1e-3)


class TestTwoTransductionModesAgree:
    """Static and resonant sensors see the same binding event."""

    def test_same_assay_both_modalities(self, geometry, water):
        surface = FunctionalizedSurface(get_analyte("igg"), geometry)
        protocol = AssayProtocol.injection(nM(50), baseline=60, exposure=900, wash=60)

        static = StaticCantileverSensor(surface)
        static.calibrate_offset()
        static_result = static.run_assay(protocol, 10.0, include_noise=False)

        resonant = ResonantCantileverSensor(surface, water)
        resonant_result = resonant.run_tracking_assay(
            protocol, gate_time=10.0, include_noise=False
        )

        # both track the same coverage curve
        assert static_result.coverage[-1] == pytest.approx(
            resonant_result.coverage[-1], rel=1e-6
        )
        # both respond in their native units
        assert static_result.output_step(5) < 0.0
        assert (
            resonant_result.true_frequency[-1]
            < resonant_result.true_frequency[0]
        )


class TestArrayScreening:
    """Multiplexed array: two assays + referencing on one chip."""

    def test_specificity(self, fabricated):
        chip = BiosensorChip(
            cantilever=fabricated,
            channels=[
                ChannelConfig(analyte=get_analyte("igg"), label="anti-IgG"),
                ChannelConfig(analyte=get_analyte("psa"), label="anti-PSA"),
                ChannelConfig(analyte=None, label="ref1"),
                ChannelConfig(analyte=None, label="ref2"),
            ],
        )
        chip.calibrate()
        protocol = AssayProtocol.injection(nM(20), baseline=60, exposure=600, wash=60)
        result = chip.run_array_assay(protocol, sample_interval=10.0, include_noise=False)
        # both active channels respond; the references stay flat
        for active in (0, 1):
            trace = result.referenced(active)
            assert abs(trace[-1] - trace[0]) > 1e-3
        ref = result.channel_outputs[2]
        assert abs(ref[-1] - ref[0]) < 1e-6


class TestFrequencyStabilityChain:
    """Loop -> counter -> Allan -> mass resolution."""

    def test_allan_from_loop_readings(self, geometry, water):
        surface = FunctionalizedSurface(get_analyte("igg"), geometry)
        sensor = ResonantCantileverSensor(surface, water)
        _, readings = sensor.measure_frequency(gate_time=0.02, gates=16)
        y = fractional_frequencies(readings, np.mean(readings))
        curve = allan_curve(y, tau0=0.02)
        assert np.all(curve.deviations > 0.0)
        # counter quantization at 50 Hz resolution dominates: sigma_y of
        # order 50 Hz / 8.9 kHz
        assert curve.deviations[0] < 0.05
