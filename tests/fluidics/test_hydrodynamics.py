"""Sader hydrodynamic function: limits and published anchors."""

import numpy as np
import pytest

from repro.errors import UnitError
from repro.fluidics import (
    REYNOLDS_VALID_RANGE,
    added_mass_per_length,
    circular_hydrodynamic_function,
    hydrodynamic_function,
    mass_loading_ratio,
    rectangular_correction,
    reynolds_number,
)
from repro.materials import get_liquid
from repro.units import um


class TestReynolds:
    def test_definition(self, water):
        re = reynolds_number(10e3, um(100), water)
        expected = 997.0 * (100e-6) ** 2 * 2 * np.pi * 10e3 / (4 * 0.89e-3)
        assert re == pytest.approx(expected)

    def test_scales_with_width_squared(self, water):
        assert reynolds_number(1e3, um(200), water) == pytest.approx(
            4.0 * reynolds_number(1e3, um(100), water)
        )

    def test_invalid_inputs(self, water):
        with pytest.raises(UnitError):
            reynolds_number(-1.0, um(100), water)


class TestCircularFunction:
    def test_inviscid_limit(self):
        # Re -> inf: Gamma -> 1 (pure added mass of the displaced cylinder)
        g = circular_hydrodynamic_function(1e8)
        assert g.real == pytest.approx(1.0, abs=0.01)
        assert g.imag == pytest.approx(0.0, abs=0.01)

    def test_viscous_regime_large_imaginary(self):
        g = circular_hydrodynamic_function(0.01)
        assert g.imag > g.real > 1.0

    def test_imaginary_positive_everywhere(self):
        for re in (1e-3, 1e-1, 1.0, 1e2, 1e4):
            assert circular_hydrodynamic_function(re).imag > 0.0

    def test_real_monotone_decreasing(self):
        res = np.logspace(-2, 4, 30)
        reals = [circular_hydrodynamic_function(r).real for r in res]
        assert all(a >= b for a, b in zip(reals, reals[1:]))


class TestRectangularCorrection:
    def test_near_unity_at_moderate_re(self):
        omega = rectangular_correction(1.0)
        assert abs(omega) == pytest.approx(1.0, rel=0.3)

    def test_out_of_range_raises(self):
        lo, hi = REYNOLDS_VALID_RANGE
        with pytest.raises(UnitError):
            rectangular_correction(lo / 10.0)
        with pytest.raises(UnitError):
            rectangular_correction(hi * 10.0)

    def test_high_re_limit(self):
        # at high Re the rectangular beam's added mass approaches the
        # displaced-cylinder value: Omega_r -> ~1
        omega = rectangular_correction(1e4)
        assert omega.real == pytest.approx(1.0, rel=0.2)


class TestCompositeFunction:
    def test_water_values_physical(self, water, geometry):
        g = hydrodynamic_function(10e3, geometry.width, water)
        # literature: Gamma_r ~ 1-1.3, Gamma_i ~ 0.1-0.5 for Re ~ 10^2-10^3
        assert 0.5 < g.real < 3.0
        assert 0.0 < g.imag < 1.0

    def test_added_mass_positive_and_large(self, water, geometry):
        mu_added = added_mass_per_length(10e3, geometry.width, water)
        # in water the added mass rivals the beam's own mass per length
        assert mu_added > geometry.mass_per_length

    def test_mass_loading_ratio(self, water, geometry):
        t = mass_loading_ratio(
            10e3, geometry.width, water, geometry.mass_per_length
        )
        g = hydrodynamic_function(10e3, geometry.width, water)
        expected = np.pi * 997.0 * geometry.width**2 / (
            4.0 * geometry.mass_per_length
        )
        assert t.real == pytest.approx(expected * g.real)
        assert t.imag == pytest.approx(expected * g.imag)

    def test_air_loading_small(self, geometry):
        air = get_liquid("air")
        t = mass_loading_ratio(
            27e3, geometry.width, air, geometry.mass_per_length
        )
        assert abs(t) < 0.02  # air barely loads the beam
