"""Fluid-loaded resonance: frequency drop and Q collapse in liquid."""

import pytest

from repro.fluidics import (
    frequency_in_liquid,
    immersed_mode,
    quality_factor_in_liquid,
)
from repro.materials import get_liquid
from repro.mechanics import natural_frequency


class TestWaterImmersion:
    def test_frequency_drops_substantially(self, geometry, water):
        f_vac = natural_frequency(geometry)
        f_wet = frequency_in_liquid(geometry, water)
        # literature: CMOS cantilevers lose ~2-4x of their frequency in water
        assert 0.2 < f_wet / f_vac < 0.5

    def test_q_single_digit(self, geometry, water):
        q = quality_factor_in_liquid(geometry, water)
        assert 2.0 < q < 15.0

    def test_consistency_of_bundle(self, geometry, water):
        mode = immersed_mode(geometry, water)
        assert mode.frequency == pytest.approx(
            frequency_in_liquid(geometry, water)
        )
        assert mode.vacuum_frequency == pytest.approx(natural_frequency(geometry))
        assert mode.frequency < mode.vacuum_frequency

    def test_frequency_from_mass_ratio(self, geometry, water):
        # f = f_vac / sqrt(1 + T_r) must hold self-consistently
        mode = immersed_mode(geometry, water)
        assert mode.frequency == pytest.approx(
            mode.vacuum_frequency / (1.0 + mode.added_mass_ratio) ** 0.5, rel=1e-9
        )

    def test_effective_mass_grows(self, geometry, water):
        from repro.mechanics.modal import effective_mass_fraction

        mode = immersed_mode(geometry, water)
        beam_modal = effective_mass_fraction(1) * geometry.mass
        assert mode.effective_mass > 5.0 * beam_modal


class TestAcrossLiquids:
    def test_viscosity_ordering_of_q(self, geometry):
        qs = [
            quality_factor_in_liquid(geometry, get_liquid(name))
            for name in ("water", "serum", "glycerol_40pct", "glycerol_60pct")
        ]
        assert all(a > b for a, b in zip(qs, qs[1:]))

    def test_density_ordering_of_frequency(self, geometry):
        f_water = frequency_in_liquid(geometry, get_liquid("water"))
        f_glyc = frequency_in_liquid(geometry, get_liquid("glycerol_60pct"))
        assert f_glyc < f_water

    def test_air_nearly_vacuum(self, geometry):
        air = get_liquid("air")
        mode = immersed_mode(geometry, air)
        assert mode.frequency == pytest.approx(mode.vacuum_frequency, rel=0.01)
        assert mode.quality_factor > 100.0

    def test_higher_mode_higher_q(self, geometry, water):
        # higher frequency -> higher Reynolds -> relatively less dissipation
        q1 = immersed_mode(geometry, water, mode=1).quality_factor
        q2 = immersed_mode(geometry, water, mode=2).quality_factor
        assert q2 > q1
