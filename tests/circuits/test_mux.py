"""Analog multiplexer: selection, scanning, settling, crosstalk."""

import math

import numpy as np
import pytest

from repro.circuits import AnalogMultiplexer, Signal
from repro.errors import CircuitError

FS = 100e3


def four_dc_channels(levels=(0.1, 0.2, 0.3, 0.4), duration=0.04):
    return [Signal.constant(v, duration, FS) for v in levels]


class TestSelect:
    def test_selects_channel(self):
        mux = AnalogMultiplexer(crosstalk_db=math.inf)
        out = mux.select(four_dc_channels(), 2)
        assert out.samples[0] == pytest.approx(0.3)

    def test_crosstalk_adds_other_channels(self):
        mux = AnalogMultiplexer(crosstalk_db=40.0)
        out = mux.select(four_dc_channels(), 0)
        leak = 10 ** (-40.0 / 20.0)
        assert out.samples[0] == pytest.approx(0.1 + leak * (0.2 + 0.3 + 0.4))

    def test_invalid_channel(self):
        mux = AnalogMultiplexer()
        with pytest.raises(CircuitError):
            mux.select(four_dc_channels(), 4)

    def test_wrong_channel_count(self):
        mux = AnalogMultiplexer(channel_count=4)
        with pytest.raises(CircuitError):
            mux.select(four_dc_channels()[:3], 0)


class TestScan:
    def test_round_robin_schedule(self):
        mux = AnalogMultiplexer(settling_time_constant=0.0, crosstalk_db=math.inf)
        out, slots = mux.scan(four_dc_channels(), dwell_time=5e-3)
        assert [s.channel for s in slots[:5]] == [0, 1, 2, 3, 0]

    def test_levels_reached_after_settling(self):
        mux = AnalogMultiplexer(settling_time_constant=1e-4, crosstalk_db=math.inf)
        out, slots = mux.scan(four_dc_channels(), dwell_time=5e-3)
        means = mux.demultiplex_means(out, slots, settle_fraction=0.5)
        for ch, level in enumerate((0.1, 0.2, 0.3, 0.4)):
            assert np.mean(means[ch]) == pytest.approx(level, rel=1e-3)

    def test_settling_transient_visible(self):
        mux = AnalogMultiplexer(settling_time_constant=1e-3, crosstalk_db=math.inf)
        out, slots = mux.scan(four_dc_channels(), dwell_time=5e-3)
        # at the start of slot 1 the output is still near channel 0's level
        i = int(round(slots[1].start_time * FS))
        assert out.samples[i] == pytest.approx(0.1, abs=0.02)

    def test_ideal_mux_instant(self):
        mux = AnalogMultiplexer(settling_time_constant=0.0, crosstalk_db=math.inf)
        out, slots = mux.scan(four_dc_channels(), dwell_time=5e-3)
        i = int(round(slots[1].start_time * FS))
        assert out.samples[i] == pytest.approx(0.2)

    def test_invalid_settle_fraction(self):
        mux = AnalogMultiplexer()
        out, slots = mux.scan(four_dc_channels(), dwell_time=5e-3)
        with pytest.raises(CircuitError):
            mux.demultiplex_means(out, slots, settle_fraction=1.0)


class TestConstruction:
    def test_needs_two_channels(self):
        with pytest.raises(CircuitError):
            AnalogMultiplexer(channel_count=1)

    def test_crosstalk_must_be_attenuation(self):
        with pytest.raises(CircuitError):
            AnalogMultiplexer(crosstalk_db=-10.0)
