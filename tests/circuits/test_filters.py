"""Filter blocks: responses, stepping consistency, state handling."""

import numpy as np
import pytest

from repro.circuits import HighPassFilter, LowPassFilter, RCLowPass, Signal
from repro.errors import CircuitError


FS = 100e3


class TestLowPass:
    def test_dc_passes(self):
        lp = LowPassFilter(100.0)
        out = lp.process(Signal.constant(1.0, 0.5, FS))
        assert out.samples[-1] == pytest.approx(1.0, rel=1e-3)

    def test_minus_3db_at_cutoff(self):
        lp = LowPassFilter(1000.0, order=2)
        gain = lp.small_signal_gain(1000.0, FS, amplitude=1.0)
        assert gain == pytest.approx(1.0 / np.sqrt(2.0), rel=0.02)

    def test_rolloff_40db_per_decade(self):
        lp = LowPassFilter(100.0, order=2)
        g1k = abs(lp.response(np.asarray([1e3]), FS))[0]
        g10k = abs(lp.response(np.asarray([1e4]), FS))[0]
        assert g1k / g10k == pytest.approx(100.0, rel=0.15)

    def test_cutoff_above_nyquist_rejected(self):
        lp = LowPassFilter(60e3)
        with pytest.raises(CircuitError):
            lp.process(Signal.constant(0.0, 0.01, FS))

    def test_step_matches_process(self):
        lp1 = LowPassFilter(500.0)
        lp2 = LowPassFilter(500.0)
        sig = Signal.sine(200.0, 0.05, FS)
        batch = lp1.process(sig)
        lp2.prepare(FS)
        stepped = np.asarray([lp2.step(float(x)) for x in sig.samples])
        assert np.allclose(batch.samples, stepped, atol=1e-12)

    def test_step_without_prepare_raises(self):
        with pytest.raises(CircuitError):
            LowPassFilter(100.0).step(1.0)

    def test_reset_clears_state(self):
        lp = LowPassFilter(100.0)
        lp.process(Signal.constant(1.0, 0.1, FS))
        lp.reset()
        out = lp.process(Signal.constant(0.0, 0.01, FS))
        assert abs(out.samples[-1]) < 1e-9

    def test_state_continuity_across_calls(self):
        lp1 = LowPassFilter(100.0)
        whole = lp1.process(Signal.constant(1.0, 0.1, FS))
        lp2 = LowPassFilter(100.0)
        first = lp2.process(Signal.constant(1.0, 0.05, FS))
        second = lp2.process(Signal.constant(1.0, 0.05, FS))
        rejoined = np.concatenate([first.samples, second.samples])
        assert np.allclose(whole.samples, rejoined, atol=1e-12)

    def test_invalid_order(self):
        with pytest.raises(CircuitError):
            LowPassFilter(100.0, order=0)


class TestHighPass:
    def test_dc_blocked(self):
        hp = HighPassFilter(100.0)
        out = hp.process(Signal.constant(1.0, 0.5, FS))
        assert abs(out.samples[-1]) < 1e-3

    def test_high_frequency_passes(self):
        hp = HighPassFilter(100.0, order=2)
        gain = hp.small_signal_gain(10e3, FS)
        assert gain == pytest.approx(1.0, rel=0.01)

    def test_minus_3db_at_cutoff(self):
        hp = HighPassFilter(1000.0, order=2)
        gain = hp.small_signal_gain(1000.0, FS)
        assert gain == pytest.approx(1.0 / np.sqrt(2.0), rel=0.02)

    def test_removes_drift_keeps_tone(self):
        hp = HighPassFilter(50.0, order=2)
        drift = Signal.from_function(lambda t: 0.5 * t, 1.0, FS)
        tone = Signal.sine(5e3, 1.0, FS, amplitude=0.1)
        out = hp.process(drift + tone).settle(0.5)
        assert out.std() == pytest.approx(0.1 / np.sqrt(2.0), rel=0.05)
        assert abs(out.mean()) < 5e-3


class TestRCLowPass:
    def test_dc_gain_unity(self):
        rc = RCLowPass(1e3)
        out = rc.process(Signal.constant(2.0, 0.05, FS))
        assert out.samples[-1] == pytest.approx(2.0, rel=1e-4)

    def test_approximately_minus_3db(self):
        rc = RCLowPass(1e3)
        gain = rc.small_signal_gain(1e3, FS)
        assert gain == pytest.approx(1.0 / np.sqrt(2.0), rel=0.05)

    def test_step_matches_process(self):
        rc1, rc2 = RCLowPass(1e3), RCLowPass(1e3)
        sig = Signal.sine(300.0, 0.02, FS)
        batch = rc1.process(sig)
        rc2.prepare(FS)
        stepped = np.asarray([rc2.step(float(x)) for x in sig.samples])
        assert np.allclose(batch.samples, stepped)

    def test_step_without_prepare_raises(self):
        with pytest.raises(CircuitError):
            RCLowPass(100.0).step(1.0)


FILTER_FACTORIES = {
    "lowpass-2": lambda: LowPassFilter(1e3, order=2),
    "lowpass-5": lambda: LowPassFilter(2e3, order=5),
    "highpass-2": lambda: HighPassFilter(500.0, order=2),
    "highpass-3": lambda: HighPassFilter(50.0, order=3),
    "rc": lambda: RCLowPass(1e3),
}


class TestStepProcessEquivalence:
    """N x step() is bit-identical to one process() for every filter.

    The flattened per-sample path and the scipy batch path implement the
    same transposed-direct-form-II recurrence in the same operation
    order, so they must agree exactly — including the carried state, so
    interleaving the two APIs is safe mid-stream.
    """

    @pytest.mark.parametrize("name", sorted(FILTER_FACTORIES))
    def test_step_equals_process(self, name, rng):
        x = rng.normal(size=4000) * 2.0
        batch_f, step_f = FILTER_FACTORIES[name](), FILTER_FACTORIES[name]()
        batch = batch_f.process(Signal(x, FS)).samples
        step_f.prepare(FS)
        stepped = np.asarray([step_f.step(float(v)) for v in x])
        assert np.array_equal(batch, stepped)

    @pytest.mark.parametrize("name", sorted(FILTER_FACTORIES))
    def test_interleaved_state_carries(self, name, rng):
        x = rng.normal(size=600)
        ref, mixed = FILTER_FACTORIES[name](), FILTER_FACTORIES[name]()
        expect = ref.process(Signal(x, FS)).samples
        mixed.prepare(FS)
        head = np.asarray([mixed.step(float(v)) for v in x[:200]])
        mid = mixed.process(Signal(x[200:400], FS)).samples
        tail = np.asarray([mixed.step(float(v)) for v in x[400:]])
        assert np.array_equal(expect, np.concatenate([head, mid, tail]))

    @pytest.mark.parametrize("name", sorted(FILTER_FACTORIES))
    def test_property_random_waveforms(self, name):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=30, deadline=None)
        @given(
            samples=st.lists(
                st.floats(min_value=-1e3, max_value=1e3,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200,
            )
        )
        def check(samples):
            x = np.asarray(samples, dtype=float)
            batch_f = FILTER_FACTORIES[name]()
            step_f = FILTER_FACTORIES[name]()
            batch = batch_f.process(Signal(x, FS)).samples
            step_f.prepare(FS)
            stepped = np.asarray([step_f.step(float(v)) for v in x])
            assert np.array_equal(batch, stepped)

        check()
