"""Signal container: construction, statistics, arithmetic, slicing."""

import numpy as np
import pytest

from repro.circuits import Signal
from repro.errors import SignalError


class TestConstruction:
    def test_sine(self):
        s = Signal.sine(100.0, 1.0, 10e3, amplitude=2.0)
        assert len(s) == 10000
        assert s.peak() == pytest.approx(2.0, rel=1e-3)

    def test_sine_above_nyquist_rejected(self):
        with pytest.raises(SignalError):
            Signal.sine(6e3, 0.1, 10e3)

    def test_constant(self):
        s = Signal.constant(1.5, 0.01, 1e3)
        assert np.all(s.samples == 1.5)

    def test_from_function(self):
        s = Signal.from_function(lambda t: t * 2.0, 0.01, 1e3)
        assert s.samples[5] == pytest.approx(2.0 * 5.0 / 1e3)

    def test_empty_rejected(self):
        with pytest.raises(SignalError):
            Signal(np.asarray([]), 1e3)

    def test_nan_rejected(self):
        with pytest.raises(SignalError):
            Signal(np.asarray([1.0, float("nan")]), 1e3)

    def test_2d_rejected(self):
        with pytest.raises(SignalError):
            Signal(np.zeros((2, 2)), 1e3)


class TestStatistics:
    def test_sine_rms(self):
        s = Signal.sine(100.0, 1.0, 100e3, amplitude=1.0)
        assert s.rms() == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-3)

    def test_mean_of_offset_sine(self):
        s = Signal.sine(100.0, 1.0, 100e3, amplitude=1.0, offset=0.5)
        assert s.mean() == pytest.approx(0.5, abs=1e-3)

    def test_std_ignores_offset(self):
        a = Signal.sine(100.0, 1.0, 100e3)
        b = Signal.sine(100.0, 1.0, 100e3, offset=2.0)
        assert a.std() == pytest.approx(b.std(), rel=1e-9)

    def test_duration_and_times(self):
        s = Signal.constant(0.0, 0.5, 1e3)
        assert s.duration == pytest.approx(0.5)
        assert s.times[1] - s.times[0] == pytest.approx(1e-3)

    def test_amplitude_envelope_constant_tone(self):
        s = Signal.sine(1e3, 0.1, 100e3, amplitude=0.7)
        env = s.amplitude_envelope(window_cycles=2.0, frequency=1e3)
        assert np.all(np.abs(env - 0.7) < 0.01)


class TestArithmetic:
    def test_add_signals(self):
        a = Signal.constant(1.0, 0.01, 1e3)
        b = Signal.constant(2.0, 0.01, 1e3)
        assert np.all((a + b).samples == 3.0)

    def test_add_scalar(self):
        a = Signal.constant(1.0, 0.01, 1e3)
        assert np.all((a + 0.5).samples == 1.5)

    def test_subtract(self):
        a = Signal.constant(3.0, 0.01, 1e3)
        b = Signal.constant(1.0, 0.01, 1e3)
        assert np.all((a - b).samples == 2.0)

    def test_scale(self):
        a = Signal.constant(2.0, 0.01, 1e3)
        assert np.all((3.0 * a).samples == 6.0)

    def test_rate_mismatch_rejected(self):
        a = Signal.constant(1.0, 0.01, 1e3)
        b = Signal.constant(1.0, 0.005, 2e3)
        with pytest.raises(SignalError):
            a + b

    def test_length_mismatch_rejected(self):
        a = Signal(np.zeros(10), 1e3)
        b = Signal(np.zeros(11), 1e3)
        with pytest.raises(SignalError):
            a + b


class TestSegments:
    def test_slice_time(self):
        s = Signal.from_function(lambda t: t, 1.0, 1e3)
        part = s.slice_time(0.25, 0.5)
        assert len(part) == 250
        assert part.samples[0] == pytest.approx(0.25, abs=2e-3)

    def test_slice_invalid(self):
        s = Signal.constant(0.0, 1.0, 1e3)
        with pytest.raises(SignalError):
            s.slice_time(0.5, 0.2)

    def test_settle_drops_head(self):
        s = Signal.from_function(lambda t: t, 1.0, 1e3)
        tail = s.settle(0.75)
        assert len(tail) == 250
        assert tail.samples[0] >= 0.74

    def test_settle_invalid_fraction(self):
        s = Signal.constant(0.0, 1.0, 1e3)
        with pytest.raises(SignalError):
            s.settle(1.0)
