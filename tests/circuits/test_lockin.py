"""Lock-in amplifier and AC bridge readout."""

import numpy as np
import pytest

from repro.circuits import (
    ACBridgeReadout,
    Amplifier,
    LockInAmplifier,
    Signal,
    ac_bridge_output,
)
from repro.errors import CircuitError

FS = 200e3
FCARRIER = 20e3


class TestLockIn:
    def test_recovers_dc_amplitude(self):
        t_sig = Signal.from_function(
            lambda t: 0.5 * np.cos(2 * np.pi * FCARRIER * t), 0.3, FS
        )
        li = LockInAmplifier(FCARRIER, output_cutoff=100.0)
        out = li.process(t_sig).settle(0.5)
        assert out.mean() == pytest.approx(0.5, rel=0.01)

    def test_rejects_quadrature(self):
        t_sig = Signal.from_function(
            lambda t: 0.5 * np.sin(2 * np.pi * FCARRIER * t), 0.3, FS
        )
        li = LockInAmplifier(FCARRIER, output_cutoff=100.0)
        out = li.process(t_sig).settle(0.5)
        assert abs(out.mean()) < 5e-3

    def test_rejects_off_frequency(self):
        interferer = Signal.sine(5e3, 0.3, FS, amplitude=1.0)
        li = LockInAmplifier(FCARRIER, output_cutoff=100.0)
        out = li.process(interferer).settle(0.5)
        assert out.rms() < 1e-3

    def test_recovers_slow_modulation(self):
        def wave(t):
            envelope = 1e-3 * (1.0 + 0.5 * np.sin(2 * np.pi * 10.0 * t))
            return envelope * np.cos(2 * np.pi * FCARRIER * t)

        s = Signal.from_function(wave, 0.5, FS)
        li = LockInAmplifier(FCARRIER, output_cutoff=100.0)
        out = li.process(s).settle(0.4)
        assert out.mean() == pytest.approx(1e-3, rel=0.05)
        assert out.std() == pytest.approx(0.5e-3 / np.sqrt(2.0), rel=0.1)

    def test_cutoff_must_be_below_carrier(self):
        with pytest.raises(CircuitError):
            LockInAmplifier(1e3, output_cutoff=600.0)


class TestACBridge:
    def test_modulation(self):
        unb = Signal.constant(1e-4, 0.1, FS)
        out = ac_bridge_output(unb, 3.3, FCARRIER)
        # amplitude of the modulated carrier = V_ac * unbalance
        assert out.peak() == pytest.approx(3.3e-4, rel=1e-3)

    def test_carrier_above_nyquist_rejected(self):
        unb = Signal.constant(1e-4, 0.01, FS)
        with pytest.raises(CircuitError):
            ac_bridge_output(unb, 3.3, 150e3)

    def test_full_readout_recovers_unbalance(self):
        unb = Signal.constant(2e-4, 0.3, FS)
        readout = ACBridgeReadout(3.3, FCARRIER, output_cutoff=100.0)
        out = readout.process(unb).settle(0.5)
        assert out.mean() == pytest.approx(3.3 * 2e-4, rel=0.01)

    def test_strips_preamp_flicker(self):
        """The architecture's raison d'etre: 1/f after the modulation is
        rejected because the signal lives at the carrier."""
        def preamp(seed):
            return Amplifier(
                gain=100.0, noise_density=50e-9, noise_corner=5e3,
                rails=None, rng=np.random.default_rng(seed),
            )

        # measure output noise with zero unbalance
        unb = Signal.constant(0.0, 2.0, FS)
        readout = ACBridgeReadout(
            3.3, FCARRIER, output_cutoff=50.0, preamp=preamp(1)
        )
        locked = readout.process(unb).settle(0.3)

        # same preamp used at baseband (DC bridge) for comparison
        from repro.circuits import LowPassFilter, Chain

        baseband = Chain([preamp(1), LowPassFilter(50.0, order=2)])
        plain = baseband.process(Signal.constant(0.0, 2.0, FS)).settle(0.3)

        assert locked.std() < 0.5 * plain.std()
