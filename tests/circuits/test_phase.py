"""Phase-lead (differentiator) loop conditioning block."""

import math

import numpy as np
import pytest

from repro.circuits.phase import PhaseLead
from repro.circuits import Signal
from repro.errors import CircuitError

FS = 400e3


class TestGain:
    def test_unity_at_reference(self):
        pl = PhaseLead(reference_frequency=10e3)
        gain = pl.small_signal_gain(10e3, FS)
        assert gain == pytest.approx(1.0, rel=0.01)

    def test_gain_proportional_to_frequency(self):
        pl = PhaseLead(reference_frequency=10e3)
        g5 = pl.small_signal_gain(5e3, FS)
        pl.reset()
        g20 = pl.small_signal_gain(20e3, FS)
        assert g20 / g5 == pytest.approx(4.0, rel=0.02)

    def test_dc_blocked(self):
        pl = PhaseLead(reference_frequency=1e3)
        out = pl.process(Signal.constant(1.0, 0.01, FS))
        assert abs(out.samples[-1]) < 1e-12


class TestPhase:
    def test_ninety_degree_lead(self):
        pl = PhaseLead(reference_frequency=10e3)
        h = pl.response(np.asarray([10e3]), FS)[0]
        phase_deg = math.degrees(np.angle(h))
        # +90 deg minus the half-sample delay (pi f / fs = 4.5 deg here)
        assert phase_deg == pytest.approx(90.0 - 4.5, abs=1.0)

    def test_sine_becomes_cosine(self):
        pl = PhaseLead(reference_frequency=1e3)
        s = Signal.sine(1e3, 0.02, FS)
        out = pl.process(s).settle(0.25)
        ref = Signal.from_function(
            lambda t: np.cos(2 * np.pi * 1e3 * t), 0.02, FS
        ).settle(0.25)
        # correlation with the cosine should be near 1
        corr = np.corrcoef(out.samples, ref.samples)[0, 1]
        assert corr > 0.99


class TestStepping:
    def test_step_matches_process(self):
        p1, p2 = PhaseLead(1e3), PhaseLead(1e3)
        sig = Signal.sine(500.0, 0.01, FS)
        batch = p1.process(sig)
        p2.prepare(FS)
        stepped = np.asarray([p2.step(float(x)) for x in sig.samples])
        assert np.allclose(batch.samples, stepped)

    def test_step_requires_prepare(self):
        with pytest.raises(CircuitError):
            PhaseLead(1e3).step(1.0)

    def test_reference_above_nyquist_rejected(self):
        pl = PhaseLead(300e3)
        with pytest.raises(CircuitError):
            pl.prepare(FS)

    def test_reset(self):
        pl = PhaseLead(1e3)
        pl.prepare(FS)
        pl.step(1.0)
        pl.reset()
        assert pl.step(0.0) == 0.0
