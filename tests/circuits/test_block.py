"""Block abstraction, chains, and elementary blocks."""

import numpy as np
import pytest

from repro.circuits import Chain, Gain, Passthrough, Saturation, Signal
from repro.errors import CircuitError


class TestGain:
    def test_scales(self):
        g = Gain(3.0)
        out = g.process(Signal.constant(2.0, 0.01, 1e3))
        assert np.all(out.samples == 6.0)

    def test_step(self):
        assert Gain(-2.0).step(1.5) == -3.0

    def test_inverting(self):
        g = Gain(-1.0)
        out = g.process(Signal.constant(1.0, 0.01, 1e3))
        assert np.all(out.samples == -1.0)


class TestPassthrough:
    def test_identity(self):
        p = Passthrough()
        s = Signal.sine(10.0, 0.1, 1e3)
        out = p.process(s)
        assert np.array_equal(out.samples, s.samples)

    def test_copy_not_alias(self):
        p = Passthrough()
        s = Signal.constant(1.0, 0.01, 1e3)
        out = p.process(s)
        out.samples[0] = 99.0
        assert s.samples[0] == 1.0


class TestSaturation:
    def test_clips(self):
        sat = Saturation(-1.0, 1.0)
        s = Signal.sine(10.0, 0.5, 1e3, amplitude=2.0)
        out = sat.process(s)
        assert out.peak() <= 1.0

    def test_passes_small(self):
        sat = Saturation(-1.0, 1.0)
        s = Signal.sine(10.0, 0.5, 1e3, amplitude=0.5)
        out = sat.process(s)
        assert np.array_equal(out.samples, s.samples)

    def test_step(self):
        sat = Saturation(-1.0, 1.0)
        assert sat.step(5.0) == 1.0
        assert sat.step(-5.0) == -1.0

    def test_invalid_rails(self):
        with pytest.raises(CircuitError):
            Saturation(1.0, -1.0)


class TestChain:
    def test_composition_order(self):
        chain = Chain([Gain(2.0), Saturation(-3.0, 3.0)])
        out = chain.process(Signal.constant(5.0, 0.01, 1e3))
        assert np.all(out.samples == 3.0)  # 5*2 clipped to 3

    def test_step_matches_process(self):
        chain = Chain([Gain(2.0), Gain(0.5), Gain(-1.0)])
        assert chain.step(3.0) == pytest.approx(-3.0)

    def test_stagewise(self):
        chain = Chain([Gain(2.0), Gain(3.0)])
        stages = chain.process_stagewise(Signal.constant(1.0, 0.01, 1e3))
        assert stages[0].samples[0] == pytest.approx(2.0)
        assert stages[1].samples[0] == pytest.approx(6.0)

    def test_nested_chain(self):
        inner = Chain([Gain(2.0)])
        outer = Chain([inner, Gain(5.0)])
        out = outer.process(Signal.constant(1.0, 0.01, 1e3))
        assert np.all(out.samples == 10.0)

    def test_empty_rejected(self):
        with pytest.raises(CircuitError):
            Chain([])

    def test_len(self):
        assert len(Chain([Gain(1.0), Gain(2.0)])) == 2


class TestSmallSignalGain:
    def test_measures_gain(self):
        g = Gain(7.0)
        measured = g.small_signal_gain(100.0, 10e3)
        assert measured == pytest.approx(7.0, rel=1e-6)

    def test_default_step_raises(self):
        from repro.circuits.block import Block

        class NoStep(Block):
            def process(self, signal):
                return signal

        with pytest.raises(CircuitError):
            NoStep().step(1.0)
