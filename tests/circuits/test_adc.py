"""ADC quantizer."""

import numpy as np
import pytest

from repro.circuits import ADC, Signal
from repro.errors import CircuitError

FS = 10e3


@pytest.fixture()
def adc():
    return ADC(full_scale=2.5, bits=12)


class TestQuantization:
    def test_lsb(self, adc):
        assert adc.lsb == pytest.approx(5.0 / 4096)

    def test_round_trip_within_half_lsb(self, adc):
        s = Signal.sine(100.0, 0.05, FS, amplitude=1.0)
        out = adc.process(s)
        assert np.max(np.abs(out.samples - s.samples)) <= adc.lsb / 2.0 + 1e-12

    def test_quantization_noise_rms(self, adc, rng):
        s = Signal(rng.uniform(-2.0, 2.0, 100000), FS)
        out = adc.process(s)
        err = out.samples - s.samples
        assert np.std(err) == pytest.approx(adc.quantization_noise_rms, rel=0.05)

    def test_saturation(self, adc):
        s = Signal.constant(10.0, 0.01, FS)
        out = adc.process(s)
        max_code = 2**11 - 1
        assert out.samples[0] == pytest.approx(max_code * adc.lsb)

    def test_codes_integer(self, adc):
        s = Signal.sine(100.0, 0.01, FS)
        codes = adc.codes(s)
        assert codes.dtype.kind == "i"

    def test_step(self, adc):
        assert adc.step(0.0) == 0.0
        assert abs(adc.step(1.234) - 1.234) <= adc.lsb / 2.0

    def test_more_bits_less_noise(self):
        coarse = ADC(2.5, bits=8)
        fine = ADC(2.5, bits=14)
        assert fine.quantization_noise_rms < coarse.quantization_noise_rms / 50.0

    def test_invalid_bits(self):
        with pytest.raises(CircuitError):
            ADC(2.5, bits=30)
