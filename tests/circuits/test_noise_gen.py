"""Noise synthesis: white and 1/f generators match their target PSDs."""

import numpy as np
import pytest

from repro.circuits import Signal, pink_noise, white_noise
from repro.circuits.noise import amplifier_input_noise, noise_signal
from repro.analysis import psd_slope, welch_psd


class TestWhite:
    def test_variance_matches_density(self, rng):
        density = 1e-12  # V^2/Hz
        fs = 100e3
        x = white_noise(density, 200000, fs, rng)
        assert np.var(x) == pytest.approx(density * fs / 2.0, rel=0.05)

    def test_zero_density_silent(self, rng):
        x = white_noise(0.0, 100, 1e3, rng)
        assert np.all(x == 0.0)

    def test_flat_spectrum(self, rng):
        fs = 100e3
        x = Signal(white_noise(1e-12, 400000, fs, rng), fs)
        slope = psd_slope(x, 100.0, 40e3)
        assert abs(slope) < 0.1

    def test_reproducible_with_seed(self):
        a = white_noise(1e-12, 100, 1e3, np.random.default_rng(1))
        b = white_noise(1e-12, 100, 1e3, np.random.default_rng(1))
        assert np.array_equal(a, b)


class TestPink:
    def test_slope_minus_one(self, rng):
        fs = 10e3
        x = Signal(pink_noise(1e-10, 400000, fs, rng), fs)
        slope = psd_slope(x, 1.0, 1e3)
        assert slope == pytest.approx(-1.0, abs=0.15)

    def test_density_level(self, rng):
        fs = 10e3
        density_1hz = 1e-10
        x = Signal(pink_noise(density_1hz, 400000, fs, rng), fs)
        freqs, psd = welch_psd(x, segments=16)
        # around 10 Hz the PSD should be ~ density/10
        mask = (freqs > 8.0) & (freqs < 12.0)
        assert np.mean(psd[mask]) == pytest.approx(density_1hz / 10.0, rel=0.5)

    def test_zero_density_silent(self, rng):
        assert np.all(pink_noise(0.0, 100, 1e3, rng) == 0.0)

    def test_single_sample(self, rng):
        assert pink_noise(1e-10, 1, 1e3, rng)[0] == 0.0


class TestAmplifierNoise:
    def test_corner_behaviour(self, rng):
        fs = 100e3
        white_density = 1e-15
        corner = 1e3
        x = Signal(
            amplifier_input_noise(white_density, corner, 800000, fs, rng), fs
        )
        freqs, psd = welch_psd(x, segments=16)
        low = np.mean(psd[(freqs > 50) & (freqs < 100)])
        high = np.mean(psd[(freqs > 20e3) & (freqs < 40e3)])
        # well below the corner the PSD is much larger than the floor
        assert low > 5.0 * high
        assert high == pytest.approx(white_density, rel=0.3)

    def test_no_corner_is_white(self, rng):
        fs = 10e3
        x = Signal(amplifier_input_noise(1e-14, 0.0, 200000, fs, rng), fs)
        assert abs(psd_slope(x, 10.0, 4e3)) < 0.1

    def test_noise_signal_wrapper(self, rng):
        s = noise_signal(1e-14, 100.0, 0.1, 10e3, rng)
        assert isinstance(s, Signal)
        assert len(s) == 1000
