"""DDA instrumentation amplifier (Fig. 5 first stage)."""

import pytest

from repro.circuits import DDAInstrumentationAmplifier, Signal
from repro.errors import CircuitError

FS = 200e3


class TestGainSetting:
    def test_ratio_defined_gain(self):
        dda = DDAInstrumentationAmplifier(feedback_r1=1e3, feedback_r2=9e3)
        assert dda.closed_loop_gain == pytest.approx(10.0)
        assert dda.gain == pytest.approx(10.0)

    def test_default_preset(self):
        dda = DDAInstrumentationAmplifier()
        assert dda.closed_loop_gain == pytest.approx(50.0)

    def test_processes_with_gain(self):
        dda = DDAInstrumentationAmplifier(
            feedback_r1=1e3, feedback_r2=9e3, noise_density=0.0
        )
        out = dda.process(Signal.constant(10e-3, 0.02, FS))
        assert out.samples[-1] == pytest.approx(0.1, rel=1e-3)

    def test_gbw_must_exceed_gain(self):
        with pytest.raises(CircuitError):
            DDAInstrumentationAmplifier(feedback_r1=1.0, feedback_r2=1e6, gbw=1e3)


class TestBridgeInterface:
    def test_no_loading_advantage(self):
        dda = DDAInstrumentationAmplifier(feedback_r1=1e3)
        # a 10 kOhm bridge would lose 11x of its signal into a 1 kOhm
        # resistive input; the DDA's gate input avoids that entirely
        assert dda.input_impedance_advantage(10e3) == pytest.approx(11.0)

    def test_cmrr_present(self):
        dda = DDAInstrumentationAmplifier(cmrr_db=90.0, noise_density=0.0)
        cm = Signal.constant(1.0, 0.02, FS)
        diff = Signal.constant(0.0, 0.02, FS)
        out = dda.process_with_common_mode(diff, cm)
        expected = dda.gain / 10 ** (90.0 / 20.0)
        assert out.samples[-1] == pytest.approx(expected, rel=0.01)
