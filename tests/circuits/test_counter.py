"""Digital frequency counter: quantization and comparator behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    FrequencyCounter,
    ReciprocalCounter,
    Signal,
    comparator_edges,
)
from repro.circuits.counter import _comparator_edges_reference
from repro.errors import SignalError

FS = 1e6


class TestComparator:
    def test_edge_count_of_tone(self):
        s = Signal.sine(1000.0, 0.1, FS)
        edges = comparator_edges(s)
        assert len(edges) == pytest.approx(100, abs=1)

    def test_edge_spacing_is_period(self):
        s = Signal.sine(1000.0, 0.05, FS)
        edges = comparator_edges(s)
        periods = np.diff(edges)
        assert np.allclose(periods, 1e-3, rtol=1e-4)

    def test_hysteresis_rejects_noise_chatter(self, rng):
        t = np.arange(int(0.05 * FS)) / FS
        noisy = np.sin(2 * np.pi * 100.0 * t) + 0.1 * rng.normal(size=len(t))
        s = Signal(noisy, FS)
        without = comparator_edges(s, hysteresis=0.0)
        with_h = comparator_edges(s, hysteresis=1.0)
        assert len(with_h) == pytest.approx(5, abs=1)
        assert len(without) > len(with_h)

    def test_interpolation_subsample_accuracy(self):
        # coarse sampling, fine edges
        s = Signal.sine(997.0, 0.1, 50e3)
        edges = comparator_edges(s)
        f_est = (len(edges) - 1) / (edges[-1] - edges[0])
        assert f_est == pytest.approx(997.0, rel=1e-5)


class TestComparatorVectorization:
    """The vectorized scan must match the per-sample oracle exactly."""

    def assert_matches(self, samples, threshold=0.0, hysteresis=0.0):
        __tracebackhide__ = True
        s = Signal(np.asarray(samples, dtype=float), FS)
        fast = comparator_edges(s, threshold, hysteresis)
        slow = _comparator_edges_reference(s, threshold, hysteresis)
        assert np.array_equal(fast, slow)

    def test_tone(self):
        self.assert_matches(Signal.sine(997.0, 0.01, FS).samples)

    def test_tone_with_hysteresis(self):
        self.assert_matches(
            Signal.sine(997.0, 0.01, FS).samples, hysteresis=0.4
        )

    def test_noisy_tone(self, rng):
        t = np.arange(2000) / FS
        x = np.sin(2 * np.pi * 5e3 * t) + 0.5 * rng.normal(size=len(t))
        for hyst in (0.0, 0.3, 1.0):
            self.assert_matches(x, hysteresis=hyst)

    def test_zero_hysteresis_chatter(self):
        # alternating samples around the threshold: every pair toggles
        self.assert_matches([1.0, -1.0] * 50)

    def test_samples_exactly_on_thresholds(self):
        # landing exactly on hi/lo exercises the >=/<= boundary and the
        # both-up-and-down toggle classification (hi == lo)
        self.assert_matches([0.0, 0.0, 1.0, 0.0, -1.0, 0.0, 1.0])
        self.assert_matches(
            [0.2, -0.2, 0.2, -0.2, 0.0, 0.2], hysteresis=0.4
        )

    def test_flat_segments(self):
        self.assert_matches([-1.0] * 10 + [1.0] * 10 + [-1.0] * 10)
        self.assert_matches(np.zeros(20))
        self.assert_matches(np.ones(20))

    def test_degenerate_lengths(self):
        self.assert_matches([0.5])
        assert len(comparator_edges(Signal([0.5], FS))) == 0

    def test_nonzero_threshold(self, rng):
        x = rng.normal(size=500)
        self.assert_matches(x, threshold=0.3, hysteresis=0.2)

    @settings(max_examples=200, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=-10.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=120,
        ),
        threshold=st.floats(min_value=-2.0, max_value=2.0),
        hysteresis=st.floats(min_value=0.0, max_value=3.0),
    )
    def test_property_matches_oracle(self, samples, threshold, hysteresis):
        self.assert_matches(samples, threshold, hysteresis)

    @settings(max_examples=100, deadline=None)
    @given(
        samples=st.lists(
            st.sampled_from([-1.0, -0.5, 0.0, 0.5, 1.0]),
            min_size=2, max_size=80,
        ),
        hysteresis=st.sampled_from([0.0, 0.5, 1.0, 2.0]),
    )
    def test_property_quantized_levels(self, samples, hysteresis):
        """Discrete levels hammer the exact-threshold corner cases."""
        self.assert_matches(samples, 0.0, hysteresis)


class TestGatedCounter:
    def test_exact_tone(self):
        counter = FrequencyCounter(gate_time=0.1)
        s = Signal.sine(2000.0, 0.25, FS)
        assert counter.measure_single(s) == pytest.approx(2000.0, abs=counter.resolution)

    def test_resolution_is_inverse_gate(self):
        assert FrequencyCounter(gate_time=0.01).resolution == pytest.approx(100.0)

    def test_quantization(self):
        counter = FrequencyCounter(gate_time=0.01)
        s = Signal.sine(1234.5, 0.05, FS)
        reading = counter.measure_single(s)
        assert reading % counter.resolution == pytest.approx(0.0, abs=1e-9)
        assert abs(reading - 1234.5) <= counter.resolution

    def test_multiple_gates(self):
        counter = FrequencyCounter(gate_time=0.02)
        s = Signal.sine(1000.0, 0.1, FS)
        ms = counter.measure(s)
        assert len(ms) == 5
        for m in ms:
            assert abs(m.frequency - 1000.0) <= counter.resolution

    def test_frequency_series_times(self):
        counter = FrequencyCounter(gate_time=0.02)
        s = Signal.sine(1000.0, 0.1, FS)
        t, f = counter.frequency_series(s)
        assert t[0] == pytest.approx(0.01)
        assert np.all(np.diff(t) == pytest.approx(0.02))

    def test_short_signal_rejected(self):
        counter = FrequencyCounter(gate_time=1.0)
        with pytest.raises(SignalError):
            counter.measure(Signal.sine(100.0, 0.1, FS))


class TestReciprocalCounter:
    def test_beats_gated_at_low_frequency(self):
        f_true = 1234.5
        s = Signal.sine(f_true, 0.05, FS)
        gated = FrequencyCounter(gate_time=0.01).measure_single(s)
        recip = ReciprocalCounter(gate_time=0.01).measure_single(s)
        assert abs(recip - f_true) < abs(gated - f_true)

    def test_high_accuracy(self):
        s = Signal.sine(8876.5, 0.1, FS)
        reading = ReciprocalCounter(gate_time=0.05).measure_single(s)
        assert reading == pytest.approx(8876.5, rel=1e-5)

    def test_too_few_edges_reads_zero(self):
        counter = ReciprocalCounter(gate_time=0.01)
        s = Signal.constant(1.0, 0.02, FS)
        assert counter.measure_single(s) == 0.0

    def test_short_signal_rejected(self):
        with pytest.raises(SignalError):
            ReciprocalCounter(gate_time=1.0).measure(Signal.sine(100.0, 0.5, FS))
