"""Non-linear limiting amplifier and its describing function (Fig. 5)."""

import math

import numpy as np
import pytest

from repro.circuits import LimitingAmplifier, Signal
from repro.errors import OscillationError


@pytest.fixture()
def limiter():
    return LimitingAmplifier(small_signal_gain=10.0, output_level=1.0)


class TestTransfer:
    def test_small_signal_gain(self, limiter):
        assert limiter.step(1e-6) == pytest.approx(10.0 * 1e-6, rel=1e-3)

    def test_output_bounded(self, limiter):
        s = Signal.sine(100.0, 0.1, 10e3, amplitude=100.0)
        out = limiter.process(s)
        assert out.peak() <= 1.0

    def test_asymptote(self, limiter):
        assert limiter.step(1e6) == pytest.approx(1.0, rel=1e-9)

    def test_odd_symmetry(self, limiter):
        assert limiter.step(-0.3) == pytest.approx(-limiter.step(0.3))

    def test_monotonic(self, limiter):
        # stay where tanh is numerically distinguishable from +/-1
        xs = np.linspace(-0.5, 0.5, 101)
        ys = [limiter.step(float(x)) for x in xs]
        assert all(a < b for a, b in zip(ys, ys[1:]))


class TestDescribingFunction:
    def test_small_amplitude_limit(self, limiter):
        n = limiter.describing_function(1e-6)
        assert n == pytest.approx(10.0, rel=1e-3)

    def test_monotone_decreasing(self, limiter):
        amps = [0.001, 0.01, 0.1, 1.0, 10.0]
        gains = [limiter.describing_function(a) for a in amps]
        assert all(a >= b for a, b in zip(gains, gains[1:]))

    def test_large_amplitude_rolloff(self, limiter):
        # hard limiter asymptote: N(a) ~ 4 level / (pi a)
        a = 100.0
        assert limiter.describing_function(a) == pytest.approx(
            4.0 * 1.0 / (math.pi * a), rel=0.05
        )

    def test_amplitude_for_gain_round_trip(self, limiter):
        target = 2.5
        a = limiter.amplitude_for_gain(target)
        assert limiter.describing_function(a) == pytest.approx(target, rel=1e-4)

    def test_unreachable_gain_raises(self, limiter):
        with pytest.raises(OscillationError):
            limiter.amplitude_for_gain(11.0)

    def test_oscillation_amplitude_prediction(self, limiter):
        # if the rest of the loop has gain 1/2.0, steady state sits where
        # N(a) = 2.0; the output amplitude then is N(a)*a
        a_in = limiter.amplitude_for_gain(2.0)
        a_out = limiter.describing_function(a_in) * a_in
        # the *fundamental* of a clipped wave can exceed the clip level,
        # up to 4/pi for a hard square
        assert a_out < 4.0 / math.pi
        assert a_out > 0.5  # but well into limiting
