"""Programmable offset-compensation DAC (Fig. 4)."""

import numpy as np
import pytest

from repro.circuits import OffsetCompensationDAC, Signal
from repro.errors import CircuitError


@pytest.fixture()
def dac():
    return OffsetCompensationDAC(full_scale=1.0, bits=10)


class TestCodes:
    def test_lsb(self, dac):
        assert dac.lsb == pytest.approx(2.0 / (2**10 - 1))

    def test_code_range_symmetric(self, dac):
        lo, hi = dac.code_range
        assert lo == -hi

    def test_set_code(self, dac):
        dac.set_code(100)
        assert dac.compensation == pytest.approx(100 * dac.lsb)

    def test_out_of_range_code_rejected(self, dac):
        lo, hi = dac.code_range
        with pytest.raises(CircuitError):
            dac.set_code(hi + 1)

    def test_invalid_bits(self):
        with pytest.raises(CircuitError):
            OffsetCompensationDAC(1.0, bits=1)


class TestVoltageProgramming:
    def test_nearest_code(self, dac):
        programmed = dac.set_voltage(0.1234)
        assert abs(programmed - 0.1234) <= dac.lsb / 2.0

    def test_clamps_beyond_range(self, dac):
        programmed = dac.set_voltage(5.0)
        assert programmed == pytest.approx(dac.code_range[1] * dac.lsb)

    def test_negative_voltages(self, dac):
        programmed = dac.set_voltage(-0.5)
        assert programmed == pytest.approx(-0.5, abs=dac.lsb)


class TestCalibration:
    def test_residual_within_half_lsb(self, dac):
        residual = dac.calibrate(0.3141)
        assert abs(residual) <= dac.lsb / 2.0

    def test_out_of_range_offset_leaves_remainder(self, dac):
        residual = dac.calibrate(1.5)
        assert residual == pytest.approx(0.5, abs=dac.lsb)

    def test_process_subtracts(self, dac):
        dac.set_voltage(0.25)
        out = dac.process(Signal.constant(1.0, 0.01, 1e3))
        assert out.samples[0] == pytest.approx(1.0 - dac.compensation)

    def test_step_matches_process(self, dac):
        dac.set_voltage(0.1)
        assert dac.step(0.5) == pytest.approx(0.5 - dac.compensation)

    def test_more_bits_smaller_residual(self):
        coarse = OffsetCompensationDAC(1.0, bits=4)
        fine = OffsetCompensationDAC(1.0, bits=12)
        assert abs(fine.calibrate(0.3)) < abs(coarse.calibrate(0.3))
