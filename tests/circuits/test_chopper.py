"""Chopper-stabilized amplifier: offset and 1/f rejection (Fig. 4)."""

import numpy as np
import pytest

from repro.analysis import welch_psd
from repro.circuits import (
    Amplifier,
    Chain,
    ChopperAmplifier,
    LowPassFilter,
    Signal,
    square_carrier,
)
from repro.errors import CircuitError

FS = 200e3
FCHOP = 10e3


class TestCarrier:
    def test_levels(self):
        c = square_carrier(FCHOP, 1000, FS)
        assert set(np.unique(c)) == {-1.0, 1.0}

    def test_period(self):
        c = square_carrier(FCHOP, 100, FS)
        # 20 samples per period at 200 kHz / 10 kHz
        assert np.all(c[:10] == 1.0)
        assert np.all(c[10:20] == -1.0)

    def test_zero_mean_over_full_periods(self):
        c = square_carrier(FCHOP, 2000, FS)
        assert abs(np.mean(c)) < 1e-12

    def test_no_spurious_edge_flips(self):
        # the regression that motivated integer half-periods: every
        # half-period must be exactly m samples long
        c = square_carrier(FCHOP, 200000, FS)
        edges = np.where(np.diff(c) != 0.0)[0]
        assert len(set(np.diff(edges))) == 1

    def test_incommensurate_clock_supported(self):
        c = square_carrier(9873.0, 5000, FS)
        assert set(np.unique(c)) == {-1.0, 1.0}

    def test_above_nyquist_rejected(self):
        with pytest.raises(CircuitError):
            square_carrier(150e3, 100, FS)


class TestOffsetRejection:
    def test_offset_removed(self):
        core = Amplifier(gain=100.0, input_offset=5e-3, rails=None)
        chopped = Chain([ChopperAmplifier(core, FCHOP), LowPassFilter(100.0)])
        out = chopped.process(Signal.constant(0.0, 0.3, FS)).settle(0.5)
        # unchopped would read 0.5 V; chopped residual is ~zero
        assert abs(out.mean()) < 1e-3

    def test_signal_preserved(self):
        core = Amplifier(gain=100.0, input_offset=5e-3, rails=None)
        chopped = Chain([ChopperAmplifier(core, FCHOP), LowPassFilter(200.0)])
        tone = Signal.sine(20.0, 0.5, FS, amplitude=10e-6)
        out = chopped.process(tone).settle(0.5)
        assert out.std() == pytest.approx(100.0 * 10e-6 / np.sqrt(2), rel=0.1)

    def test_offset_appears_as_ripple_at_fchop(self):
        core = Amplifier(gain=100.0, input_offset=5e-3, rails=None)
        ch = ChopperAmplifier(core, FCHOP)
        out = ch.process(Signal.constant(0.0, 0.2, FS))
        freqs, psd = welch_psd(out, segments=4)
        peak_f = freqs[np.argmax(psd)]
        assert peak_f == pytest.approx(FCHOP, rel=0.05)

    def test_residual_offset_helper(self):
        core = Amplifier(gain=100.0, input_offset=5e-3, rails=None)
        ch = ChopperAmplifier(core, FCHOP)
        assert abs(ch.residual_offset(FS)) < 5e-3  # << 0.5 V unchopped


class TestFlickerRejection:
    def test_low_frequency_noise_suppressed(self):
        def make_core(seed):
            return Amplifier(
                gain=100.0, noise_density=50e-9, noise_corner=5e3,
                rails=None, rng=np.random.default_rng(seed),
            )

        fs, dur = 50e3, 4.0
        plain_out = make_core(1).process(Signal.constant(0.0, dur, fs))
        chop_out = ChopperAmplifier(make_core(1), 5e3).process(
            Signal.constant(0.0, dur, fs)
        )
        f_p, psd_p = welch_psd(plain_out, segments=8)
        f_c, psd_c = welch_psd(chop_out, segments=8)
        low = (f_p > 1.0) & (f_p < 20.0)
        # chopping strips the 1/f shelf below the corner
        assert np.mean(psd_c[low]) < 0.2 * np.mean(psd_p[low])

    def test_reset_propagates(self):
        core = Amplifier(gain=10.0, gbw=1e5)
        ch = ChopperAmplifier(core, FCHOP)
        ch.process(Signal.constant(1.0, 0.01, FS))
        ch.reset()  # must not raise and must clear the core's pole state
        out = ch.process(Signal.constant(0.0, 0.01, FS))
        assert abs(out.samples[-1]) < 1e-9
