"""Variable-gain amplifier (Fig. 5)."""

import numpy as np
import pytest

from repro.circuits import Signal, VariableGainAmplifier
from repro.errors import CircuitError


@pytest.fixture()
def vga():
    return VariableGainAmplifier(min_gain_db=0.0, max_gain_db=30.0, steps=16)


class TestSettings:
    def test_step_size(self, vga):
        assert vga.step_db == pytest.approx(2.0)

    def test_min_setting_gain(self, vga):
        vga.set_setting(0)
        assert vga.gain == pytest.approx(1.0)

    def test_max_setting_gain(self, vga):
        vga.set_setting(15)
        assert vga.gain_db == pytest.approx(30.0)

    def test_out_of_range_setting(self, vga):
        with pytest.raises(CircuitError):
            vga.set_setting(16)

    def test_invalid_range(self):
        with pytest.raises(CircuitError):
            VariableGainAmplifier(min_gain_db=10.0, max_gain_db=5.0)

    def test_needs_two_steps(self):
        with pytest.raises(CircuitError):
            VariableGainAmplifier(steps=1)


class TestAutoRanging:
    def test_meets_requirement(self, vga):
        gain = vga.set_gain_at_least(7.0)
        assert gain >= 7.0
        # and not more than one step above
        assert gain <= 7.0 * 10 ** (vga.step_db / 20.0)

    def test_minimum_for_small_requirement(self, vga):
        vga.set_gain_at_least(0.5)
        assert vga.setting == 0

    def test_exact_boundary(self, vga):
        vga.set_gain_at_least(10 ** (2.0 / 20.0))  # exactly one step
        assert vga.setting == 1

    def test_beyond_range_raises(self, vga):
        with pytest.raises(CircuitError):
            vga.set_gain_at_least(10 ** (31.0 / 20.0))

    def test_nonpositive_requirement(self, vga):
        with pytest.raises(CircuitError):
            vga.set_gain_at_least(0.0)


class TestProcessing:
    def test_scales_signal(self, vga):
        vga.set_setting(5)
        s = Signal.constant(0.1, 0.01, 1e3)
        out = vga.process(s)
        assert out.samples[0] == pytest.approx(0.1 * vga.gain)

    def test_step(self, vga):
        vga.set_setting(3)
        assert vga.step(1.0) == pytest.approx(vga.gain)
