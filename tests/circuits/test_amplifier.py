"""Amplifier block: gain, bandwidth, offset, noise, rails, CMRR."""

import numpy as np
import pytest

from repro.circuits import Amplifier, DifferenceAmplifier, Signal
from repro.errors import CircuitError

FS = 200e3


class TestGainAndBandwidth:
    def test_ideal_gain(self):
        a = Amplifier(gain=10.0, rails=None)
        out = a.process(Signal.constant(0.1, 0.01, FS))
        assert out.samples[-1] == pytest.approx(1.0)

    def test_bandwidth_is_gbw_over_gain(self):
        a = Amplifier(gain=100.0, gbw=1e6)
        assert a.bandwidth == pytest.approx(1e4)

    def test_gain_rolls_off_at_bandwidth(self):
        a = Amplifier(gain=10.0, gbw=1e5, rails=None)
        g = a.small_signal_gain(1e4, FS, amplitude=1e-3)
        assert g == pytest.approx(10.0 / np.sqrt(2.0), rel=0.05)

    def test_low_frequency_full_gain(self):
        a = Amplifier(gain=10.0, gbw=1e6, rails=None)
        g = a.small_signal_gain(10.0, FS, amplitude=1e-3)
        assert g == pytest.approx(10.0, rel=0.01)

    def test_gbw_below_gain_rejected(self):
        with pytest.raises(CircuitError):
            Amplifier(gain=100.0, gbw=50.0)

    def test_negative_gain_rejected(self):
        with pytest.raises(Exception):
            Amplifier(gain=-10.0)


class TestOffsetAndRails:
    def test_offset_amplified(self):
        a = Amplifier(gain=100.0, input_offset=1e-3, rails=None)
        out = a.process(Signal.constant(0.0, 0.01, FS))
        assert out.mean() == pytest.approx(0.1)

    def test_rails_clip(self):
        a = Amplifier(gain=100.0, rails=(-1.0, 1.0))
        out = a.process(Signal.constant(0.1, 0.01, FS))
        assert out.peak() <= 1.0

    def test_offset_can_saturate_chain(self):
        # 5 mV offset x 1000 = 5 V > rails: the fundamental problem
        # the chopper + offset DAC solve
        a = Amplifier(gain=1000.0, input_offset=5e-3, rails=(-2.5, 2.5))
        out = a.process(Signal.constant(0.0, 0.01, FS))
        assert out.mean() == pytest.approx(2.5)

    def test_invalid_rails(self):
        with pytest.raises(CircuitError):
            Amplifier(gain=10.0, rails=(1.0, -1.0))


class TestNoise:
    def test_output_noise_scales_with_gain(self, rng):
        a = Amplifier(gain=10.0, noise_density=100e-9, rails=None,
                      rng=np.random.default_rng(1))
        b = Amplifier(gain=100.0, noise_density=100e-9, rails=None,
                      rng=np.random.default_rng(1))
        sa = a.process(Signal.constant(0.0, 0.2, FS)).std()
        sb = b.process(Signal.constant(0.0, 0.2, FS)).std()
        assert sb / sa == pytest.approx(10.0, rel=0.01)

    def test_noiseless_is_deterministic(self):
        a = Amplifier(gain=10.0, rails=None)
        s = Signal.sine(1e3, 0.01, FS)
        out1 = a.process(s)
        out2 = a.process(s)
        assert np.array_equal(out1.samples, out2.samples)

    def test_white_level_matches_density(self):
        density = 50e-9
        a = Amplifier(gain=1.0, noise_density=density, rails=None,
                      rng=np.random.default_rng(2))
        out = a.process(Signal.constant(0.0, 0.5, FS))
        expected = density * np.sqrt(FS / 2.0)
        assert out.std() == pytest.approx(expected, rel=0.05)


class TestStepping:
    def test_step_matches_process_noiseless(self):
        a1 = Amplifier(gain=5.0, gbw=1e5, rails=(-2.0, 2.0))
        a2 = Amplifier(gain=5.0, gbw=1e5, rails=(-2.0, 2.0))
        sig = Signal.sine(1e3, 0.01, FS, amplitude=0.1)
        batch = a1.process(sig)
        a2.prepare(FS)
        stepped = np.asarray([a2.step(float(x)) for x in sig.samples])
        assert np.allclose(batch.samples, stepped)

    def test_step_noise_requires_prepare(self):
        a = Amplifier(gain=1.0, noise_density=1e-9, gbw=None)
        with pytest.raises(CircuitError):
            a.step(0.0)


class TestDifferenceAmplifier:
    def test_common_mode_gain(self):
        d = DifferenceAmplifier(gain=100.0, cmrr_db=80.0, rails=None)
        assert d.common_mode_gain == pytest.approx(100.0 / 1e4)

    def test_common_mode_leaks(self):
        d = DifferenceAmplifier(gain=100.0, cmrr_db=60.0, rails=None)
        diff = Signal.constant(0.0, 0.01, FS)
        cm = Signal.constant(1.0, 0.01, FS)
        out = d.process_with_common_mode(diff, cm)
        assert out.mean() == pytest.approx(100.0 / 1e3, rel=1e-6)

    def test_higher_cmrr_less_leak(self):
        lo = DifferenceAmplifier(gain=100.0, cmrr_db=60.0, rails=None)
        hi = DifferenceAmplifier(gain=100.0, cmrr_db=100.0, rails=None)
        cm = Signal.constant(1.0, 0.01, FS)
        diff = Signal.constant(0.0, 0.01, FS)
        assert abs(hi.process_with_common_mode(diff, cm).mean()) < abs(
            lo.process_with_common_mode(diff, cm).mean()
        )
