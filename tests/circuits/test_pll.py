"""PLL frequency tracker."""

import numpy as np
import pytest

from repro.circuits import Signal
from repro.circuits.pll import PhaseLockedLoop
from repro.errors import CircuitError

FS = 400e3
F_TRUE = 8893.7


@pytest.fixture()
def tone():
    return Signal.sine(F_TRUE, 0.3, FS, amplitude=0.5)


class TestLocking:
    def test_locks_and_reads_exactly(self, tone):
        pll = PhaseLockedLoop(8800.0, 200.0, amplitude=0.5)
        reading = pll.track(tone)
        assert reading.locked
        assert reading.final_frequency() == pytest.approx(F_TRUE, abs=0.01)

    def test_locks_from_below_and_above(self, tone):
        for start in (8600.0, 9200.0):
            pll = PhaseLockedLoop(start, 300.0, amplitude=0.5)
            assert pll.measure(tone) == pytest.approx(F_TRUE, abs=0.05)

    def test_far_off_center_fails_visibly(self, tone):
        # well outside the pull-in range, narrow loop: must not lie
        pll = PhaseLockedLoop(4000.0, 20.0, amplitude=0.5)
        reading = pll.track(tone)
        assert (not reading.locked) or abs(
            reading.final_frequency() - F_TRUE
        ) > 100.0

    def test_tracks_frequency_step(self):
        # two tones back to back: the PLL follows the hop
        a = Signal.sine(8800.0, 0.15, FS, amplitude=0.5)
        b = Signal.sine(9000.0, 0.15, FS, amplitude=0.5)
        both = Signal(np.concatenate([a.samples, b.samples]), FS)
        pll = PhaseLockedLoop(8800.0, 300.0, amplitude=0.5)
        reading = pll.track(both)
        # instantaneous samples carry ~5 Hz of 2f0 PD ripple at this
        # wide bandwidth; averages are exact
        assert reading.frequency[len(both) // 4] == pytest.approx(8800.0, abs=10.0)
        assert reading.final_frequency(0.2) == pytest.approx(9000.0, abs=2.0)


class TestResolutionTradeoff:
    def test_narrow_loop_less_wander(self, tone):
        wide = PhaseLockedLoop(8800.0, 200.0, amplitude=0.5).track(tone)
        narrow = PhaseLockedLoop(8800.0, 20.0, amplitude=0.5).track(tone)
        assert narrow.frequency_noise() < 0.1 * wide.frequency_noise()

    def test_narrow_loop_slower_settling(self, tone):
        wide = PhaseLockedLoop(8800.0, 200.0, amplitude=0.5).track(tone)
        narrow = PhaseLockedLoop(8800.0, 20.0, amplitude=0.5).track(tone)
        assert narrow.settling_time > 5.0 * wide.settling_time

    def test_beats_counter_grid_with_no_gate(self, tone):
        # 20 Hz loop: mHz-class wander on a 0.3 s record, where a gated
        # counter would be stuck on a 3.3 Hz grid
        pll = PhaseLockedLoop(8800.0, 20.0, amplitude=0.5)
        reading = pll.track(tone)
        assert reading.frequency_noise() < 0.1


class TestOptimizedLoopBitExact:
    """The optimized scalar tracking loop == the naive recurrence, bit for bit."""

    @staticmethod
    def naive_loop(x, k_p, k_i, freq0, dt):
        """Verbatim copy of the pre-optimization per-sample loop."""
        import math

        phase = 0.0
        freq = freq0
        n = len(x)
        freq_log = np.empty(n)
        for i in range(n):
            pd = x[i] * math.cos(phase)
            freq += k_i * pd * dt / (2.0 * math.pi)
            instantaneous = freq + k_p * pd / (2.0 * math.pi)
            phase += 2.0 * math.pi * instantaneous * dt
            if phase > math.pi:
                phase -= 2.0 * math.pi * round(phase / (2.0 * math.pi))
            freq_log[i] = freq
        return freq_log

    @pytest.mark.parametrize("bandwidth", [50.0, 400.0])
    def test_trajectory_bit_identical(self, bandwidth):
        import math

        from repro.circuits.pll import _run_tracking_loop

        tone = Signal.sine(F_TRUE, 0.05, FS, amplitude=0.5)
        pll = PhaseLockedLoop(8800.0, bandwidth, amplitude=0.5)
        wn = 2.0 * math.pi * pll.loop_bandwidth
        pd_gain = pll.amplitude / 2.0
        k_p = 2.0 * pll.damping * wn / pd_gain
        k_i = wn**2 / pd_gain
        dt = 1.0 / FS

        reference = self.naive_loop(
            tone.samples, k_p, k_i, pll.center_frequency, dt
        )
        optimized = _run_tracking_loop(
            tone.samples, k_p, k_i, pll.center_frequency, dt
        )
        assert np.array_equal(reference, optimized)


class TestValidation:
    def test_bandwidth_guard(self):
        with pytest.raises(CircuitError):
            PhaseLockedLoop(1000.0, 300.0)

    def test_measure_raises_unlocked(self):
        noise_only = Signal(
            np.random.default_rng(0).normal(0.0, 0.01, int(0.1 * FS)), FS
        )
        pll = PhaseLockedLoop(8800.0, 20.0, amplitude=0.5)
        reading = pll.track(noise_only)
        # on pure noise the loop must either flag unlock or visibly wander
        assert (not reading.locked) or reading.frequency_noise() > 1.0
