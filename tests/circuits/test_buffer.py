"""Class-AB output buffer driving the coil (Fig. 5)."""

import numpy as np
import pytest

from repro.circuits import ClassABBuffer, Signal
from repro.errors import CircuitError

FS = 100e3


@pytest.fixture()
def buffer():
    return ClassABBuffer(load_resistance=15.0, max_current=10e-3)


class TestCurrentLimit:
    def test_max_output_voltage(self, buffer):
        assert buffer.max_output_voltage == pytest.approx(0.15)

    def test_clips_at_current_limit(self, buffer):
        s = Signal.sine(1e3, 0.01, FS, amplitude=1.0)
        out = buffer.process(s)
        assert out.peak() <= buffer.max_output_voltage + 1e-12

    def test_small_signal_unity(self, buffer):
        s = Signal.sine(1e3, 0.05, FS, amplitude=0.05)
        out = buffer.process(s)
        assert out.settle(0.2).std() == pytest.approx(
            s.settle(0.2).std(), rel=1e-6
        )

    def test_coil_current(self, buffer):
        assert float(buffer.coil_current(0.15)) == pytest.approx(10e-3)


class TestSlewRate:
    def test_step_slewed(self):
        buf = ClassABBuffer(load_resistance=1e3, max_current=1.0, slew_rate=100.0)
        buf.prepare(FS)
        # a unit step cannot move more than slew/fs per sample
        y = buf.step(1.0)
        assert y == pytest.approx(100.0 / FS)

    def test_slow_signal_unaffected(self):
        buf = ClassABBuffer(load_resistance=1e3, max_current=1.0, slew_rate=1e6)
        s = Signal.sine(100.0, 0.05, FS, amplitude=0.1)
        out = buf.process(s)
        assert np.allclose(out.settle(0.1).samples, s.settle(0.1).samples, atol=1e-6)


class TestCrossover:
    def test_deadzone_zeroes_small_signals(self):
        buf = ClassABBuffer(
            load_resistance=1e3, max_current=1.0, crossover_deadzone=0.01
        )
        out = buf.process(Signal.constant(0.005, 0.01, FS))
        assert np.all(out.samples == 0.0)

    def test_deadzone_shifts_large_signals(self):
        buf = ClassABBuffer(
            load_resistance=1e3, max_current=1.0, crossover_deadzone=0.01
        )
        out = buf.process(Signal.constant(0.5, 0.01, FS))
        assert out.samples[-1] == pytest.approx(0.49)

    def test_ideal_biasing_no_distortion(self, buffer):
        out = buffer.process(Signal.constant(0.05, 0.01, FS))
        assert out.samples[-1] == pytest.approx(0.05)


class TestStepping:
    def test_step_requires_prepare(self, buffer):
        with pytest.raises(CircuitError):
            buffer.step(0.1)

    def test_step_matches_process(self):
        b1 = ClassABBuffer(15.0, 10e-3, slew_rate=1e4)
        b2 = ClassABBuffer(15.0, 10e-3, slew_rate=1e4)
        sig = Signal.sine(1e3, 0.01, FS, amplitude=0.2)
        batch = b1.process(sig)
        b2.prepare(FS)
        stepped = np.asarray([b2.step(float(x)) for x in sig.samples])
        assert np.allclose(batch.samples, stepped)

    def test_reset(self, buffer):
        buffer.prepare(FS)
        buffer.step(0.1)
        buffer.reset()
        assert buffer._last_output == 0.0
