"""Oscillator startup-time prediction vs the time-domain simulation."""

import numpy as np
import pytest

from repro.errors import OscillationError
from repro.feedback import predicted_startup_time


def simulated_startup_time(loop, duration=0.06):
    record = loop.run(duration)
    steady = record.steady_amplitude()
    envelope = np.abs(record.displacement)
    index = int(np.argmax(envelope > 0.9 * steady))
    return float(record.times[index])


class TestStartupTime:
    def test_matches_simulation(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        predicted = predicted_startup_time(loop, fs)
        simulated = simulated_startup_time(loop)
        # the exponential-envelope estimate ignores the limiter's final
        # compression phase; factor-of-2 agreement is its design accuracy
        assert 0.4 < simulated / predicted < 2.5
        assert predicted < 10e-3  # milliseconds, not seconds

    def test_more_gain_faster_startup(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs, startup_factor=2.0)
        slow = predicted_startup_time(loop, fs)
        loop.vga.set_setting(min(loop.vga.setting + 3, loop.vga.steps - 1))
        fast = predicted_startup_time(loop, fs)
        assert fast < slow

    def test_smaller_seed_slower(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        from_pm = predicted_startup_time(loop, fs, initial_amplitude=1e-12)
        from_nm = predicted_startup_time(loop, fs, initial_amplitude=1e-9)
        assert from_nm < from_pm

    def test_dead_loop_raises(self, make_loop):
        loop = make_loop()
        loop.vga.set_setting(0)
        loop.limiter.small_signal_gain = 0.01
        fs = 1.0 / loop.resonator.timestep
        with pytest.raises(OscillationError):
            predicted_startup_time(loop, fs)
