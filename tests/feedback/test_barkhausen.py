"""Small-signal Barkhausen analysis vs. the time-domain loop."""

import numpy as np
import pytest

from repro.analysis import zero_crossing_frequency
from repro.errors import OscillationError
from repro.feedback import analyze, loop_gain


class TestLoopGainCurve:
    def test_peak_near_resonance(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        f0 = loop.resonator.natural_frequency
        f = np.linspace(0.8 * f0, 1.2 * f0, 801)
        g = np.abs(loop_gain(loop, f, fs))
        f_peak = f[np.argmax(g)]
        assert f_peak == pytest.approx(loop.resonator.resonance_peak_frequency(), rel=0.05)

    def test_gain_proportional_to_vga(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        f0 = np.asarray([loop.resonator.natural_frequency])
        loop.vga.set_setting(0)
        g0 = abs(loop_gain(loop, f0, fs)[0])
        loop.vga.set_setting(4)
        g4 = abs(loop_gain(loop, f0, fs)[0])
        assert g4 / g0 == pytest.approx(loop.vga.gain, rel=1e-6)


class TestAnalyze:
    def test_zero_phase_near_resonance(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        result = analyze(loop, fs)
        assert result.oscillation_frequency == pytest.approx(
            loop.resonator.natural_frequency, rel=0.02
        )

    def test_predicts_startup(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs, startup_factor=3.0)
        result = analyze(loop, fs)
        assert result.will_oscillate
        assert result.gain_margin_db > 0.0

    def test_predicts_no_startup_when_gain_starved(self, make_loop):
        loop = make_loop(quality_factor=1.2)
        loop.vga.set_setting(0)
        loop.limiter.small_signal_gain = 0.2
        fs = 1.0 / loop.resonator.timestep
        result = analyze(loop, fs)
        assert not result.will_oscillate

    def test_agrees_with_time_domain(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        predicted = analyze(loop, fs).oscillation_frequency
        record = loop.run(duration=0.1)
        measured = zero_crossing_frequency(
            record.displacement_signal().settle(0.5)
        )
        # the large-signal oscillation pulls slightly off the small-signal
        # zero-phase point (drive harmonics); ~1% agreement is physical
        assert measured == pytest.approx(predicted, rel=0.01)

    def test_broken_loop_raises(self, make_loop):
        from repro.circuits import Passthrough

        loop = make_loop()
        # remove the +90 phase conditioning: no zero-phase crossing exists
        loop.phase_lead = Passthrough()
        loop.phase_lead.response = lambda f, fs: np.ones(len(np.atleast_1d(f)))
        fs = 1.0 / loop.resonator.timestep
        with pytest.raises(OscillationError):
            analyze(loop, fs)
