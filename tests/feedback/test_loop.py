"""Closed-loop oscillator: startup, frequency lock, amplitude control."""

import numpy as np
import pytest

from repro.analysis import fft_peak_frequency, zero_crossing_frequency
from repro.circuits import VariableGainAmplifier
from repro.errors import CircuitError, OscillationError


class TestLoopGain:
    def test_displacement_to_voltage_positive(self, make_loop):
        loop = make_loop()
        assert loop.displacement_to_voltage > 0.0

    def test_auto_gain_reaches_target(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs, startup_factor=3.0)
        magnitude = abs(loop.loop_gain_at_resonance(fs))
        assert magnitude >= 3.0
        # not more than one VGA step above target
        assert magnitude <= 3.0 * 10 ** (loop.vga.step_db / 20.0)

    def test_heavier_damping_needs_more_gain(self, make_loop):
        fs = None
        gains = []
        for q in (6.0, 3.0, 1.5):
            loop = make_loop(quality_factor=q)
            fs = 1.0 / loop.resonator.timestep
            gains.append(loop.required_vga_gain(fs))
        assert gains[0] < gains[1] < gains[2]

    def test_impossible_damping_raises(self, make_loop):
        # Q = 0.1: far beyond the VGA's 40 dB range
        loop = make_loop(quality_factor=0.1)
        fs = 1.0 / loop.resonator.timestep
        with pytest.raises(CircuitError):
            loop.auto_gain(fs)


class TestOscillation:
    def test_startup_and_lock(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        record = loop.run(duration=0.12)
        f_osc = zero_crossing_frequency(record.displacement_signal().settle(0.5))
        f0 = loop.resonator.natural_frequency
        assert f_osc == pytest.approx(f0, rel=0.02)

    def test_amplitude_grows_then_settles(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        record = loop.run(duration=0.12)
        n = len(record.displacement)
        fs = record.sample_rate
        # startup from the 1 pm kick completes within ~2 ms; the first
        # 0.3 ms must still be far below steady state
        early = np.std(record.displacement[: int(0.3e-3 * fs)])
        late = np.std(record.displacement[-n // 10 :])
        assert late > 10.0 * early
        # steady: last two tenths agree
        prev = np.std(record.displacement[-2 * n // 10 : -n // 10])
        assert late == pytest.approx(prev, rel=0.05)

    def test_no_oscillation_below_unity_gain(self, make_loop):
        loop = make_loop()
        loop.vga.set_setting(0)
        # cripple the loop: tiny gain
        loop.limiter.small_signal_gain = 0.01
        record = loop.run(duration=0.05)
        assert record.steady_amplitude() < 1e-10

    def test_drive_respects_buffer_limit(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        record = loop.run(duration=0.06)
        assert np.max(np.abs(record.drive_voltage)) <= (
            loop.buffer.max_output_voltage + 1e-12
        )

    def test_record_arrays_consistent(self, make_loop):
        loop = make_loop()
        record = loop.run(duration=0.02)
        n = len(record.times)
        assert (
            len(record.displacement)
            == len(record.bridge_voltage)
            == len(record.limiter_output)
            == len(record.drive_voltage)
            == n
        )

    def test_bridge_noise_injected_when_enabled(self, make_loop):
        quiet = make_loop(include_noise=False)
        noisy = make_loop(include_noise=True)
        r_quiet = quiet.run(duration=0.01)
        r_noisy = noisy.run(duration=0.01)
        # with the same 1 pm kick, the noisy bridge voltage jitters
        assert r_noisy.bridge_signal().std() > 5.0 * r_quiet.bridge_signal().std()


class TestFrequencyTracking:
    def test_added_mass_lowers_locked_frequency(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        rec1 = loop.run(duration=0.1)
        f1 = fft_peak_frequency(rec1.displacement_signal().settle(0.5))

        # bind 5% more effective mass, rerun
        loop.resonator.set_parameters(
            effective_mass=loop.resonator.effective_mass * 1.05
        )
        loop.reset()
        rec2 = loop.run(duration=0.1)
        f2 = fft_peak_frequency(rec2.displacement_signal().settle(0.5))
        assert f2 < f1
        assert f2 / f1 == pytest.approx(1.0 / np.sqrt(1.05), rel=5e-3)
