"""Loop fixtures live in the root conftest (shared with the
failure-injection suite)."""
