"""Amplitude prediction and VGA adaptation to liquid damping."""

import pytest

from repro.errors import OscillationError
from repro.feedback import adapt_to_damping, predict_amplitude


class TestAmplitudePrediction:
    def test_matches_time_domain(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        predicted = predict_amplitude(loop, fs)
        record = loop.run(duration=0.15)
        assert record.steady_amplitude() == pytest.approx(
            predicted.tip_amplitude, rel=0.05
        )

    def test_effective_gain_below_small_signal(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        predicted = predict_amplitude(loop, fs)
        assert predicted.effective_limiter_gain < loop.limiter.small_signal_gain

    def test_subunity_loop_raises(self, make_loop):
        loop = make_loop(quality_factor=1.2)
        loop.vga.set_setting(0)
        loop.limiter.small_signal_gain = 0.2
        fs = 1.0 / loop.resonator.timestep
        with pytest.raises(OscillationError):
            predict_amplitude(loop, fs)

    def test_higher_loop_gain_larger_amplitude(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs, startup_factor=2.0)
        a_low = predict_amplitude(loop, fs).tip_amplitude
        loop.vga.set_setting(min(loop.vga.setting + 3, loop.vga.steps - 1))
        a_high = predict_amplitude(loop, fs).tip_amplitude
        assert a_high > a_low


class TestAdaptation:
    def test_adapts_across_damping(self, make_loop):
        settings = []
        for q in (6.0, 3.0, 1.5):
            loop = make_loop(quality_factor=q)
            fs = 1.0 / loop.resonator.timestep
            adaptation = adapt_to_damping(loop, fs)
            settings.append(adaptation.vga_setting)
            assert adaptation.loop_gain_magnitude >= 3.0
        assert settings[0] < settings[2]

    def test_report_fields(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        adaptation = adapt_to_damping(loop, fs)
        assert adaptation.quality_factor == pytest.approx(
            loop.resonator.quality_factor
        )
        assert adaptation.vga_gain_db == pytest.approx(loop.vga.gain_db)
        assert adaptation.predicted_tip_amplitude > 0.0
