"""Multi-mode loop: mode competition and selection."""

import numpy as np
import pytest

from repro.actuation import ActuationCoil, LorentzActuator, PermanentMagnet
from repro.analysis import fft_peak_frequency
from repro.circuits import LowPassFilter
from repro.core.presets import resonant_bridge
from repro.errors import OscillationError
from repro.feedback import ResonantFeedbackLoop, displacement_to_stress_gain
from repro.feedback.multimode import MultiModeLoop
from repro.fluidics import immersed_mode
from repro.materials import get_liquid
from repro.mechanics import ModalResonator, analyze_modes


@pytest.fixture(scope="module")
def air_qs(geometry):
    air = get_liquid("air")
    return (
        immersed_mode(geometry, air, 1).quality_factor,
        immersed_mode(geometry, air, 2).quality_factor,
    )


def make_electrical_loop(geometry, q1):
    modes = analyze_modes(geometry, 2)
    resonator = ModalResonator(
        modes[0].effective_mass,
        modes[0].effective_stiffness,
        q1,
        1.0 / (modes[1].frequency * 40),
    )
    actuator = LorentzActuator(ActuationCoil(geometry=geometry), PermanentMagnet())
    return ResonantFeedbackLoop(
        resonator,
        resonant_bridge(mismatch_sigma=0.0),
        displacement_to_stress_gain(geometry),
        actuator,
        include_bridge_noise=False,
    )


class TestConstruction:
    def test_mismatched_gains_rejected(self, geometry, air_qs):
        loop = make_electrical_loop(geometry, air_qs[0])
        modes = analyze_modes(geometry, 2)
        resonators = [
            ModalResonator(m.effective_mass, m.effective_stiffness, 100.0, 1e-7)
            for m in modes
        ]
        with pytest.raises(OscillationError):
            MultiModeLoop(resonators, [1.0], loop)

    def test_mismatched_timesteps_rejected(self, geometry, air_qs):
        loop = make_electrical_loop(geometry, air_qs[0])
        modes = analyze_modes(geometry, 2)
        resonators = [
            ModalResonator(modes[0].effective_mass, modes[0].effective_stiffness, 100.0, 1e-7),
            ModalResonator(modes[1].effective_mass, modes[1].effective_stiffness, 100.0, 2e-7),
        ]
        with pytest.raises(OscillationError):
            MultiModeLoop(resonators, [1.0, 1.0], loop)


class TestModeCompetition:
    def test_wideband_loop_prefers_mode2(self, geometry, air_qs):
        """With no band shaping the differentiator hands mode 2 more
        gain: the loop wakes up on the wrong mode."""
        loop = make_electrical_loop(geometry, air_qs[0])
        mm = MultiModeLoop.for_geometry(geometry, list(air_qs), loop)
        fs = 1.0 / mm.resonators[0].timestep
        gains = mm.modal_loop_gains(fs)
        assert gains[1] > gains[0] > 1.0

        signal = mm.run(0.015)
        f_peak = fft_peak_frequency(signal.settle(0.5))
        f2 = mm.resonators[1].natural_frequency
        assert f_peak == pytest.approx(f2, rel=0.02)

    def test_lowpass_selects_mode1(self, geometry, air_qs):
        """A 40 kHz low-pass in the chain strips mode 2's gain: the
        same hardware now locks on the fundamental."""
        loop = make_electrical_loop(geometry, air_qs[0])
        loop.highpasses = list(loop.highpasses) + [LowPassFilter(40e3, order=2)]
        mm = MultiModeLoop.for_geometry(geometry, list(air_qs), loop)
        fs = 1.0 / mm.resonators[0].timestep
        gains = mm.modal_loop_gains(fs)
        assert gains[0] > 1.0
        assert gains[1] < gains[0] / 3.0

        signal = mm.run(0.015)
        f_peak = fft_peak_frequency(signal.settle(0.5))
        f1 = mm.resonators[0].natural_frequency
        assert f_peak == pytest.approx(f1, rel=0.02)

    def test_single_mode_reduces_to_plain_loop(self, geometry, air_qs):
        """One mode in the multimode machinery = the ordinary loop."""
        loop = make_electrical_loop(geometry, air_qs[0])
        mm = MultiModeLoop.for_geometry(geometry, [air_qs[0]], loop)
        signal = mm.run(0.01)
        from repro.analysis import zero_crossing_frequency

        f = zero_crossing_frequency(signal.settle(0.5))
        assert f == pytest.approx(
            mm.resonators[0].natural_frequency, rel=0.02
        )
