"""Temperature-effect models."""

import pytest

from repro.environment import (
    bimorph_curvature_per_kelvin,
    bimorph_tip_drift,
    bridge_offset_drift,
    equivalent_surface_stress_drift,
    frequency_drift,
    frequency_temperature_coefficient,
    thermal_error_budget,
    water_at,
)
from repro.fabrication import PostCMOSFlow, fabricate_cantilever
from repro.materials import get_liquid
from repro.units import um


@pytest.fixture(scope="module")
def coated():
    return fabricate_cantilever(
        um(500), um(100), PostCMOSFlow(keep_dielectrics_on_beam=True)
    ).geometry


class TestFrequencyTC:
    def test_silicon_tcf_ballpark(self, geometry):
        tcf = frequency_temperature_coefficient(geometry)
        # literature: ~ -30 ppm/K for silicon resonators
        assert -40e-6 < tcf < -25e-6

    def test_drift_sign_and_scale(self, geometry):
        df = frequency_drift(geometry, 1.0)
        assert df < 0.0
        assert abs(df) < 2.0  # Hz/K on a 27.5 kHz device

    def test_drift_linear(self, geometry):
        assert frequency_drift(geometry, 2.0) == pytest.approx(
            2.0 * frequency_drift(geometry, 1.0)
        )


class TestBimorph:
    def test_bare_silicon_immune(self, geometry):
        assert bimorph_curvature_per_kelvin(geometry.stack) == pytest.approx(
            0.0, abs=1e-12
        )
        assert bimorph_tip_drift(geometry, 10.0) == pytest.approx(0.0, abs=1e-15)

    def test_coated_beam_drifts(self, coated):
        drift = bimorph_tip_drift(coated, 1.0)
        # tens of nm per kelvin: far larger than binding signals
        assert abs(drift) > 10e-9

    def test_coated_drift_dwarfs_binding_signal(self, coated):
        # 1 K on the coated beam vs a 5 mN/m binding event
        from repro.mechanics.surface_stress import tip_deflection

        thermal = abs(bimorph_tip_drift(coated, 1.0))
        binding = abs(tip_deflection(coated, 5e-3))
        assert thermal > 5.0 * binding

    def test_equivalent_stress_units(self, coated):
        eq = equivalent_surface_stress_drift(coated, 0.1)
        # even 0.1 K looks like a mN/m-scale event on a coated beam
        assert abs(eq) > 0.1e-3

    def test_drift_linear_in_temperature(self, coated):
        assert bimorph_tip_drift(coated, 2.0) == pytest.approx(
            2.0 * bimorph_tip_drift(coated, 1.0)
        )


class TestBridgeDrift:
    def test_scale(self):
        # 3.3 V, 2500 ppm/K TCR, 1% mismatch: ~20 uV/K
        drift = bridge_offset_drift(3.3, 2.5e-3, 0.01, 1.0)
        assert drift == pytest.approx(20.6e-6, rel=0.01)

    def test_perfect_matching_immune(self):
        assert bridge_offset_drift(3.3, 2.5e-3, 0.0, 5.0) == 0.0


class TestWaterTemperature:
    def test_viscosity_falls_with_temperature(self):
        cold = water_at(283.15)
        warm = water_at(313.15)
        assert warm.viscosity < cold.viscosity

    def test_room_temperature_matches_database(self):
        w20 = water_at(293.15)
        ref = get_liquid("water")
        assert w20.density == pytest.approx(ref.density, rel=0.01)
        assert w20.viscosity == pytest.approx(ref.viscosity, rel=0.2)

    def test_q_rises_with_temperature(self, geometry):
        from repro.fluidics import quality_factor_in_liquid

        q_cold = quality_factor_in_liquid(geometry, water_at(283.15))
        q_warm = quality_factor_in_liquid(geometry, water_at(313.15))
        assert q_warm > q_cold


class TestBudget:
    def test_budget_consistency(self, geometry):
        budget = thermal_error_budget(geometry, 0.5)
        assert budget.delta_temperature == 0.5
        assert budget.frequency_drift_hz == pytest.approx(
            frequency_drift(geometry, 0.5)
        )
        assert budget.bimorph_tip_drift_m == pytest.approx(0.0, abs=1e-15)
        assert budget.bridge_offset_drift_v > 0.0
