"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_geometry_flags(self):
        args = build_parser().parse_args(
            ["--length", "300", "--width", "60", "info"]
        )
        assert args.length == 300.0
        assert args.width == 60.0

    def test_subcommand_defaults(self):
        args = build_parser().parse_args(["assay"])
        assert args.analyte == "igg"
        assert args.conc_nm == 10.0

    def test_track_backend_flag(self):
        args = build_parser().parse_args(["track", "--backend", "fused"])
        assert args.backend == "fused"
        assert build_parser().parse_args(["track"]).backend == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["track", "--backend", "turbo"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "spring constant" in out
        assert "mode 1" in out
        assert "resonant bridge" in out

    def test_info_custom_geometry(self, capsys):
        assert main(["--length", "300", "--width", "60", "info"]) == 0
        assert "300 x 60" in capsys.readouterr().out

    def test_fabricate_clean(self, capsys):
        assert main(["fabricate"]) == 0
        out = capsys.readouterr().out
        assert "KOH etch time" in out
        assert "clean" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "--liquid", "water"]) == 0
        out = capsys.readouterr().out
        assert "sweep f0" in out

    def test_assay_detects(self, capsys):
        code = main(
            ["assay", "--conc-nm", "50", "--exposure", "900", "--stride", "50"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "step" in captured.err

    def test_track(self, capsys):
        code = main(
            ["track", "--exposure", "900", "--gate", "10", "--stride", "40"]
        )
        assert code == 0
        assert "shift" in capsys.readouterr().err

    def test_track_explicit_backends_agree(self, capsys):
        outputs = {}
        for backend in ("reference", "fused"):
            code = main(
                ["track", "--exposure", "900", "--gate", "10",
                 "--stride", "40", "--backend", backend]
            )
            assert code == 0
            outputs[backend] = capsys.readouterr().out
        # the kernel is bit-exact, so the printed trace is too
        assert outputs["reference"] == outputs["fused"]
