"""Unit conversions and validators."""

import math

import pytest

from repro.constants import AVOGADRO, DALTON
from repro.errors import UnitError
from repro import units


class TestConversionsToSI:
    def test_um(self):
        assert units.um(500.0) == pytest.approx(500e-6)

    def test_nm(self):
        assert units.nm(1.0) == pytest.approx(1e-9)

    def test_mm(self):
        assert units.mm(2.0) == pytest.approx(2e-3)

    def test_mn_per_m(self):
        assert units.mN_per_m(5.0) == pytest.approx(5e-3)

    def test_pg(self):
        assert units.pg(1.0) == pytest.approx(1e-15)

    def test_ng(self):
        assert units.ng(1.0) == pytest.approx(1e-12)

    def test_kda(self):
        assert units.kda(150.0) == pytest.approx(150e3 * DALTON)

    def test_nanomolar(self):
        # 1 nM = 1e-9 mol/L = 1e-9 * NA * 1e3 molecules per m^3
        assert units.nM(1.0) == pytest.approx(1e-9 * AVOGADRO * 1e3)

    def test_molar(self):
        assert units.molar(1.0) == pytest.approx(AVOGADRO * 1e3)

    def test_molar_nanomolar_consistent(self):
        assert units.molar(1e-9) == pytest.approx(units.nM(1.0))


class TestConversionsFromSI:
    def test_round_trip_um(self):
        assert units.to_um(units.um(123.4)) == pytest.approx(123.4)

    def test_round_trip_nm(self):
        assert units.to_nm(units.nm(7.0)) == pytest.approx(7.0)

    def test_round_trip_pg(self):
        assert units.to_pg(units.pg(3.3)) == pytest.approx(3.3)

    def test_round_trip_surface_stress(self):
        assert units.to_mN_per_m(units.mN_per_m(5.5)) == pytest.approx(5.5)

    def test_to_khz(self):
        assert units.to_khz(27500.0) == pytest.approx(27.5)

    def test_to_uv(self):
        assert units.to_uV(3e-6) == pytest.approx(3.0)


class TestValidators:
    def test_require_positive_accepts(self):
        assert units.require_positive("x", 2.5) == 2.5

    def test_require_positive_rejects_zero(self):
        with pytest.raises(UnitError):
            units.require_positive("x", 0.0)

    def test_require_positive_rejects_negative(self):
        with pytest.raises(UnitError):
            units.require_positive("x", -1.0)

    def test_require_positive_rejects_nan(self):
        with pytest.raises(UnitError):
            units.require_positive("x", float("nan"))

    def test_require_positive_rejects_inf(self):
        with pytest.raises(UnitError):
            units.require_positive("x", math.inf)

    def test_require_positive_rejects_bool(self):
        with pytest.raises(UnitError):
            units.require_positive("x", True)

    def test_require_positive_rejects_string(self):
        with pytest.raises(UnitError):
            units.require_positive("x", "5")

    def test_require_nonnegative_accepts_zero(self):
        assert units.require_nonnegative("x", 0.0) == 0.0

    def test_require_nonnegative_rejects_negative(self):
        with pytest.raises(UnitError):
            units.require_nonnegative("x", -1e-30)

    def test_require_fraction_bounds(self):
        assert units.require_fraction("x", 0.0) == 0.0
        assert units.require_fraction("x", 1.0) == 1.0

    def test_require_fraction_rejects_above_one(self):
        with pytest.raises(UnitError):
            units.require_fraction("x", 1.0001)

    def test_require_in_range(self):
        assert units.require_in_range("x", 5.0, 0.0, 10.0) == 5.0
        with pytest.raises(UnitError):
            units.require_in_range("x", 11.0, 0.0, 10.0)

    def test_error_message_contains_name(self):
        with pytest.raises(UnitError, match="thickness"):
            units.require_positive("thickness", -2.0)

    def test_validators_return_float(self):
        assert isinstance(units.require_positive("x", 3), float)
