"""Scheduler policy: pure-function tests for ordering, quotas, dedup holds."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import (
    JobRecord,
    JobSpec,
    JobState,
    SchedulerPolicy,
    eligible_jobs,
    new_job_id,
    select_next,
)


def job(tenant="default", priority=0, submitted_at=1000.0, phase="queued",
        dedup_of=None, job_id=None) -> JobRecord:
    return JobRecord(
        job_id=job_id or new_job_id(),
        spec=JobSpec(
            base={"$spec": "unit-test"}, path="p", values=(1.0,),
            tenant=tenant, priority=priority,
        ),
        state=JobState(phase=phase, total=1, submitted_at=submitted_at),
        dedup_of=dedup_of,
    )


class TestOrdering:
    def test_higher_priority_first_then_fifo(self):
        low_early = job(priority=0, submitted_at=1.0)
        low_late = job(priority=0, submitted_at=2.0)
        high_late = job(priority=5, submitted_at=3.0)
        ranked = eligible_jobs([low_late, high_late, low_early], [],
                               SchedulerPolicy())
        assert [r.job_id for r in ranked] == [
            high_late.job_id, low_early.job_id, low_late.job_id
        ]

    def test_equal_timestamps_break_ties_by_job_id(self):
        a = job(submitted_at=1.0, job_id="job-aaa")
        b = job(submitted_at=1.0, job_id="job-bbb")
        assert select_next([b, a], [], SchedulerPolicy()).job_id == "job-aaa"

    def test_empty_queue_selects_nothing(self):
        assert select_next([], [], SchedulerPolicy()) is None


class TestTenantQuota:
    def test_tenant_at_quota_is_skipped(self):
        policy = SchedulerPolicy(tenant_quota=1)
        running = [job(tenant="noisy", phase="running")]
        noisy = job(tenant="noisy", submitted_at=1.0, priority=9)
        quiet = job(tenant="quiet", submitted_at=2.0)
        assert select_next([noisy, quiet], running,
                           policy).job_id == quiet.job_id

    def test_quota_counts_per_tenant_not_globally(self):
        policy = SchedulerPolicy(tenant_quota=2)
        running = [job(tenant="noisy", phase="running")]
        noisy = job(tenant="noisy")
        assert select_next([noisy], running, policy).job_id == noisy.job_id

    def test_everyone_at_quota_selects_nothing(self):
        policy = SchedulerPolicy(tenant_quota=1)
        running = [job(tenant="a", phase="running")]
        assert select_next([job(tenant="a")], running, policy) is None

    def test_policy_rejects_nonpositive_quota(self):
        with pytest.raises(ServiceError, match="tenant_quota"):
            SchedulerPolicy(tenant_quota=0)


class TestDedupHold:
    def test_follower_waits_for_running_primary(self):
        primary = job(phase="running")
        follower = job(tenant="other", dedup_of=primary.job_id)
        assert select_next([follower], [primary], SchedulerPolicy()) is None

    def test_follower_waits_for_queued_primary(self):
        primary = job(submitted_at=1.0)
        follower = job(tenant="other", submitted_at=2.0,
                       dedup_of=primary.job_id)
        ranked = eligible_jobs([follower, primary], [], SchedulerPolicy())
        assert [r.job_id for r in ranked] == [primary.job_id]

    def test_done_primary_releases_follower(self):
        follower = job(dedup_of="job-primary")
        ranked = eligible_jobs([follower], [], SchedulerPolicy(),
                               phase_of={"job-primary": "done"})
        assert [r.job_id for r in ranked] == [follower.job_id]

    def test_failed_primary_releases_follower_to_run_for_real(self):
        follower = job(dedup_of="job-primary")
        assert select_next([follower], [], SchedulerPolicy(),
                           phase_of={"job-primary": "failed"}) is follower

    def test_unknown_primary_releases_follower(self):
        # a primary purged from the store must not wedge its followers
        follower = job(dedup_of="job-vanished")
        assert select_next([follower], [], SchedulerPolicy()) is follower
