"""HTTP transport hardening: retries, deadlines, backpressure.

Every test runs against a live :class:`ThreadingHTTPServer` (the
``running_service`` helper from the end-to-end suite) and injures the
wire with seeded ``http.request`` faults:

* connection refusals, injected 5xx, and truncated bodies are absorbed
  by the client's :class:`RetryPolicy` and counted in the transport
  counters — the caller never sees them;
* retry exhaustion surfaces one :class:`ServiceError`, counts one
  error, and feeds the ``transport:client`` breaker;
* a request stamped with an already-expired ``X-Repro-Deadline`` is
  shed by the server (503 + ``X-Repro-Shed: deadline``) and the client
  refuses to retry it — while ``/healthz`` stays exempt;
* a server at ``max_inflight`` sheds with ``Retry-After`` and the
  client rides the backpressure out.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.resilience import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    get_breaker,
    inject_faults,
    reset_breakers,
)
from repro.errors import ServiceError
from repro.service import ServiceClient, health_snapshot
from repro.service.transport import reset_transport, transport_counters

from .test_service_end_to_end import make_spec, running_service

FAST_RETRY = RetryPolicy(retries=3, base_delay=0.001, max_delay=0.005,
                         jitter=0.0)


@pytest.fixture(autouse=True)
def clean_transport():
    """Process-global counters and breakers must not leak across tests."""
    reset_transport()
    reset_breakers()
    yield
    reset_transport()
    reset_breakers()


def fast_client(box) -> ServiceClient:
    return ServiceClient(box.client.url, timeout=30, retry=FAST_RETRY)


class TestRetryMatrix:
    def test_refused_connections_absorbed_over_wait(self, tmp_path):
        """Two injected refusals mid-poll; ``wait`` never notices."""
        with running_service(tmp_path) as box:
            client = fast_client(box)
            record = client.submit(make_spec())
            with inject_faults(
                FaultPlan.single("http.request", count=2)
            ) as inj:
                final = client.wait(record["job_id"], timeout=120)
            assert inj.fired["http.request"] == 2
            assert final["state"]["phase"] == "done"
        snap = transport_counters().snapshot()
        assert snap["retries"] >= 2
        assert snap["errors"] == 0

    def test_injected_5xx_absorbed(self, tmp_path):
        with running_service(tmp_path) as box:
            client = fast_client(box)
            with inject_faults(
                FaultPlan.single("http.request", kind="device", count=2)
            ) as inj:
                health = client.health()
            assert inj.fired["http.request"] == 2
            assert health["ok"]
        assert transport_counters().snapshot()["retries"] >= 2

    def test_truncated_body_reissued(self, tmp_path):
        """A mid-body disconnect fails JSON decode and retries clean."""
        with running_service(tmp_path) as box:
            client = fast_client(box)
            record = client.submit(make_spec())
            with inject_faults(
                FaultPlan.single("http.request", kind="corrupt")
            ) as inj:
                status = client.status(record["job_id"])
            assert inj.fired["http.request"] == 1
            assert status["job_id"] == record["job_id"]
        assert transport_counters().snapshot()["retries"] >= 1

    def test_hang_slows_but_succeeds(self, tmp_path):
        with running_service(tmp_path) as box:
            client = fast_client(box)
            with inject_faults(
                FaultPlan.single("http.request", kind="hang", payload=0.05)
            ) as inj:
                assert client.health()["ok"]
            assert inj.fired["http.request"] == 1
        # a hang is not a retry: the slow answer still counted as success
        assert transport_counters().snapshot()["errors"] == 0

    def test_exhaustion_surfaces_one_error_and_feeds_breaker(self, tmp_path):
        with running_service(tmp_path) as box:
            client = ServiceClient(
                box.client.url, timeout=30,
                retry=RetryPolicy(retries=1, base_delay=0.001, jitter=0.0),
            )
            with inject_faults(
                FaultPlan.single("http.request", count=10)
            ):
                with pytest.raises(ServiceError, match="injected refusal"):
                    client.health()
            snap = transport_counters().snapshot()
            assert snap["errors"] == 1
            assert get_breaker("transport:client").consecutive == 1
            # the next clean request closes the breaker again
            assert client.health()["ok"]
            assert get_breaker("transport:client").consecutive == 0


class TestDeadline:
    def test_expired_deadline_is_shed_not_retried(self, tmp_path):
        with running_service(tmp_path) as box:
            late = ServiceClient(box.client.url, timeout=30,
                                 retry=FAST_RETRY, deadline=-1.0)
            with pytest.raises(ServiceError, match="deadline exceeded"):
                late.submit(make_spec())
            snap = transport_counters().snapshot()
            assert snap["deadline_sheds"] >= 1
            assert snap["retries"] == 0          # a missed deadline is final
            # the server counted its side of the shed, and /healthz is
            # exempt from deadline admission — even for the late client
            health = late.health()
            assert health["ok"]
            assert health["service"]["transport"]["deadline_sheds"] >= 1

    def test_future_deadline_passes_through(self, tmp_path):
        with running_service(tmp_path) as box:
            client = ServiceClient(box.client.url, timeout=30,
                                   retry=FAST_RETRY, deadline=30.0)
            record = client.submit(make_spec())
            final = client.wait(record["job_id"], timeout=120)
            assert final["state"]["phase"] == "done"
            assert transport_counters().snapshot()["deadline_sheds"] == 0


class TestBackpressure:
    def test_full_server_sheds_then_recovers(self, tmp_path):
        with running_service(tmp_path, max_inflight=1,
                             shed_retry_after=0.02) as box:
            # occupy the only slot directly, release it shortly after
            assert box.service.begin_request()
            release = threading.Timer(0.15, box.service.end_request)
            release.start()
            try:
                client = ServiceClient(
                    box.client.url, timeout=30,
                    retry=RetryPolicy(retries=8, base_delay=0.01,
                                      max_delay=0.05, jitter=0.0),
                )
                record = client.submit(make_spec())
            finally:
                release.join()
            assert record["state"]["phase"] == "queued"
            snap = transport_counters().snapshot()
            assert snap["backpressure_rejections"] >= 1
            assert snap["retries"] >= 1
            assert snap["errors"] == 0
            inbound = client.health()["service"]["transport"]
            assert inbound["backpressure_rejections"] >= 1
            assert inbound["max_inflight"] == 1

    def test_healthz_exempt_from_admission(self, tmp_path):
        with running_service(tmp_path, max_inflight=1) as box:
            assert box.service.begin_request()     # saturate the server
            try:
                client = ServiceClient(
                    box.client.url, timeout=30,
                    retry=RetryPolicy(retries=0))
                assert client.health()["ok"]       # no slot needed
            finally:
                box.service.end_request()


class TestHealthSections:
    def test_transport_vitals_on_both_sides(self, tmp_path):
        with running_service(tmp_path) as box:
            client = fast_client(box)
            client.submit(make_spec())
            health = client.health()
        keys = ("requests", "retries", "errors", "deadline_sheds",
                "backpressure_rejections")
        outbound = health["transport"]
        assert all(isinstance(outbound[k], int) for k in keys)
        assert isinstance(outbound["breakers"], dict)
        inbound = health["service"]["transport"]
        assert all(isinstance(inbound[k], int) for k in keys)
        assert inbound["requests"] >= 1            # the submit (healthz is
        #                                            exempt, never counted)
        assert 0 <= inbound["inflight"] <= inbound["max_inflight"]
        assert inbound["peak_inflight"] >= 1
        # the local snapshot carries the same outbound counters
        local = health_snapshot()["transport"]
        assert local["requests"] == transport_counters().snapshot()["requests"]
