"""Job model: validation, round-trips, and the idempotency contract."""

from __future__ import annotations

import pytest

from repro.errors import JobError
from repro.service import (
    JOB_TERMINAL_PHASES,
    JobRecord,
    JobSpec,
    JobState,
    device_spec_from_dict,
    new_job_id,
)


def make_spec(**overrides) -> JobSpec:
    kwargs = dict(
        base={"$spec": "unit-test", "knob": 1, "nested": {"a": [1, 2]}},
        path="cantilever.length_um",
        values=(100.0, 200.0),
        duration=0.01,
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


class TestJobSpec:
    def test_round_trips_through_json(self):
        spec = make_spec(tenant="alice", priority=3, retries=2, timeout=5.0)
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_values_normalize_to_float_tuple(self):
        spec = make_spec(values=[100, 200])
        assert spec.values == (100.0, 200.0)
        assert isinstance(spec.values, tuple)

    def test_base_is_immutable(self):
        spec = make_spec()
        with pytest.raises(TypeError):
            spec.base["knob"] = 2
        with pytest.raises(TypeError):
            spec.base["nested"].update({"b": 1})

    @pytest.mark.parametrize("overrides, path_fragment", [
        (dict(base={"no": "kind"}), "base"),
        (dict(path=""), "path"),
        (dict(values=()), "values"),
        (dict(values=("abc",)), "values"),
        (dict(values=(float("nan"),)), "values"),
        (dict(duration=0.0), "duration"),
        (dict(duration=float("inf")), "duration"),
        (dict(tenant="  "), "tenant"),
        (dict(priority="high"), "priority"),
        (dict(backend="quantum"), "backend"),
        (dict(workers=-1), "workers"),
        (dict(retries=-2), "retries"),
        (dict(timeout=0.0), "timeout"),
    ])
    def test_validation_names_the_field(self, overrides, path_fragment):
        with pytest.raises(JobError) as excinfo:
            make_spec(**overrides)
        assert path_fragment in str(excinfo.value)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(JobError, match="deadline"):
            JobSpec.from_dict({**make_spec().to_dict(), "deadline": 5})

    def test_from_json_rejects_garbage(self):
        with pytest.raises(JobError, match="invalid JSON"):
            JobSpec.from_json("{not json")


class TestWorkHash:
    """work_hash keys the *computation*, not the requester or the executor."""

    def test_ignores_tenant_priority_and_executor_knobs(self):
        reference = make_spec().work_hash()
        for overrides in (
            dict(tenant="someone-else"),
            dict(priority=9),
            dict(backend="serial"),
            dict(workers=4),
            dict(retries=3),
            dict(timeout=60.0),
        ):
            assert make_spec(**overrides).work_hash() == reference

    @pytest.mark.parametrize("overrides", [
        dict(values=(100.0, 201.0)),
        dict(path="cantilever.width_um"),
        dict(duration=0.02),
        dict(base={"$spec": "unit-test", "knob": 2}),
    ])
    def test_changes_with_the_work(self, overrides):
        assert make_spec(**overrides).work_hash() != make_spec().work_hash()

    def test_stable_across_processes_shape(self):
        # dict key order must not matter (JSON from a client is unordered)
        a = make_spec(base={"$spec": "k", "x": 1, "y": 2})
        b = make_spec(base={"$spec": "k", "y": 2, "x": 1})
        assert a.work_hash() == b.work_hash()


class TestJobState:
    def test_defaults_and_terminal(self):
        state = JobState()
        assert state.phase == "queued"
        assert not state.terminal
        for phase in JOB_TERMINAL_PHASES:
            assert JobState(phase=phase).terminal

    def test_advanced_returns_new_snapshot(self):
        state = JobState(total=4)
        later = state.advanced(phase="running", completed=2)
        assert (later.phase, later.completed) == ("running", 2)
        assert (state.phase, state.completed) == ("queued", 0)

    def test_rejects_unknown_phase_and_negative_counters(self):
        with pytest.raises(JobError, match="phase"):
            JobState(phase="paused")
        with pytest.raises(JobError, match="completed"):
            JobState(completed=-1)


class TestJobRecord:
    def test_work_hash_autofilled_from_spec(self):
        spec = make_spec()
        record = JobRecord(job_id=new_job_id(), spec=spec)
        assert record.work_hash == spec.work_hash()

    def test_round_trips_through_json(self):
        record = JobRecord(
            job_id=new_job_id(),
            spec=make_spec(tenant="bob"),
            state=JobState(phase="done", total=2, completed=2,
                           submitted_at=1.5, finished_at=2.5),
            dedup_of="job-000000000000",
            result_key="abc123",
            resilience={"fallbacks": 0, "breakers": {}},
        )
        assert JobRecord.from_json(record.to_json()) == record

    def test_advanced_touches_only_state(self):
        record = JobRecord(job_id=new_job_id(), spec=make_spec())
        later = record.advanced(phase="running", started_at=1.0)
        assert later.state.phase == "running"
        assert later.spec == record.spec
        assert later.work_hash == record.work_hash
        assert record.state.phase == "queued"


class TestDeviceSpecFromDict:
    def test_rebuilds_reference_sensor(self):
        from repro.config import REFERENCE_RESONANT_SENSOR

        data = REFERENCE_RESONANT_SENSOR.to_dict()
        assert device_spec_from_dict(data) == REFERENCE_RESONANT_SENSOR

    def test_rejects_missing_and_unknown_kinds(self):
        with pytest.raises(JobError, match=r"\$spec"):
            device_spec_from_dict({"no": "kind"})
        with pytest.raises(JobError, match="unknown device spec kind"):
            device_spec_from_dict({"$spec": "not-a-device"})


def test_new_job_ids_are_unique_and_prefixed():
    ids = {new_job_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(i.startswith("job-") for i in ids)
