"""End-to-end service tests: real HTTP, real store, real pump.

Each test boots an actual :class:`ThreadingHTTPServer` on an ephemeral
port and talks to it through the urllib :class:`ServiceClient` — the
same wire path ``repro submit`` uses.  The acceptance criteria from the
service PR live here:

* a sweep submitted over HTTP persists, executes, and serves results
  that match a direct in-process run;
* a server killed mid-flight resumes/reports jobs from the SQLite
  store on restart (orphaned ``running`` rows re-queue and finish);
* a second tenant submitting the identical grid performs **zero**
  recomputes — every point is a result-cache hit and the cache's
  store counter does not move.
"""

from __future__ import annotations

import contextlib
from types import SimpleNamespace

import pytest

from repro.analysis import LoopSweepTask, override_grid
from repro.config import REFERENCE_RESONANT_SENSOR
from repro.engine import ResultCache
from repro.errors import ServiceError
from repro.service import (
    JobSpec,
    ReproService,
    SchedulerPolicy,
    ServiceClient,
    open_job_store,
    serve,
)

DURATION = 0.004
VALUES = (150.0, 200.0, 250.0)


def make_spec(tenant="alice", values=VALUES, **overrides) -> JobSpec:
    kwargs = dict(
        base=REFERENCE_RESONANT_SENSOR.to_dict(),
        path="cantilever.length_um",
        values=values,
        duration=DURATION,
        tenant=tenant,
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


@contextlib.contextmanager
def running_service(tmp_path, cache=None, **service_kwargs):
    """A live server on an ephemeral port + its client and internals."""
    store = open_job_store(tmp_path / "jobs.sqlite")
    if cache is None:
        cache = ResultCache(str(tmp_path / "cache"))
    service = ReproService(
        store, cache, SchedulerPolicy(tenant_quota=2),
        pump_workers=1, poll_interval=0.02, **service_kwargs,
    )
    server = serve("127.0.0.1", 0, service, background=True)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=30)
    try:
        yield SimpleNamespace(
            client=client, service=service, store=store, cache=cache,
        )
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


class TestSubmitToResults:
    def test_http_submit_persists_executes_and_serves_results(self, tmp_path):
        with running_service(tmp_path) as box:
            record = box.client.submit(make_spec())
            job_id = record["job_id"]
            assert record["state"]["phase"] == "queued"
            # durable before acknowledged: the row is in SQLite already
            assert box.store.get(job_id) is not None

            final = box.client.wait(job_id, timeout=120)
            assert final["state"]["phase"] == "done"
            assert final["progress"]["completed"] == len(VALUES)
            assert final["progress"]["failed"] == 0
            assert len(final["outcomes"]) == len(VALUES)
            assert all(o["ok"] for o in final["outcomes"])
            assert final["resilience"] is not None  # snapshot at completion

            table = box.client.results(job_id)
            assert table["parameters"] == list(VALUES)

            # the served numbers must equal a direct in-process run
            grid = override_grid(
                REFERENCE_RESONANT_SENSOR, "cantilever.length_um",
                list(VALUES),
            )
            task = LoopSweepTask(duration=DURATION)
            expected = [task(point) for point in grid]
            for name, column in table["columns"].items():
                assert column == pytest.approx(
                    [row[name] for row in expected], rel=0, abs=0
                )

    def test_results_refused_until_done(self, tmp_path):
        with running_service(tmp_path) as box:
            box.service.pump.stop()  # freeze execution: job stays queued
            record = box.client.submit(make_spec())
            with pytest.raises(ServiceError, match="no results yet"):
                box.client.results(record["job_id"])

    def test_ndjson_stream_one_line_per_point(self, tmp_path):
        with running_service(tmp_path) as box:
            record = box.client.submit(make_spec())
            box.client.wait(record["job_id"], timeout=120)
            rows = box.client.results_ndjson(record["job_id"])
            assert len(rows) == len(VALUES)
            assert [r["cantilever.length_um"] for r in rows] == list(VALUES)
            assert all(r["ok"] for r in rows)

    def test_invalid_spec_is_a_400_job_error(self, tmp_path):
        from repro.errors import JobError

        with running_service(tmp_path) as box:
            with pytest.raises(JobError, match="values"):
                box.client._request("POST", "/v1/jobs", {
                    "base": {"$spec": "resonant_sensor"},
                    "path": "cantilever.length_um", "values": [],
                })

    def test_unknown_job_is_a_404(self, tmp_path):
        with running_service(tmp_path) as box:
            with pytest.raises(ServiceError, match="404"):
                box.client.status("job-missing")

    def test_healthz_reports_ok_and_service_vitals(self, tmp_path):
        with running_service(tmp_path) as box:
            health = box.client.health()
            assert health["ok"] is True
            assert health["service"]["pump_alive"] is True
            assert health["service"]["tenant_quota"] == 2
            assert "cache" in health["service"]


class TestRestartResume:
    def test_new_server_on_same_store_reports_finished_jobs(self, tmp_path):
        with running_service(tmp_path) as first:
            record = first.client.submit(make_spec())
            job_id = record["job_id"]
            first.client.wait(job_id, timeout=120)

        # a brand-new server process (fresh store/cache handles, same
        # files) must see and serve the finished job
        with running_service(tmp_path) as second:
            status = second.client.status(job_id)
            assert status["state"]["phase"] == "done"
            table = second.client.results(job_id)
            assert table["parameters"] == list(VALUES)

    def test_orphaned_running_job_requeues_and_completes(self, tmp_path):
        store = open_job_store(tmp_path / "jobs.sqlite")
        from repro.service import JobRecord, JobState, new_job_id

        spec = make_spec(values=(170.0, 210.0))
        orphan = JobRecord(
            job_id=new_job_id(), spec=spec,
            state=JobState(phase="queued", total=2, submitted_at=1.0),
        )
        store.put(orphan)
        claimed = store.claim(orphan.job_id)  # simulate a crash mid-run
        assert claimed.state.phase == "running"
        store.close()

        with running_service(tmp_path) as box:
            final = box.client.wait(orphan.job_id, timeout=120)
            assert final["state"]["phase"] == "done"
            assert final["progress"]["completed"] == 2
            table = box.client.results(orphan.job_id)
            assert table["parameters"] == [170.0, 210.0]


class TestCrossTenantDedup:
    def test_identical_grid_from_second_tenant_recomputes_nothing(
        self, tmp_path
    ):
        with running_service(tmp_path) as box:
            primary = box.client.submit(make_spec(tenant="alice"))
            box.client.wait(primary["job_id"], timeout=120)

            stores_before = box.cache.cache_info().stores
            twin = box.client.submit(make_spec(tenant="bob"))
            assert twin["dedup_of"] == primary["job_id"]

            final = box.client.wait(twin["job_id"], timeout=120)
            assert final["state"]["phase"] == "done"
            # zero recomputes: every point a cache hit, store counter flat
            assert (final["progress"]["cache_hits"]
                    == final["progress"]["total"])
            assert all(o["cached"] for o in final["outcomes"])
            assert box.cache.cache_info().stores == stores_before

            # both tenants read the same table
            assert (box.client.results(twin["job_id"])
                    == box.client.results(primary["job_id"]))

    def test_different_grid_is_not_deduplicated(self, tmp_path):
        with running_service(tmp_path) as box:
            first = box.client.submit(make_spec(tenant="alice"))
            other = box.client.submit(
                make_spec(tenant="bob", values=(151.0, 201.0, 251.0))
            )
            assert other["dedup_of"] is None
            box.client.wait(first["job_id"], timeout=120)
            box.client.wait(other["job_id"], timeout=120)


class TestCancellation:
    def test_queued_job_cancels_before_running(self, tmp_path):
        with running_service(tmp_path) as box:
            box.service.pump.stop()  # nothing will claim the job
            record = box.client.submit(make_spec())
            cancelled = box.client.cancel(record["job_id"])
            assert cancelled["state"]["phase"] == "cancelled"
            status = box.client.status(record["job_id"])
            assert status["state"]["phase"] == "cancelled"


class TestFabricOverHTTP:
    """The fabric PR's wire path: remote worker nodes over real HTTP."""

    def fabric_spec(self, values=VALUES, **overrides):
        return make_spec(values=values, fabric=True, chunk_size=2,
                         **overrides)

    def test_remote_worker_executes_a_fabric_job(self, tmp_path):
        from repro.engine import HTTPRemoteStore, TieredCache
        from repro.engine.fabric import FabricWorker
        from repro.service import RemoteFabricStore

        cache = TieredCache(str(tmp_path / "server-cache"))
        with running_service(tmp_path, cache=cache) as box:
            values = tuple(float(v) for v in range(160, 208, 4))  # 12 pts
            record = box.client.submit(self.fabric_spec(values=values))
            job_id = record["job_id"]

            # a worker node on the far side of HTTP: leases as JSON,
            # ships results through the cache's remote tier
            worker_cache = TieredCache(
                str(tmp_path / "worker-cache"),
                remote=HTTPRemoteStore(box.client.url),
            )
            worker = FabricWorker(
                RemoteFabricStore(box.client), worker_cache,
                job_id=job_id, lease_seconds=20.0,
            )
            stats = worker.run(idle_exit=None)
            assert stats.chunks_done == 6
            assert stats.points_computed == len(values)
            assert worker_cache.cache_info().tier("remote").stores \
                == len(values)

            # the pump's fabric tick finalizes the job server-side
            final = box.client.wait(job_id, timeout=60)
            assert final["state"]["phase"] == "done"
            table = box.client.results(job_id)

            grid = override_grid(
                REFERENCE_RESONANT_SENSOR, "cantilever.length_um",
                list(values),
            )
            task = LoopSweepTask(duration=DURATION)
            expected = [task(point) for point in grid]
            for name, column in table["columns"].items():
                assert column == pytest.approx(
                    [row[name] for row in expected], rel=0, abs=0
                )

            # chunk telemetry is served too
            chunks = box.client.fabric_chunks(job_id)
            assert chunks["counts"] == {"done": 6}
            # and the health payload exposes per-tier cache counters
            tiers = box.client.health()["service"]["cache"]["tiers"]
            assert {t["name"] for t in tiers} \
                == {"memory", "disk", "remote"}

    def test_cache_blob_endpoints_validate_payloads(self, tmp_path):
        from repro.engine import TieredCache

        cache = TieredCache(str(tmp_path / "server-cache"))
        with running_service(tmp_path, cache=cache) as box:
            cache.put("somekey", {"v": 7})
            raw = box.client._request  # noqa: F841 - JSON helper unusable here

            import urllib.request

            # GET round-trips the exact checksummed payload
            with urllib.request.urlopen(
                    f"{box.client.url}/v1/cache/somekey") as response:
                blob = response.read()
            assert blob == cache.export_entry("somekey")

            # PUT of a valid payload under its own key is accepted
            request = urllib.request.Request(
                f"{box.client.url}/v1/cache/somekey", data=blob,
                method="PUT",
                headers={"Content-Type": "application/octet-stream"},
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 200

            # a tampered payload is a 400, never a cache entry
            bad = blob[:-5] + b"XXXXX"
            request = urllib.request.Request(
                f"{box.client.url}/v1/cache/otherkey", data=bad,
                method="PUT",
                headers={"Content-Type": "application/octet-stream"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request)
            assert err.value.code == 400
            assert cache.get("otherkey") is cache.MISS

            # unknown key is a 404
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"{box.client.url}/v1/cache/doesnotexist")
            assert err.value.code == 404

    def test_fabric_jobs_are_skipped_by_the_pump_executor(self, tmp_path):
        from repro.engine import TieredCache

        cache = TieredCache(str(tmp_path / "server-cache"))
        with running_service(tmp_path, cache=cache) as box:
            record = box.client.submit(self.fabric_spec())
            job_id = record["job_id"]
            # give the pump a few polls: it must claim (queued->running)
            # but never execute the grid itself
            import time

            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                payload = box.client.status(job_id)
                assert payload["state"]["phase"] in ("queued", "running")
                if payload["state"]["phase"] == "running":
                    break
                time.sleep(0.05)
            assert box.client.fabric_chunks(job_id)["counts"] \
                == {"queued": 2}
