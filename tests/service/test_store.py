"""Durable store: CRUD, atomic claims, persistence, schema migrations."""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import ServiceError
from repro.service import (
    SCHEMA_VERSION,
    JobRecord,
    JobSpec,
    JobState,
    PointOutcome,
    SQLiteJobStore,
    new_job_id,
    open_job_store,
)
from repro.service.store import MIGRATIONS


def make_record(tenant="default", priority=0, values=(1.0, 2.0),
                submitted_at=1000.0, **record_kwargs) -> JobRecord:
    spec = JobSpec(
        base={"$spec": "unit-test", "knob": len(values)},
        path="cantilever.length_um",
        values=values, duration=0.01, tenant=tenant, priority=priority,
    )
    return JobRecord(
        job_id=new_job_id(), spec=spec,
        state=JobState(total=len(values), submitted_at=submitted_at),
        **record_kwargs,
    )


@pytest.fixture
def store(tmp_path):
    return SQLiteJobStore(tmp_path / "jobs.sqlite")


class TestCrud:
    def test_put_get_round_trip(self, store):
        record = make_record(tenant="alice", priority=2,
                             resilience={"fallbacks": 1})
        store.put(record)
        assert store.get(record.job_id) == record

    def test_get_unknown_returns_none(self, store):
        assert store.get("job-missing") is None

    def test_duplicate_put_raises(self, store):
        record = make_record()
        store.put(record)
        with pytest.raises(ServiceError, match="already exists"):
            store.put(record)

    def test_update_unknown_raises(self, store):
        with pytest.raises(ServiceError, match="not found"):
            store.update(make_record())

    def test_update_replaces_state(self, store):
        record = make_record()
        store.put(record)
        store.update(record.advanced(phase="running", started_at=5.0))
        reread = store.get(record.job_id)
        assert reread.state.phase == "running"
        assert reread.state.started_at == 5.0

    def test_list_filters_by_tenant_and_phase(self, store):
        a = make_record(tenant="alice", submitted_at=1.0)
        b = make_record(tenant="bob", submitted_at=2.0)
        store.put(a)
        store.put(b)
        store.update(b.advanced(phase="running"))
        assert [r.job_id for r in store.list_jobs()] == [a.job_id, b.job_id]
        assert [r.job_id for r in store.list_jobs(tenant="alice")] == [a.job_id]
        assert [r.job_id for r in store.list_jobs(phase="running")] == [b.job_id]

    def test_find_by_work_hash_oldest_first(self, store):
        a = make_record(values=(7.0,), submitted_at=1.0)
        b = make_record(values=(7.0,), submitted_at=2.0, tenant="bob")
        other = make_record(values=(9.0,))
        for r in (b, a, other):
            store.put(r)
        assert a.work_hash == b.work_hash  # same grid, different tenant
        found = store.find_by_work_hash(a.work_hash)
        assert [r.job_id for r in found] == [a.job_id, b.job_id]

    def test_counts(self, store):
        a, b = make_record(), make_record()
        store.put(a)
        store.put(b)
        store.update(b.advanced(phase="done"))
        assert store.counts() == {"queued": 1, "done": 1}


class TestClaim:
    def test_claim_wins_exactly_once(self, store):
        record = make_record()
        store.put(record)
        claimed = store.claim(record.job_id)
        assert claimed.state.phase == "running"
        assert claimed.state.started_at is not None
        assert store.claim(record.job_id) is None  # second claimer loses

    def test_claim_refuses_non_queued(self, store):
        record = make_record()
        store.put(record)
        store.update(record.advanced(phase="cancelled"))
        assert store.claim(record.job_id) is None


class TestCancel:
    def test_queued_job_cancels_immediately(self, store):
        record = make_record()
        store.put(record)
        cancelled = store.request_cancel(record.job_id)
        assert cancelled.state.phase == "cancelled"
        assert cancelled.state.cancel_requested

    def test_running_job_gets_durable_flag(self, store):
        record = make_record()
        store.put(record)
        store.claim(record.job_id)
        flagged = store.request_cancel(record.job_id)
        assert flagged.state.phase == "running"
        assert flagged.state.cancel_requested

    def test_terminal_job_is_untouched(self, store):
        record = make_record()
        store.put(record)
        store.update(record.advanced(phase="done"))
        assert store.request_cancel(record.job_id).state.phase == "done"

    def test_unknown_job_returns_none(self, store):
        assert store.request_cancel("job-missing") is None


class TestRequeue:
    def test_orphaned_running_jobs_requeue(self, store):
        a, b = make_record(), make_record()
        store.put(a)
        store.put(b)
        store.claim(a.job_id)
        assert store.requeue_running() == 1
        assert store.get(a.job_id).state.phase == "queued"
        assert store.get(a.job_id).state.started_at is None
        assert store.counts() == {"queued": 2}


class TestOutcomes:
    def test_record_and_read_back_in_grid_order(self, store):
        record = make_record(values=(1.0, 2.0, 3.0))
        store.put(record)
        for i in (2, 0, 1):
            store.record_outcome(record.job_id, PointOutcome(
                index=i, ok=(i != 1), error="" if i != 1 else "boom",
                health={"channel": i, "status": "ok" if i != 1 else "failed"},
            ))
        outcomes = store.outcomes(record.job_id)
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert not outcomes[1].ok
        assert outcomes[1].error == "boom"
        assert outcomes[2].health["channel"] == 2

    def test_upsert_replaces_a_point(self, store):
        record = make_record(values=(1.0,))
        store.put(record)
        store.record_outcome(record.job_id,
                             PointOutcome(index=0, ok=False, error="retry me"))
        store.record_outcome(record.job_id,
                             PointOutcome(index=0, ok=True, retries=1))
        (outcome,) = store.outcomes(record.job_id)
        assert outcome.ok
        assert outcome.retries == 1


class TestPersistence:
    def test_reopen_sees_everything(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        first = SQLiteJobStore(path)
        record = make_record(resilience={"degrades": 2})
        first.put(record)
        first.record_outcome(record.job_id, PointOutcome(index=0, ok=True))

        second = SQLiteJobStore(path)
        assert second.get(record.job_id) == record
        assert len(second.outcomes(record.job_id)) == 1
        assert second.schema_version() == SCHEMA_VERSION


class TestMigrations:
    def test_fresh_store_is_at_latest_version(self, store):
        assert store.schema_version() == SCHEMA_VERSION
        assert SCHEMA_VERSION == MIGRATIONS[-1][0]

    def test_v1_store_upgrades_in_place(self, tmp_path):
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE schema_migrations ("
            "version INTEGER PRIMARY KEY, applied_at TEXT NOT NULL)"
        )
        for statement in MIGRATIONS[0][1]:
            conn.execute(statement)
        conn.execute(
            "INSERT INTO schema_migrations VALUES (1, '2025-01-01T00:00:00Z')"
        )
        conn.commit()
        conn.close()

        store = SQLiteJobStore(path)  # opening migrates
        assert store.schema_version() == SCHEMA_VERSION

        with sqlite3.connect(path) as conn:
            versions = [
                row[0] for row in conn.execute(
                    "SELECT version FROM schema_migrations ORDER BY version"
                )
            ]
            columns = {
                row[1] for row in conn.execute("PRAGMA table_info(jobs)")
            }
        assert versions == [version for version, _ in MIGRATIONS]
        assert "resilience_json" in columns  # the v2 column is usable

        record = make_record(resilience={"fallbacks": 0})
        store.put(record)
        assert store.get(record.job_id).resilience == {"fallbacks": 0}

    def test_migration_history_is_append_only_shape(self):
        versions = [version for version, _ in MIGRATIONS]
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)
        assert all(statements for _, statements in MIGRATIONS)


class TestOpenJobStore:
    def test_accepts_path_and_sqlite_url(self, tmp_path):
        by_path = open_job_store(tmp_path / "a.sqlite")
        by_url = open_job_store(f"sqlite:///{tmp_path}/b.sqlite")
        assert isinstance(by_path, SQLiteJobStore)
        assert isinstance(by_url, SQLiteJobStore)
        assert by_url.path == tmp_path / "b.sqlite"

    def test_unknown_scheme_raises_eagerly(self, tmp_path):
        with pytest.raises(ServiceError, match="postgres"):
            open_job_store("postgres://db/jobs")

    def test_memory_store_is_rejected(self):
        with pytest.raises(ServiceError, match="memory"):
            SQLiteJobStore(":memory:")


class TestChunks:
    """Schema v3: the fabric's chunk-lease table."""

    def make_job_with_chunks(self, store, bounds=((0, 4), (4, 8), (8, 12))):
        record = make_record(values=tuple(float(v) for v in range(12)))
        store.put(record)
        assert store.create_chunks(record.job_id, bounds) == len(bounds)
        return record

    def test_create_is_idempotent(self, store):
        record = self.make_job_with_chunks(store)
        # resubmitting the same plan creates nothing new
        assert store.create_chunks(
            record.job_id, ((0, 4), (4, 8), (8, 12))) == 0
        assert store.chunk_counts(record.job_id) == {"queued": 3}

    def test_lease_wins_each_chunk_exactly_once(self, store):
        record = self.make_job_with_chunks(store)
        seen = set()
        for _ in range(3):
            chunk = store.lease_chunk("w1", 30.0, record.job_id)
            assert chunk is not None and chunk.worker_id == "w1"
            seen.add((chunk.start, chunk.stop))
        assert seen == {(0, 4), (4, 8), (8, 12)}
        assert store.lease_chunk("w2", 30.0, record.job_id) is None
        assert store.chunk_counts(record.job_id) == {"leased": 3}

    def test_lease_filters_by_job(self, store):
        a = self.make_job_with_chunks(store, ((0, 2),))
        b = self.make_job_with_chunks(store, ((0, 2),))
        chunk = store.lease_chunk("w1", 30.0, b.job_id)
        assert chunk.job_id == b.job_id
        assert store.lease_chunk("w1", 30.0, b.job_id) is None
        assert store.lease_chunk("w1", 30.0, a.job_id).job_id == a.job_id

    def test_heartbeat_extends_only_for_the_holder(self, store):
        record = self.make_job_with_chunks(store, ((0, 4),))
        chunk = store.lease_chunk("w1", 30.0, record.job_id)
        assert store.heartbeat_chunk(record.job_id, chunk.chunk_id,
                                     "w1", 30.0)
        assert not store.heartbeat_chunk(record.job_id, chunk.chunk_id,
                                         "intruder", 30.0)

    def test_complete_requires_the_lease(self, store):
        record = self.make_job_with_chunks(store, ((0, 4),))
        chunk = store.lease_chunk("w1", 30.0, record.job_id)
        assert not store.complete_chunk(record.job_id, chunk.chunk_id,
                                        "intruder")
        assert store.complete_chunk(record.job_id, chunk.chunk_id, "w1")
        assert store.chunk_counts(record.job_id) == {"done": 1}
        # done chunks are never leased again
        assert store.lease_chunk("w2", 30.0, record.job_id) is None

    def test_fail_requeues_until_attempts_exhausted(self, store):
        record = self.make_job_with_chunks(store, ((0, 4),))
        chunk = store.lease_chunk("w1", 30.0, record.job_id)
        # attempt 1 of 2: back to the queue
        assert store.fail_chunk(record.job_id, chunk.chunk_id, "w1",
                                "boom", max_attempts=2) == "queued"
        chunk = store.lease_chunk("w2", 30.0, record.job_id)
        assert chunk is not None
        # attempt 2 of 2: parked failed
        assert store.fail_chunk(record.job_id, chunk.chunk_id, "w2",
                                "boom again", max_attempts=2) == "failed"
        rows = store.chunks(record.job_id)
        assert rows[0].state == "failed"
        assert rows[0].error == "boom again"
        assert store.lease_chunk("w3", 30.0, record.job_id) is None

    def test_fail_by_non_holder_is_ignored(self, store):
        record = self.make_job_with_chunks(store, ((0, 4),))
        chunk = store.lease_chunk("w1", 30.0, record.job_id)
        assert store.fail_chunk(record.job_id, chunk.chunk_id, "intruder",
                                "nope") is None
        assert store.chunk_counts(record.job_id) == {"leased": 1}

    def test_expired_leases_requeue(self, store):
        record = self.make_job_with_chunks(store, ((0, 4), (4, 8)))
        store.lease_chunk("w1", 0.0, record.job_id)   # expires immediately
        store.lease_chunk("w2", 60.0, record.job_id)  # still live
        assert store.expire_chunk_leases() == 1
        counts = store.chunk_counts(record.job_id)
        assert counts == {"queued": 1, "leased": 1}
        # the requeued chunk is leasable again and keeps its attempt count
        chunk = store.lease_chunk("w3", 30.0, record.job_id)
        assert chunk is not None
        assert chunk.attempts == 2

    def test_chunks_survive_reopen(self, tmp_path):
        store = SQLiteJobStore(tmp_path / "jobs.sqlite")
        record = self.make_job_with_chunks(store, ((0, 4),))
        store.lease_chunk("w1", 60.0, record.job_id)
        store.close()
        reopened = SQLiteJobStore(tmp_path / "jobs.sqlite")
        rows = reopened.chunks(record.job_id)
        assert len(rows) == 1
        assert rows[0].state == "leased"
        assert rows[0].worker_id == "w1"

    def test_v2_store_gains_chunks_table_on_open(self, tmp_path):
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE schema_migrations ("
            "version INTEGER PRIMARY KEY, applied_at TEXT NOT NULL)"
        )
        for version, statements in MIGRATIONS[:2]:
            for statement in statements:
                conn.execute(statement)
            conn.execute(
                "INSERT INTO schema_migrations VALUES "
                f"({version}, '2025-01-01T00:00:00Z')"
            )
        conn.commit()
        conn.close()

        store = SQLiteJobStore(path)  # opening migrates v2 -> v3
        assert store.schema_version() == SCHEMA_VERSION
        record = make_record()
        store.put(record)
        assert store.create_chunks(record.job_id, ((0, 2),)) == 1
        assert store.chunk_counts(record.job_id) == {"queued": 1}


class TestLockRetry:
    """Injected SQLITE_BUSY storms: every write path retries through them."""

    def test_locked_errors_are_absorbed(self, store):
        from repro.engine.resilience import FaultPlan, inject_faults

        record = make_record()
        with inject_faults(FaultPlan.single("store.op", count=2)) as inj:
            store.put(record)
        assert inj.fired["store.op"] == 2
        assert store.get(record.job_id) is not None

    def test_reads_retry_too(self, store):
        from repro.engine.resilience import FaultPlan, inject_faults

        store.put(make_record())
        with inject_faults(FaultPlan.single("store.op", count=3)) as inj:
            assert store.counts() == {"queued": 1}
        assert inj.fired["store.op"] == 3

    def test_exhausted_retries_reraise(self, store):
        from repro.engine.resilience import FaultPlan, inject_faults

        with inject_faults(FaultPlan.single("store.op", count=20)):
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                store.put(make_record())

    def test_lost_cas_race_reselects_a_chunk(self, store):
        from repro.engine.resilience import FaultPlan, inject_faults

        record = make_record(values=tuple(float(v) for v in range(4)))
        store.put(record)
        store.create_chunks(record.job_id, ((0, 2), (2, 4)))
        # the first CAS iteration loses its race; the loop tries again
        with inject_faults(FaultPlan.single("store.claim", count=1)) as inj:
            chunk = store.lease_chunk("w1", 30.0, record.job_id)
        assert inj.fired["store.claim"] == 1
        assert chunk is not None and chunk.worker_id == "w1"
        assert store.chunk_counts(record.job_id) == {"queued": 1, "leased": 1}
