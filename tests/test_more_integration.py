"""Second integration batch: cross-module paths the first batch missed."""

import math

import numpy as np
import pytest

from repro.circuits import ADC, Signal
from repro.circuits.lockin import LockInAmplifier


class TestBurstRingDownPipeline:
    """Open-loop Q measurement: burst drive -> decay -> ring-down fit."""

    def test_q_from_burst_experiment(self, water_resonator):
        from repro.actuation import burst
        from repro.analysis import ring_down_quality_factor

        resonator = water_resonator
        f0 = resonator.natural_frequency
        fs = 1.0 / resonator.timestep

        # drive at resonance for 60 cycles, then watch the decay
        on_time = 60.0 / f0
        total = on_time + 40.0 / f0
        drive_v = burst(f0, 1.0, on_time, total, fs)
        force = 1e-9 * drive_v.samples
        resonator.reset()
        x = resonator.run(force)

        decay_start = int(on_time * fs)
        decay = Signal(x[decay_start:], fs)
        q_est = ring_down_quality_factor(decay, f0)
        assert q_est == pytest.approx(resonator.quality_factor, rel=0.2)
        resonator.reset()

    def test_burst_then_silence_amplitude_drops(self, water_resonator):
        from repro.actuation import burst

        resonator = water_resonator
        f0 = resonator.natural_frequency
        fs = 1.0 / resonator.timestep
        drive = burst(f0, 1.0, 40.0 / f0, 80.0 / f0, fs)
        resonator.reset()
        x = resonator.run(1e-9 * drive.samples)
        n_on = int(40.0 / f0 * fs)
        driven_amp = np.max(np.abs(x[n_on - 200 : n_on]))
        final_amp = np.max(np.abs(x[-200:]))
        assert final_amp < 0.05 * driven_amp
        resonator.reset()


class TestDigitizedAssay:
    """The autonomous chip digitizes its own output: the binding step
    must survive the ADC."""

    def test_step_survives_quantization(self, igg_surface):
        from repro.biochem import AssayProtocol
        from repro.core import StaticCantileverSensor
        from repro.units import nM

        sensor = StaticCantileverSensor(igg_surface)
        sensor.calibrate_offset()
        protocol = AssayProtocol.injection(nM(20), baseline=60, exposure=900, wash=60)
        result = sensor.run_assay(protocol, 10.0, include_noise=False)

        adc = ADC(full_scale=2.5, bits=12)
        codes = adc.codes(Signal(result.output_voltage, 1.0))
        digital_step = (codes[-1] - codes[0]) * adc.lsb
        analog_step = result.output_voltage[-1] - result.output_voltage[0]
        assert digital_step == pytest.approx(analog_step, abs=adc.lsb)
        # and the step spans many LSBs: quantization is not the limit
        assert abs(codes[-1] - codes[0]) >= 8

    def test_coarse_adc_loses_small_steps(self, igg_surface):
        from repro.biochem import AssayProtocol
        from repro.core import StaticCantileverSensor
        from repro.units import nM

        sensor = StaticCantileverSensor(igg_surface)
        sensor.calibrate_offset()
        protocol = AssayProtocol.injection(
            nM(0.05), baseline=60, exposure=600, wash=60
        )
        result = sensor.run_assay(protocol, 10.0, include_noise=False)
        coarse = ADC(full_scale=2.5, bits=4)
        codes = coarse.codes(Signal(result.output_voltage, 1.0))
        # a trace-level signal vanishes on a 4-bit grid (LSB 0.31 V)
        assert codes[-1] == codes[0]


class TestLockInPhase:
    def test_quadrature_reference_reads_sine(self):
        fs, fc = 200e3, 20e3
        s = Signal.from_function(
            lambda t: 0.4 * np.sin(2 * np.pi * fc * t), 0.3, fs
        )
        in_phase = LockInAmplifier(fc, 100.0, phase=0.0)
        quadrature = LockInAmplifier(fc, 100.0, phase=-math.pi / 2.0)
        assert abs(in_phase.process(s).settle(0.5).mean()) < 5e-3
        assert quadrature.process(s).settle(0.5).mean() == pytest.approx(
            0.4, rel=0.02
        )

    def test_iq_magnitude_phase_invariant(self):
        fs, fc = 200e3, 20e3
        for phi in (0.0, 0.7, 2.1):
            s = Signal.from_function(
                lambda t: 0.4 * np.cos(2 * np.pi * fc * t + phi), 0.3, fs
            )
            i = LockInAmplifier(fc, 100.0, phase=0.0).process(s).settle(0.5).mean()
            q = (
                LockInAmplifier(fc, 100.0, phase=math.pi / 2.0)
                .process(s)
                .settle(0.5)
                .mean()
            )
            assert math.hypot(i, q) == pytest.approx(0.4, rel=0.02)


class TestChipScaleConsistency:
    """Numbers that must agree across unrelated code paths."""

    def test_three_ways_to_the_same_q(self, geometry, water):
        from repro.analysis import measure_resonance, ring_down_quality_factor
        from repro.fluidics import immersed_mode
        from repro.mechanics import ModalResonator, analyze_modes

        fl = immersed_mode(geometry, water)
        mode = analyze_modes(geometry, 1)[0]
        resonator = ModalResonator(
            fl.effective_mass,
            mode.effective_stiffness,
            fl.quality_factor,
            1.0 / (fl.frequency * 60),
        )
        # 1) Sader model, 2) swept-sine fit, 3) ring-down fit
        fit = measure_resonance(resonator, span_factor=0.5, points=25)
        resonator.reset(displacement=1e-8)
        decay = Signal(resonator.ring_down(cycles=30), 1.0 / resonator.timestep)
        q_ring = ring_down_quality_factor(decay, fl.frequency)

        assert fit.quality_factor == pytest.approx(fl.quality_factor, rel=0.15)
        assert q_ring == pytest.approx(fl.quality_factor, rel=0.2)

    def test_counter_and_pll_agree_on_loop(self, make_loop):
        from repro.circuits import ReciprocalCounter
        from repro.circuits.pll import PhaseLockedLoop

        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        record = loop.run(0.2)
        waveform = record.bridge_signal().settle(0.25)
        f_recip = ReciprocalCounter(gate_time=0.05).measure_single(waveform)
        amplitude = float(np.sqrt(2.0) * waveform.std())
        pll = PhaseLockedLoop(f_recip * 0.99, 50.0, amplitude=amplitude)
        f_pll = pll.measure(waveform)
        assert f_pll == pytest.approx(f_recip, abs=1.0)
