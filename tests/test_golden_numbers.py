"""Golden-number regression net.

The calibrated headline values of the reference device, pinned with
loose-but-meaningful tolerances.  A failing test here means a model
change moved a number the documentation (EXPERIMENTS.md) quotes — either
fix the regression or update the docs *deliberately*.
"""

import pytest

from repro.fluidics import immersed_mode
from repro.materials import get_liquid
from repro.mechanics import natural_frequency
from repro.mechanics.beam import spring_constant


class TestMechanicsGolden:
    def test_reference_frequency(self, fabricated):
        assert natural_frequency(fabricated.geometry) == pytest.approx(
            27521.0, rel=1e-3
        )

    def test_reference_spring_constant(self, fabricated):
        assert spring_constant(fabricated.geometry) == pytest.approx(
            4.225, rel=1e-3
        )

    def test_water_immersion(self, fabricated, water):
        mode = immersed_mode(fabricated.geometry, water)
        assert mode.frequency == pytest.approx(8919.7, rel=1e-3)
        assert mode.quality_factor == pytest.approx(5.94, rel=0.01)


class TestFabricationGolden:
    def test_koh_time_hours(self, fabricated):
        assert fabricated.process.koh_time / 3600.0 == pytest.approx(
            6.12, rel=0.02
        )

    def test_silicon_thickness(self, fabricated):
        assert fabricated.silicon_thickness == pytest.approx(5e-6, rel=1e-9)


class TestTransductionGolden:
    def test_bridge_sensitivity(self, diffused_bridge):
        # 2.37 mV per MPa at 3.3 V excitation
        assert diffused_bridge.sensitivity() * 1e6 == pytest.approx(
            2.369e-3, rel=0.01
        )

    def test_bridge_powers(self, diffused_bridge, pmos_bridge):
        assert diffused_bridge.power_dissipation() * 1e3 == pytest.approx(
            1.089, rel=0.01
        )
        assert pmos_bridge.power_dissipation() * 1e3 == pytest.approx(
            0.300, rel=0.01
        )

    def test_corner_frequencies(self, diffused_bridge, pmos_bridge):
        assert diffused_bridge.corner_frequency() == pytest.approx(342.0, rel=0.05)
        assert pmos_bridge.corner_frequency() == pytest.approx(2.42e5, rel=0.05)


class TestChainGolden:
    def test_static_chain_dc_gain(self, igg_surface):
        from repro.core import StaticCantileverSensor

        sensor = StaticCantileverSensor(igg_surface)
        dc_gain, noise_rms = sensor.characterize_chain()
        assert dc_gain == pytest.approx(3858.0, rel=0.02)
        assert noise_rms == pytest.approx(1.66e-3, rel=0.3)


class TestLoopGolden:
    def test_water_loop_lock_and_amplitude(self, make_loop):
        from repro.feedback import analyze, predict_amplitude

        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        result = analyze(loop, fs)
        assert result.oscillation_frequency == pytest.approx(8959.0, rel=5e-3)
        prediction = predict_amplitude(loop, fs)
        assert prediction.tip_amplitude == pytest.approx(339.6e-9, rel=0.05)

    def test_vga_requirement_in_water(self, make_loop):
        loop = make_loop()
        fs = 1.0 / loop.resonator.timestep
        loop.auto_gain(fs)
        assert loop.vga.gain_db == pytest.approx(10.7, abs=0.1)


class TestEngineBenchGolden:
    """Headline numbers of the engine-ported benches, pinned.

    The three benches (EXT3 process variation, EXT4 resonance curve,
    ABL1 placement) now run through the batch engine with ``workers=2``;
    these pins prove the parallel/cached port did not move a single
    physics result from the serial originals.
    """

    @pytest.fixture(scope="class")
    def bench_modules(self):
        import sys
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        if str(bench_dir) not in sys.path:
            sys.path.insert(0, str(bench_dir))
        import bench_abl_placement
        import bench_ext_process_variation
        import bench_ext_resonance_curve

        return (
            bench_ext_process_variation,
            bench_ext_resonance_curve,
            bench_abl_placement,
        )

    def test_process_variation_headline(self, bench_modules):
        headline = bench_modules[0].run_bench(workers=2, quiet=True)
        assert headline["f_mean_Hz"] == pytest.approx(27370.3, rel=1e-3)
        assert headline["f_spread_pct"] == pytest.approx(2.930, rel=0.01)
        assert headline["thickness_spread_pct"] == pytest.approx(2.966, rel=0.01)
        assert headline["litho_spread_pct"] == pytest.approx(0.381, rel=0.01)
        assert headline["analytic_pct"] == pytest.approx(3.027, rel=1e-3)

    def test_resonance_curve_headline(self, bench_modules):
        headline = bench_modules[1].run_bench(workers=2, quiet=True)
        assert headline["water_f0_Hz"] == pytest.approx(8919.2, rel=1e-3)
        assert headline["water_Q"] == pytest.approx(5.944, rel=0.01)
        assert headline["air_f0_Hz"] == pytest.approx(27349.2, rel=1e-3)
        assert headline["air_Q"] == pytest.approx(223.4, rel=0.02)

    def test_placement_headline(self, bench_modules):
        headline = bench_modules[2].run_bench(workers=2, quiet=True)
        assert headline["resonant_clamp_kPa"] == pytest.approx(553.32, rel=1e-3)
        assert headline["clamp_to_tip_ratio"] == pytest.approx(164.57, rel=1e-3)
        assert headline["static_signal_kPa"] == pytest.approx(2.808, rel=1e-3)
        assert headline["static_best_rel_snr"] == pytest.approx(8.424, rel=1e-3)


class TestBiochemGolden:
    def test_igg_saturation_mass(self, igg_surface):
        assert igg_surface.saturation_mass * 1e15 == pytest.approx(104.6, rel=0.01)

    def test_mass_responsivity_in_water(self, geometry, water):
        from repro.biochem import FunctionalizedSurface, get_analyte
        from repro.core import ResonantCantileverSensor

        sensor = ResonantCantileverSensor(
            FunctionalizedSurface(get_analyte("igg"), geometry), water
        )
        assert sensor.mass_responsivity() * 1e-15 * 1e3 == pytest.approx(
            -0.8046, rel=0.01
        )
