"""Bridge self-heating of the released beam."""

import numpy as np
import pytest

from repro.environment import (
    WATER_CONVECTION,
    bridge_self_heating,
    dry_temperature_rise,
    thermal_time_constant,
    wet_temperature_profile,
    wet_temperature_rise,
)
from repro.errors import MaterialError
from repro.mechanics import CantileverGeometry
from repro.units import um


class TestDryConduction:
    def test_closed_form_average(self, geometry):
        # P L / 3 kappa A
        kappa_a = 150.0 * 5e-6 * 100e-6
        expected = 1e-3 * 500e-6 / (3.0 * kappa_a)
        assert dry_temperature_rise(geometry, 1e-3, "average") == pytest.approx(
            expected
        )

    def test_tip_is_1p5x_average(self, geometry):
        tip = dry_temperature_rise(geometry, 1e-3, "tip")
        avg = dry_temperature_rise(geometry, 1e-3, "average")
        assert tip / avg == pytest.approx(1.5)

    def test_kelvin_scale_at_milliwatt(self, geometry):
        # the headline: a 1 mW bridge heats the beam by KELVINS dry
        assert dry_temperature_rise(geometry, 1e-3, "average") > 1.0

    def test_linear_in_power(self, geometry):
        assert dry_temperature_rise(geometry, 2e-3) == pytest.approx(
            2.0 * dry_temperature_rise(geometry, 1e-3)
        )

    def test_longer_beam_hotter(self, geometry):
        long = geometry.scaled(length_factor=2.0)
        assert dry_temperature_rise(long, 1e-3) == pytest.approx(
            2.0 * dry_temperature_rise(geometry, 1e-3)
        )

    def test_material_without_conductivity_rejected(self):
        g = CantileverGeometry.uniform(um(500), um(100), um(5), "silicon_nitride")
        with pytest.raises(MaterialError):
            dry_temperature_rise(g, 1e-3)


class TestWetFinCooling:
    def test_clamp_is_cold(self, geometry):
        profile = wet_temperature_profile(geometry, 1e-3)
        assert profile[0] == pytest.approx(0.0, abs=1e-12)

    def test_monotone_toward_tip(self, geometry):
        profile = wet_temperature_profile(geometry, 1e-3)
        assert np.all(np.diff(profile) >= -1e-12)

    def test_liquid_cools_below_dry(self, geometry):
        wet = wet_temperature_rise(geometry, 1e-3, position="average")
        dry = dry_temperature_rise(geometry, 1e-3, "average")
        assert wet < dry

    def test_stronger_convection_cooler(self, geometry):
        weak = wet_temperature_rise(geometry, 1e-3, convection=1000.0)
        strong = wet_temperature_rise(geometry, 1e-3, convection=20000.0)
        assert strong < 0.5 * weak

    def test_no_convection_limit_approaches_dry(self, geometry):
        nearly_dry = wet_temperature_rise(geometry, 1e-3, convection=1e-3)
        dry = dry_temperature_rise(geometry, 1e-3, "average")
        assert nearly_dry == pytest.approx(dry, rel=0.01)


class TestTimeConstant:
    def test_millisecond_scale(self, geometry):
        tau = thermal_time_constant(geometry)
        assert 0.1e-3 < tau < 10e-3

    def test_scales_with_length_squared(self, geometry):
        tau = thermal_time_constant(geometry)
        long = geometry.scaled(length_factor=2.0)
        assert thermal_time_constant(long) == pytest.approx(4.0 * tau, rel=1e-6)


class TestBridgeReport:
    def test_static_bridge_heats_resonant_does_not(self, geometry):
        static = bridge_self_heating(
            geometry, 1.09e-3, duty_cycle=0.25, on_beam_fraction=1.0
        )
        resonant = bridge_self_heating(
            geometry, 0.30e-3, duty_cycle=1.0, on_beam_fraction=0.0
        )
        assert static.wet_rise_avg > 0.5
        assert resonant.wet_rise_avg == 0.0

    def test_duty_cycling_helps(self, geometry):
        full = bridge_self_heating(geometry, 1e-3, duty_cycle=1.0)
        quarter = bridge_self_heating(geometry, 1e-3, duty_cycle=0.25)
        assert quarter.effective_wet_rise == pytest.approx(
            full.effective_wet_rise / 4.0
        )

    def test_report_consistency(self, geometry):
        report = bridge_self_heating(geometry, 1e-3)
        assert report.wet_rise_tip > report.wet_rise_avg
        assert report.dry_rise_avg > report.wet_rise_avg
        assert report.time_constant == pytest.approx(
            thermal_time_constant(geometry)
        )
