"""Dual-oscillator temperature compensation."""

import math

import pytest

from repro.environment import DualOscillatorReadout
from repro.environment.temperature import frequency_temperature_coefficient


@pytest.fixture()
def dual(geometry):
    return DualOscillatorReadout.for_geometry(geometry, 8900.0)


class TestConstruction:
    def test_for_geometry_uses_tcf(self, geometry, dual):
        assert dual.tcf == pytest.approx(
            frequency_temperature_coefficient(geometry)
        )

    def test_reference_detuned(self, dual):
        assert dual.reference_frequency > dual.sensing_frequency


class TestCompensation:
    def test_raw_readout_drifts(self, dual):
        f_cold = dual.raw_sensing_frequency(0.0)
        f_warm = dual.raw_sensing_frequency(5.0)
        assert f_warm != f_cold
        assert abs(f_warm - f_cold) / f_cold == pytest.approx(
            abs(dual.tcf) * 5.0, rel=1e-9
        )

    def test_ratio_cancels_temperature(self, dual):
        ratio = dual.ratio_readout(delta_temperature=5.0)
        # residual limited by the 1e-7/K mismatch, not the 31 ppm/K TCF
        assert abs(ratio - 1.0) < 1e-6

    def test_binding_survives_compensation(self, dual):
        mass_shift = -1e-5
        ratio = dual.ratio_readout(2.0, mass_shift)
        # the 1e-7/K mismatch adds ~2% of this particular signal
        assert ratio - 1.0 == pytest.approx(mass_shift, rel=0.05)

    def test_rejection_ratio_large(self, dual):
        assert dual.rejection_ratio(1.0) > 100.0

    def test_perfect_matching_enormous_rejection(self, geometry):
        dual = DualOscillatorReadout.for_geometry(
            geometry, 8900.0, tcf_mismatch=0.0
        )
        # float rounding leaves ~1e-16 residual; rejection is effectively
        # unbounded
        assert dual.rejection_ratio(1.0) > 1e9

    def test_compensated_error_scales_with_mismatch(self, geometry):
        tight = DualOscillatorReadout.for_geometry(
            geometry, 8900.0, tcf_mismatch=1e-8
        )
        loose = DualOscillatorReadout.for_geometry(
            geometry, 8900.0, tcf_mismatch=1e-6
        )
        assert loose.compensated_thermal_error(1.0) > (
            10.0 * tight.compensated_thermal_error(1.0)
        )

    def test_signal_sized_drift_becomes_negligible(self, dual):
        # 0.1 K raw error vs a 1e-5 binding signal: raw comparable,
        # compensated far below
        raw = dual.raw_thermal_error(0.1)
        compensated = dual.compensated_thermal_error(0.1)
        assert raw > 1e-6  # would mask a 1e-6-level signal
        assert compensated < 1e-7
