"""Property-based tests (hypothesis) on the extension modules."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.biochem import (
    TransportModel,
    competitive_equilibrium,
    get_analyte,
    surface_concentration,
    weakened_analyte,
)
from repro.environment import DualOscillatorReadout, bridge_offset_drift
from repro.environment.temperature import bimorph_tip_drift
from repro.fabrication import KOHEtch
from repro.mechanics import CantileverGeometry
from repro.units import um

concentrations = st.floats(min_value=0.0, max_value=1e22)
coverages = st.floats(min_value=0.0, max_value=1.0)
temperatures = st.floats(min_value=-20.0, max_value=20.0)


class TestTransportProperties:
    @given(concentrations, coverages, st.floats(min_value=1e-6, max_value=1e-3))
    @settings(max_examples=60, deadline=None)
    def test_surface_concentration_bounded(self, c_bulk, theta, delta):
        igg = get_analyte("igg")
        transport = TransportModel(boundary_layer=delta)
        c_s = surface_concentration(igg, transport, c_bulk, theta)
        assert c_s >= 0.0
        # never exceeds bulk plus the fully-desorbing-surface source term
        ceiling = c_bulk + (
            transport.site_density
            * igg.k_off
            * theta
            / transport.mass_transfer_coefficient
        )
        assert c_s <= ceiling * (1.0 + 1e-9) + 1e-30

    @given(concentrations, st.floats(min_value=1e-6, max_value=1e-3))
    @settings(max_examples=60, deadline=None)
    def test_depletion_only_at_zero_coverage(self, c_bulk, delta):
        # with theta = 0 there is no desorption source: C_s <= C_bulk
        igg = get_analyte("igg")
        transport = TransportModel(boundary_layer=delta)
        c_s = surface_concentration(igg, transport, c_bulk, 0.0)
        assert c_s <= c_bulk * (1.0 + 1e-12)


class TestCompetitionProperties:
    @given(concentrations, concentrations)
    @settings(max_examples=60, deadline=None)
    def test_coverages_in_simplex(self, c1, c2):
        igg = get_analyte("igg")
        cross = weakened_analyte(igg, 50.0)
        thetas = competitive_equilibrium([igg, cross], [c1, c2])
        assert np.all(thetas >= 0.0)
        assert float(np.sum(thetas)) <= 1.0 + 1e-12

    @given(concentrations, concentrations)
    @settings(max_examples=60, deadline=None)
    def test_adding_competitor_never_helps_target(self, c_target, c_comp):
        assume(c_target > 0.0)
        igg = get_analyte("igg")
        cross = weakened_analyte(igg, 50.0)
        alone = competitive_equilibrium([igg], [c_target])[0]
        together = competitive_equilibrium([igg, cross], [c_target, c_comp])[0]
        assert together <= alone * (1.0 + 1e-12)

    @given(concentrations)
    @settings(max_examples=40, deadline=None)
    def test_stronger_binder_wins_at_equal_concentration(self, c):
        assume(c > 0.0)
        igg = get_analyte("igg")
        cross = weakened_analyte(igg, 50.0)
        thetas = competitive_equilibrium([igg, cross], [c, c])
        assert thetas[0] >= thetas[1]


class TestThermalProperties:
    @given(temperatures)
    @settings(max_examples=40, deadline=None)
    def test_bare_beam_never_bends_thermally(self, delta_t):
        g = CantileverGeometry.uniform(um(500), um(100), um(5))
        assert bimorph_tip_drift(g, delta_t) == pytest.approx(0.0, abs=1e-15)

    @given(temperatures, st.floats(min_value=0.0, max_value=0.05))
    @settings(max_examples=60, deadline=None)
    def test_bridge_drift_odd_in_temperature(self, delta_t, mismatch):
        plus = bridge_offset_drift(3.3, 2.5e-3, mismatch, delta_t)
        minus = bridge_offset_drift(3.3, 2.5e-3, mismatch, -delta_t)
        assert plus == pytest.approx(-minus)

    @given(
        temperatures,
        st.floats(min_value=-1e-4, max_value=1e-4),
    )
    @settings(max_examples=60, deadline=None)
    def test_ratio_readout_separates_signal_from_temperature(
        self, delta_t, mass_shift
    ):
        g = CantileverGeometry.uniform(um(500), um(100), um(5))
        dual = DualOscillatorReadout.for_geometry(
            g, 8900.0, tcf_mismatch=0.0
        )
        ratio = dual.ratio_readout(delta_t, mass_shift)
        assert ratio - 1.0 == pytest.approx(mass_shift, abs=1e-9)


class TestKOHGeometryProperties:
    @given(
        st.floats(min_value=10e-6, max_value=2e-3),
        st.floats(min_value=100e-6, max_value=700e-6),
    )
    @settings(max_examples=60, deadline=None)
    def test_opening_membrane_round_trip(self, membrane, depth):
        opening = KOHEtch.mask_opening_for_membrane(membrane, depth)
        recovered = KOHEtch.membrane_for_mask_opening(opening, depth)
        assert recovered == pytest.approx(membrane, rel=1e-9)

    @given(
        st.floats(min_value=10e-6, max_value=2e-3),
        st.floats(min_value=100e-6, max_value=700e-6),
    )
    @settings(max_examples=60, deadline=None)
    def test_opening_always_larger_than_membrane(self, membrane, depth):
        opening = KOHEtch.mask_opening_for_membrane(membrane, depth)
        assert opening > membrane


class TestDuffingProperties:
    @given(
        st.floats(min_value=1e-9, max_value=2e-6),
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_backbone_always_hardens(self, amplitude, alpha):
        from repro.mechanics.beam import spring_constant
        from repro.mechanics.duffing import backbone_frequency, cubic_stiffness

        g = CantileverGeometry.uniform(um(500), um(100), um(5))
        k = spring_constant(g)
        k3 = cubic_stiffness(g, alpha)
        assert backbone_frequency(27.5e3, k, k3, amplitude) >= 27.5e3

    @given(st.floats(min_value=1e-9, max_value=1e-6))
    @settings(max_examples=40, deadline=None)
    def test_slope_consistent_with_backbone(self, amplitude):
        from repro.mechanics.beam import spring_constant
        from repro.mechanics.duffing import (
            amplitude_to_frequency_slope,
            backbone_frequency,
            cubic_stiffness,
        )

        g = CantileverGeometry.uniform(um(500), um(100), um(5))
        k = spring_constant(g)
        k3 = cubic_stiffness(g)
        da = amplitude * 1e-4
        fd = (
            backbone_frequency(27.5e3, k, k3, amplitude + da)
            - backbone_frequency(27.5e3, k, k3, amplitude - da)
        ) / (2.0 * da)
        slope = amplitude_to_frequency_slope(27.5e3, k, k3, amplitude)
        assert slope == pytest.approx(fd, rel=1e-4)

    @given(st.floats(min_value=10.0, max_value=10000.0))
    @settings(max_examples=40, deadline=None)
    def test_critical_amplitude_shrinks_with_q(self, q):
        from repro.mechanics.duffing import critical_amplitude

        g = CantileverGeometry.uniform(um(500), um(100), um(5))
        a_c = critical_amplitude(g, q)
        a_c_higher_q = critical_amplitude(g, 2.0 * q)
        assert a_c_higher_q < a_c
        assert a_c > 0.0
