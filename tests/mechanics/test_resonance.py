"""Added-mass frequency shift (Fig. 2 physics)."""

import pytest

from repro.errors import GeometryError
from repro.mechanics import (
    frequency_shift,
    frequency_with_added_mass,
    mass_from_frequency_shift,
    mass_responsivity,
    minimum_detectable_mass,
    natural_frequency,
    resonant_response,
)
from repro.mechanics.modal import effective_mass_fraction
from repro.units import pg


class TestFrequencyShift:
    def test_zero_mass_no_shift(self, geometry):
        assert frequency_shift(geometry, 0.0) == pytest.approx(0.0)

    def test_added_mass_lowers_frequency(self, geometry):
        assert frequency_shift(geometry, pg(100.0)) < 0.0

    def test_first_order_limit(self, geometry):
        # small mass: df = -f0 dm_eff / (2 m_eff)
        dm = pg(1.0)
        f0 = natural_frequency(geometry)
        m_eff = effective_mass_fraction(1) * geometry.mass
        expected = -f0 * (dm * effective_mass_fraction(1)) / (2.0 * m_eff)
        assert frequency_shift(geometry, dm, distribution="uniform") == pytest.approx(
            expected, rel=1e-3
        )

    def test_tip_mass_four_times_uniform(self, geometry):
        dm = pg(1.0)
        tip = frequency_shift(geometry, dm, distribution="tip")
        uniform = frequency_shift(geometry, dm, distribution="uniform")
        assert tip / uniform == pytest.approx(
            1.0 / effective_mass_fraction(1), rel=1e-3
        )

    def test_exact_sqrt_form(self, geometry):
        dm = geometry.mass  # equal to the beam mass, deliberately huge
        f = frequency_with_added_mass(geometry, dm, distribution="tip")
        m_eff = effective_mass_fraction(1) * geometry.mass
        f0 = natural_frequency(geometry)
        assert f == pytest.approx(f0 * (m_eff / (m_eff + dm)) ** 0.5)

    def test_invalid_distribution(self, geometry):
        with pytest.raises(GeometryError):
            frequency_shift(geometry, pg(1.0), distribution="gaussian")


class TestResponsivityAndLOD:
    def test_responsivity_negative(self, geometry):
        assert mass_responsivity(geometry) < 0.0

    def test_responsivity_matches_finite_difference(self, geometry):
        dm = pg(0.01)
        fd = frequency_shift(geometry, dm) / dm
        assert mass_responsivity(geometry) == pytest.approx(fd, rel=1e-3)

    def test_smaller_beam_more_responsive(self, geometry):
        small = geometry.scaled(length_factor=0.5, width_factor=0.5)
        assert abs(mass_responsivity(small)) > abs(mass_responsivity(geometry))

    def test_lod_scales_with_noise(self, geometry):
        lod1 = minimum_detectable_mass(geometry, frequency_noise=1.0)
        lod2 = minimum_detectable_mass(geometry, frequency_noise=2.0)
        assert lod2 == pytest.approx(2.0 * lod1)

    def test_lod_magnitude(self, geometry):
        # 1 Hz noise on the reference beam: sub-ng resolution in vacuum
        lod = minimum_detectable_mass(geometry, frequency_noise=1.0)
        assert 1e-15 < lod < 1e-9


class TestInversion:
    def test_round_trip(self, geometry):
        dm = pg(50.0)
        shift = frequency_shift(geometry, dm)
        recovered = mass_from_frequency_shift(geometry, shift)
        assert recovered == pytest.approx(dm, rel=1e-9)

    def test_round_trip_tip(self, geometry):
        dm = pg(10.0)
        shift = frequency_shift(geometry, dm, distribution="tip")
        recovered = mass_from_frequency_shift(geometry, shift, distribution="tip")
        assert recovered == pytest.approx(dm, rel=1e-9)

    def test_positive_shift_gives_negative_mass(self, geometry):
        assert mass_from_frequency_shift(geometry, +1.0) < 0.0

    def test_unphysical_shift_rejected(self, geometry):
        f0 = natural_frequency(geometry)
        with pytest.raises(GeometryError):
            mass_from_frequency_shift(geometry, -1.1 * f0)


class TestBundle:
    def test_resonant_response_consistency(self, geometry):
        r = resonant_response(geometry, pg(10.0))
        assert r.base_frequency == pytest.approx(natural_frequency(geometry))
        assert r.frequency_shift == pytest.approx(
            r.loaded_frequency - r.base_frequency
        )
        assert r.frequency_shift < 0.0
