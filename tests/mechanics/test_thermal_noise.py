"""Thermomechanical noise: fluctuation-dissipation bookkeeping."""

import math

import numpy as np
import pytest

from repro.constants import BOLTZMANN
from repro.fluidics import immersed_mode
from repro.mechanics.beam import spring_constant
from repro.mechanics.modal import analyze_modes
from repro.mechanics.thermal_noise import (
    displacement_noise_psd,
    langevin_force_psd,
    noise_equivalent_surface_stress,
    rms_thermal_displacement,
    static_displacement_floor,
    thermomechanical_frequency_stability,
)


class TestLangevinForce:
    def test_definition(self):
        m, k, q, temp = 1e-10, 4.0, 50.0, 300.0
        c = math.sqrt(k * m) / q
        assert langevin_force_psd(m, k, q, temp) == pytest.approx(
            4.0 * BOLTZMANN * temp * c
        )

    def test_lower_q_more_force_noise(self):
        hi_q = langevin_force_psd(1e-10, 4.0, 100.0)
        lo_q = langevin_force_psd(1e-10, 4.0, 5.0)
        assert lo_q == pytest.approx(20.0 * hi_q)

    def test_scales_with_temperature(self):
        cold = langevin_force_psd(1e-10, 4.0, 50.0, 150.0)
        warm = langevin_force_psd(1e-10, 4.0, 50.0, 300.0)
        assert warm == pytest.approx(2.0 * cold)


class TestDisplacementNoise:
    def test_peaks_at_resonance(self):
        m, k, q = 1e-10, 4.0, 50.0
        f0 = math.sqrt(k / m) / (2 * math.pi)
        f = np.linspace(0.5 * f0, 1.5 * f0, 2001)
        psd = displacement_noise_psd(f, m, k, q)
        assert abs(f[np.argmax(psd)] - f0) / f0 < 0.01

    def test_low_frequency_plateau(self):
        m, k, q = 1e-10, 4.0, 50.0
        s_f = langevin_force_psd(m, k, q)
        psd = displacement_noise_psd(np.asarray([1.0]), m, k, q)
        assert psd[0] == pytest.approx(s_f / k**2, rel=1e-3)

    def test_equipartition_integral(self):
        # integral of S_x over all f equals kT/k (one-sided)
        m, k, q = 1e-10, 4.0, 10.0
        f0 = math.sqrt(k / m) / (2 * math.pi)
        f = np.linspace(1e-3, 60 * f0, 2_000_001)
        psd = displacement_noise_psd(f, m, k, q)
        variance = np.trapezoid(psd, f)
        assert variance == pytest.approx(BOLTZMANN * 300.0 / k, rel=0.02)


class TestSensorFloors:
    def test_equipartition_rms(self, geometry):
        mode = analyze_modes(geometry, 1)[0]
        x = rms_thermal_displacement(mode.effective_stiffness)
        # tens of pm for a ~4 N/m beam
        assert 1e-12 < x < 1e-10

    def test_static_floor_grows_with_bandwidth(self, geometry):
        mode = analyze_modes(geometry, 1)[0]
        k = spring_constant(geometry)
        narrow = static_displacement_floor(k, mode.effective_mass, 6.0, 10.0)
        wide = static_displacement_floor(k, mode.effective_mass, 6.0, 1000.0)
        assert wide == pytest.approx(10.0 * narrow)

    def test_noise_equivalent_stress_below_signals(self, geometry):
        # the Brownian stress floor must sit far below mN/m signals,
        # otherwise the static biosensor could never work
        ne_stress = noise_equivalent_surface_stress(geometry, 6.0, 100.0)
        assert ne_stress < 0.1e-3  # << 1 mN/m

    def test_floor_worse_in_liquid(self, geometry):
        mode = analyze_modes(geometry, 1)[0]
        k = spring_constant(geometry)
        vac = static_displacement_floor(k, mode.effective_mass, 10000.0, 100.0)
        wet = static_displacement_floor(k, mode.effective_mass, 6.0, 100.0)
        assert wet > 10.0 * vac


class TestOscillatorStability:
    def test_improves_with_amplitude(self, geometry, water):
        fl = immersed_mode(geometry, water)
        small = thermomechanical_frequency_stability(geometry, fl, 10e-9, 1.0)
        large = thermomechanical_frequency_stability(geometry, fl, 300e-9, 1.0)
        assert large.fractional_frequency_noise == pytest.approx(
            small.fractional_frequency_noise / 30.0, rel=1e-6
        )

    def test_improves_with_averaging(self, geometry, water):
        fl = immersed_mode(geometry, water)
        fast = thermomechanical_frequency_stability(geometry, fl, 300e-9, 0.1)
        slow = thermomechanical_frequency_stability(geometry, fl, 300e-9, 10.0)
        assert slow.fractional_frequency_noise == pytest.approx(
            fast.fractional_frequency_noise / 10.0, rel=1e-6
        )

    def test_far_below_counter_limit(self, geometry, water):
        # the gated counter (1 Hz at 1 s) dominates over thermomechanical
        # noise by orders of magnitude: the readout, not physics, limits
        fl = immersed_mode(geometry, water)
        st = thermomechanical_frequency_stability(geometry, fl, 300e-9, 1.0)
        assert st.frequency_noise < 0.1  # Hz, vs 1 Hz counter grid

    def test_consistent_mass_resolution(self, geometry, water):
        fl = immersed_mode(geometry, water)
        st = thermomechanical_frequency_stability(geometry, fl, 300e-9, 1.0)
        assert st.mass_resolution > 0.0
        assert st.frequency_noise == pytest.approx(
            st.fractional_frequency_noise * fl.frequency
        )
