"""Euler-Bernoulli statics against textbook closed forms."""

import numpy as np
import pytest

from repro.mechanics import CantileverGeometry
from repro.mechanics import beam
from repro.units import um


class TestSpringConstant:
    def test_value(self, geometry):
        # k = 3EI/L^3 = E w t^3 / (4 L^3)
        e = 169e9
        expected = e * 100e-6 * (5e-6) ** 3 / (4.0 * (500e-6) ** 3)
        assert beam.spring_constant(geometry) == pytest.approx(expected)

    def test_scaling_with_length(self, geometry):
        double = geometry.scaled(length_factor=2.0)
        assert beam.spring_constant(double) == pytest.approx(
            beam.spring_constant(geometry) / 8.0
        )

    def test_scaling_with_thickness(self, geometry):
        double = geometry.scaled(thickness_factor=2.0)
        assert beam.spring_constant(double) == pytest.approx(
            beam.spring_constant(geometry) * 8.0
        )


class TestDeflections:
    def test_point_force_consistent_with_spring(self, geometry):
        f = 1e-9
        z = beam.tip_deflection_point_force(geometry, f)
        assert z == pytest.approx(f / beam.spring_constant(geometry))

    def test_distributed_vs_point(self, geometry):
        # same total force: distributed gives 3/8 of point-at-tip deflection
        total = 1e-9
        z_point = beam.tip_deflection_point_force(geometry, total)
        z_dist = beam.tip_deflection_distributed_force(
            geometry, total / geometry.length
        )
        assert z_dist == pytest.approx(0.375 * z_point)

    def test_end_moment(self, geometry):
        m = 1e-12
        z = beam.tip_deflection_end_moment(geometry, m)
        assert z == pytest.approx(
            m * geometry.length**2 / (2.0 * geometry.flexural_rigidity)
        )

    def test_profile_matches_tip_value(self, geometry):
        f = 1e-9
        profile = beam.deflection_profile_point_force(
            geometry, f, np.asarray([geometry.length])
        )
        assert profile[0] == pytest.approx(
            beam.tip_deflection_point_force(geometry, f)
        )

    def test_profile_zero_at_clamp(self, geometry):
        profile = beam.deflection_profile_point_force(
            geometry, 1e-9, np.asarray([0.0])
        )
        assert profile[0] == 0.0

    def test_distributed_profile_tip(self, geometry):
        q = 1e-6
        profile = beam.deflection_profile_distributed_force(
            geometry, q, np.asarray([geometry.length])
        )
        assert profile[0] == pytest.approx(
            beam.tip_deflection_distributed_force(geometry, q)
        )

    def test_profile_monotone(self, geometry):
        x = np.linspace(0, geometry.length, 100)
        z = beam.deflection_profile_point_force(geometry, 1e-9, x)
        assert np.all(np.diff(z) >= 0.0)

    def test_out_of_range_position_rejected(self, geometry):
        with pytest.raises(ValueError):
            beam.deflection_profile_point_force(
                geometry, 1e-9, np.asarray([2.0 * geometry.length])
            )


class TestMomentAndStrain:
    def test_moment_max_at_clamp(self, geometry):
        x = np.linspace(0, geometry.length, 50)
        m = beam.bending_moment_point_force(geometry, 1e-9, x)
        assert m[0] == pytest.approx(1e-9 * geometry.length)
        assert m[-1] == pytest.approx(0.0, abs=1e-30)
        assert np.all(np.diff(m) <= 0.0)

    def test_surface_strain_from_moment(self, geometry):
        m = 1e-12
        eps = beam.surface_strain_from_moment(geometry, m)
        c = geometry.thickness / 2.0
        assert float(eps) == pytest.approx(m * c / geometry.flexural_rigidity)

    def test_gravity_sag_negligible(self, geometry):
        # sub-nm: gravity never appears in cantilever-sensor error budgets
        assert beam.static_deflection_under_gravity(geometry) < 1e-9
