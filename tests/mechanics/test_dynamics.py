"""Time-domain modal resonator: exact discretization properties."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError, UnitError
from repro.mechanics import ModalResonator
from repro.mechanics.dynamics import ResonatorState


@pytest.fixture()
def resonator():
    # 10 kHz, Q = 50 reference oscillator
    m = 1e-9
    f0 = 10e3
    k = m * (2 * math.pi * f0) ** 2
    return ModalResonator(
        effective_mass=m, effective_stiffness=k, quality_factor=50.0,
        timestep=1.0 / (f0 * 50),
    )


class TestBasics:
    def test_natural_frequency(self, resonator):
        assert resonator.natural_frequency == pytest.approx(10e3)

    def test_damping_coefficient(self, resonator):
        c = resonator.damping_coefficient
        assert c == pytest.approx(
            math.sqrt(resonator.effective_stiffness * resonator.effective_mass) / 50.0
        )

    def test_damped_frequency_below_natural(self, resonator):
        assert 0.0 < resonator.damped_frequency < resonator.natural_frequency

    def test_overdamped_frequency_zero(self):
        r = ModalResonator(1e-9, 1e-9 * (2 * math.pi * 1e3) ** 2, 0.4, 1e-6)
        assert r.damped_frequency == 0.0

    def test_from_geometry(self, geometry):
        r = ModalResonator.from_geometry(geometry, quality_factor=100.0)
        from repro.mechanics import natural_frequency

        assert r.natural_frequency == pytest.approx(
            natural_frequency(geometry), rel=1e-9
        )

    def test_invalid_parameters(self):
        with pytest.raises(UnitError):
            ModalResonator(-1.0, 1.0, 10.0, 1e-6)

    def test_too_few_steps_per_cycle_rejected(self, geometry):
        with pytest.raises(GeometryError):
            ModalResonator.from_geometry(geometry, 10.0, steps_per_cycle=2)


class TestFreeDecay:
    def test_ring_down_frequency(self, resonator):
        resonator.reset(displacement=1e-9)
        x = resonator.ring_down(cycles=30)
        # count zero crossings to estimate the frequency
        crossings = np.where((x[:-1] < 0) & (x[1:] >= 0))[0]
        periods = np.diff(crossings) * resonator.timestep
        f_est = 1.0 / np.mean(periods)
        assert f_est == pytest.approx(resonator.damped_frequency, rel=1e-3)

    def test_ring_down_q(self, resonator):
        resonator.reset(displacement=1e-9)
        x = resonator.ring_down(cycles=40)
        # amplitude after n cycles: exp(-pi n / Q)
        n_cycles = 40
        expected_ratio = math.exp(-math.pi * n_cycles / 50.0)
        peak_start = np.max(np.abs(x[: len(x) // 20]))
        peak_end = np.max(np.abs(x[-len(x) // 20 :]))
        assert peak_end / peak_start == pytest.approx(expected_ratio, rel=0.15)

    def test_energy_never_grows_unforced(self, resonator):
        resonator.reset(displacement=1e-9)
        m, k = resonator.effective_mass, resonator.effective_stiffness
        x = resonator.state.displacement
        v = resonator.state.velocity
        energy = 0.5 * k * x**2 + 0.5 * m * v**2
        for _ in range(500):
            resonator.step(0.0)
            x, v = resonator.state.displacement, resonator.state.velocity
            new_energy = 0.5 * k * x**2 + 0.5 * m * v**2
            assert new_energy <= energy * (1.0 + 1e-12)
            energy = new_energy


class TestForcedResponse:
    def test_static_force_gives_hooke(self, resonator):
        f = 1e-12
        for _ in range(50000):
            resonator.step(f)
        assert resonator.state.displacement == pytest.approx(
            f / resonator.effective_stiffness, rel=1e-6
        )

    def test_resonant_drive_amplification(self, resonator):
        # steady-state amplitude at resonance = Q * F/k
        f0 = resonator.natural_frequency
        h = resonator.timestep
        n = int(60 * 50 / (f0 * h))  # ~ 3000 cycles >> Q
        t = np.arange(n) * h
        force = 1e-12 * np.sin(2 * math.pi * f0 * t)
        resonator.reset()
        x = resonator.run(force)
        steady = x[-n // 5 :]
        amp = (np.max(steady) - np.min(steady)) / 2.0
        expected = 50.0 * 1e-12 / resonator.effective_stiffness
        assert amp == pytest.approx(expected, rel=0.03)

    def test_transfer_function_peak(self, resonator):
        f = np.linspace(9e3, 11e3, 2001)
        h = np.abs(resonator.transfer_function(f))
        f_peak = f[np.argmax(h)]
        assert f_peak == pytest.approx(resonator.resonance_peak_frequency(), rel=1e-3)

    def test_dc_transfer_is_compliance(self, resonator):
        h0 = resonator.transfer_function(np.asarray([1e-3]))[0]
        assert abs(h0) == pytest.approx(1.0 / resonator.effective_stiffness, rel=1e-6)


class TestParameterUpdates:
    def test_mass_update_changes_frequency(self, resonator):
        f_before = resonator.natural_frequency
        resonator.set_parameters(effective_mass=resonator.effective_mass * 4.0)
        assert resonator.natural_frequency == pytest.approx(f_before / 2.0)

    def test_state_preserved_across_update(self, resonator):
        resonator.reset(displacement=2e-9, velocity=1e-6)
        resonator.set_parameters(quality_factor=10.0)
        assert resonator.state.displacement == pytest.approx(2e-9)
        assert resonator.state.velocity == pytest.approx(1e-6)

    def test_reset(self, resonator):
        resonator.reset(displacement=1.0)
        resonator.reset()
        assert resonator.state == ResonatorState(0.0, 0.0)
