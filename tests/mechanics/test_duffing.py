"""Duffing (geometric) nonlinearity of the cantilever."""

import math

import numpy as np
import pytest

from repro.analysis import zero_crossing_frequency
from repro.circuits import Signal
from repro.mechanics.duffing import (
    DuffingResonator,
    amplitude_to_frequency_slope,
    backbone_frequency,
    critical_amplitude,
    cubic_stiffness,
)


@pytest.fixture()
def duffing(geometry):
    return DuffingResonator.from_geometry(
        geometry, quality_factor=200.0, steps_per_cycle=60
    )


class TestCoefficients:
    def test_cubic_stiffness_scale(self, geometry):
        from repro.mechanics.beam import spring_constant

        k3 = cubic_stiffness(geometry)
        k = spring_constant(geometry)
        # at x = t the cubic force ~ alpha * linear force
        assert k3 * geometry.thickness**2 == pytest.approx(0.4 * k, rel=0.05)

    def test_backbone_hardening(self):
        f = backbone_frequency(1e4, 4.0, 1e11, 1e-6)
        assert f > 1e4

    def test_backbone_quadratic_in_amplitude(self):
        f0, k, k3 = 1e4, 4.0, 1e11
        df1 = backbone_frequency(f0, k, k3, 1e-6) - f0
        df2 = backbone_frequency(f0, k, k3, 2e-6) - f0
        assert df2 == pytest.approx(4.0 * df1)

    def test_slope_is_derivative(self):
        f0, k, k3, a = 1e4, 4.0, 1e11, 1e-6
        da = 1e-9
        fd = (
            backbone_frequency(f0, k, k3, a + da)
            - backbone_frequency(f0, k, k3, a - da)
        ) / (2 * da)
        assert amplitude_to_frequency_slope(f0, k, k3, a) == pytest.approx(
            fd, rel=1e-6
        )

    def test_critical_amplitude_scale(self, geometry):
        # sub-thickness for high-Q beams: nonlinearity is a real constraint
        a_c = critical_amplitude(geometry, quality_factor=200.0)
        assert 0.05 * geometry.thickness < a_c < geometry.thickness


class TestDuffingIntegration:
    def test_zero_cubic_matches_linear(self, geometry):
        from repro.mechanics import ModalResonator

        lin = ModalResonator.from_geometry(geometry, 200.0, steps_per_cycle=60)
        duf = DuffingResonator(
            lin.effective_mass,
            lin.effective_stiffness,
            200.0,
            lin.timestep,
            cubic_stiffness=0.0,
        )
        lin.reset(displacement=1e-7)
        duf.reset(displacement=1e-7)
        x_lin = lin.run(np.zeros(2000))
        x_duf = duf.run(np.zeros(2000))
        assert np.allclose(x_lin, x_duf)

    def test_free_vibration_follows_backbone(self, duffing):
        # ring down from a large amplitude: the measured frequency at the
        # start must match the backbone prediction at that amplitude
        a0 = duffing._m and 2e-6  # 2 um ~ 0.4 t: strongly nonlinear
        duffing.reset(displacement=a0)
        n = int(40 / (duffing.natural_frequency * duffing.timestep))
        x = duffing.run(np.zeros(n))
        # use the first few cycles, where amplitude ~ a0
        head = Signal(x[: n // 8], 1.0 / duffing.timestep)
        f_meas = zero_crossing_frequency(head)
        f_pred = duffing.backbone(a0)
        assert f_pred > duffing.natural_frequency * 1.005  # visibly stiffened
        assert f_meas == pytest.approx(f_pred, rel=0.03)

    def test_small_amplitude_recovers_linear_frequency(self, duffing):
        duffing.reset(displacement=1e-9)  # t/5000: linear regime
        n = int(40 / (duffing.natural_frequency * duffing.timestep))
        x = duffing.run(np.zeros(n))
        f_meas = zero_crossing_frequency(Signal(x, 1.0 / duffing.timestep))
        assert f_meas == pytest.approx(duffing.natural_frequency, rel=1e-3)

    def test_frequency_falls_during_ringdown(self, duffing):
        # hardening spring: as the amplitude decays the frequency drops
        duffing.reset(displacement=2e-6)
        n = int(120 / (duffing.natural_frequency * duffing.timestep))
        x = duffing.run(np.zeros(n))
        fs = 1.0 / duffing.timestep
        early = zero_crossing_frequency(Signal(x[: n // 10], fs))
        late = zero_crossing_frequency(Signal(x[-n // 10 :], fs))
        assert early > late


class TestAmFmConversion:
    def test_amplitude_drift_masquerades_as_binding(self, geometry):
        """The design argument for precise amplitude control (CLM5):
        a 1 % amplitude drift at 300 nm produces a frequency error
        comparable to tens of pg of analyte."""
        from repro.mechanics.beam import spring_constant
        from repro.mechanics import mass_responsivity

        k = spring_constant(geometry)
        k3 = cubic_stiffness(geometry)
        a = 300e-9
        slope = amplitude_to_frequency_slope(27.5e3, k, k3, a)
        df_from_1pct = slope * 0.01 * a
        mass_equivalent = abs(df_from_1pct / mass_responsivity(geometry))
        assert mass_equivalent > 1e-15  # > 1 pg of fake signal
