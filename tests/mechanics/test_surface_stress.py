"""Stoney-type surface-stress bending (Fig. 1 physics)."""

import numpy as np
import pytest

from repro.materials import get_material
from repro.mechanics import CantileverGeometry, static_response, stoney_uniform
from repro.mechanics.surface_stress import (
    curvature,
    deflection_profile,
    surface_strain,
    tip_deflection,
)
from repro.units import mN_per_m, um


class TestStoneyAnchor:
    def test_uniform_wide_beam_matches_stoney(self, geometry):
        sigma = mN_per_m(5.0)
        si = get_material("silicon")
        expected = stoney_uniform(
            si.youngs_modulus, si.poisson_ratio, geometry.thickness, sigma, wide=True
        )
        assert curvature(geometry, sigma) == pytest.approx(expected, rel=1e-9)

    def test_narrow_beam_uniaxial(self):
        narrow = CantileverGeometry.uniform(um(500), um(10), um(5))
        sigma = mN_per_m(5.0)
        si = get_material("silicon")
        expected = stoney_uniform(
            si.youngs_modulus, si.poisson_ratio, narrow.thickness, sigma, wide=False
        )
        assert curvature(narrow, sigma) == pytest.approx(expected, rel=1e-9)

    def test_stoney_closed_form(self):
        # kappa = 6 (1-nu) dsigma / (E t^2)
        kappa = stoney_uniform(100e9, 0.25, 1e-6, 1e-3, wide=True)
        assert kappa == pytest.approx(6.0 * 0.75 * 1e-3 / (100e9 * 1e-12))


class TestLinearityAndScaling:
    def test_linearity_in_stress(self, geometry):
        z1 = tip_deflection(geometry, mN_per_m(1.0))
        z5 = tip_deflection(geometry, mN_per_m(5.0))
        assert z5 == pytest.approx(5.0 * z1)

    def test_sign_follows_stress(self, geometry):
        assert tip_deflection(geometry, mN_per_m(-3.0)) == pytest.approx(
            -tip_deflection(geometry, mN_per_m(3.0))
        )

    def test_thickness_squared_scaling(self, geometry):
        thin = geometry.scaled(thickness_factor=0.5)
        assert curvature(thin, 1e-3) == pytest.approx(
            4.0 * curvature(geometry, 1e-3), rel=1e-6
        )

    def test_length_squared_in_deflection(self, geometry):
        long = geometry.scaled(length_factor=2.0)
        assert tip_deflection(long, 1e-3) == pytest.approx(
            4.0 * tip_deflection(geometry, 1e-3), rel=1e-6
        )

    def test_deflection_is_half_kappa_l_squared(self, geometry):
        sigma = 1e-3
        assert tip_deflection(geometry, sigma) == pytest.approx(
            curvature(geometry, sigma) * geometry.length**2 / 2.0
        )


class TestProfileAndStrain:
    def test_profile_parabolic(self, geometry):
        sigma = 1e-3
        x = np.asarray([0.0, geometry.length / 2.0, geometry.length])
        z = deflection_profile(geometry, sigma, x)
        assert z[0] == 0.0
        # parabolic: z(L/2) = z(L)/4
        assert z[1] == pytest.approx(z[2] / 4.0)

    def test_strain_uniform_equals_kappa_c(self, geometry):
        sigma = 1e-3
        eps = surface_strain(geometry, sigma)
        c = geometry.thickness / 2.0
        assert eps == pytest.approx(curvature(geometry, sigma) * c)

    def test_magnitude_realistic(self, geometry):
        # 5 mN/m on a 5 um beam: sub-nm tip deflection (the reason
        # integrated readout is needed at all)
        z = tip_deflection(geometry, mN_per_m(5.0))
        assert 0.1e-9 < abs(z) < 10e-9


class TestStaticResponse:
    def test_bundle_consistency(self, geometry):
        sigma = mN_per_m(2.0)
        r = static_response(geometry, sigma)
        assert r.surface_stress == sigma
        assert r.curvature == pytest.approx(curvature(geometry, sigma))
        assert r.tip_deflection == pytest.approx(tip_deflection(geometry, sigma))
        assert r.surface_strain == pytest.approx(surface_strain(geometry, sigma))

    def test_bending_stress_is_modulus_times_strain(self, geometry):
        r = static_response(geometry, 1e-3)
        e = get_material("silicon").youngs_modulus
        assert r.surface_bending_stress == pytest.approx(e * r.surface_strain)
