"""Clamped-free modal analysis against textbook anchors."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.mechanics import analyze_modes, natural_frequency
from repro.mechanics.modal import (
    effective_mass_fraction,
    eigenvalue,
    mode_shape,
    mode_shape_tip_normalized,
    modal_participation_of_uniform_load,
)


class TestEigenvalues:
    def test_first_eigenvalue(self):
        assert eigenvalue(1) == pytest.approx(1.8751040687, rel=1e-9)

    def test_characteristic_equation(self):
        # cos(l) cosh(l) = -1
        for n in range(1, 6):
            lam = eigenvalue(n)
            assert math.cos(lam) * math.cosh(lam) == pytest.approx(-1.0, abs=1e-6)

    def test_asymptotic_high_modes(self):
        lam = eigenvalue(10)
        assert lam == pytest.approx((2 * 10 - 1) * math.pi / 2.0, rel=1e-6)

    def test_invalid_mode(self):
        with pytest.raises(GeometryError):
            eigenvalue(0)


class TestModeShapes:
    def test_zero_at_clamp(self):
        for n in (1, 2, 3):
            assert mode_shape(n, np.asarray([0.0]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_tip_normalization(self):
        for n in (1, 2, 3):
            phi = mode_shape_tip_normalized(n, np.asarray([1.0]))
            assert phi[0] == pytest.approx(1.0)

    def test_mode_n_has_n_minus_1_interior_nodes(self):
        xi = np.linspace(0.01, 0.999, 5000)
        for n in (1, 2, 3):
            phi = mode_shape_tip_normalized(n, xi)
            sign_changes = int(np.sum(np.diff(np.sign(phi)) != 0))
            assert sign_changes == n - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(GeometryError):
            mode_shape(1, np.asarray([1.5]))

    def test_effective_mass_fraction_is_quarter(self):
        # exact identity for all clamped-free modes with tip normalization
        for n in (1, 2, 3):
            assert effective_mass_fraction(n) == pytest.approx(0.25, abs=1e-4)


class TestFrequencies:
    def test_textbook_formula(self, geometry):
        # f1 = 0.1615 t/L^2 sqrt(E/rho) for rectangular beams
        e, rho = 169e9, 2329.0
        t, length = 5e-6, 500e-6
        expected = (
            (1.8751041**2 / (2 * math.pi))
            * math.sqrt(e * t**2 / (12.0 * rho))
            / length**2
        )
        assert natural_frequency(geometry, 1) == pytest.approx(expected, rel=1e-6)

    def test_mode_ratio(self, geometry):
        # f2/f1 = (lambda2/lambda1)^2 = 6.267
        f1 = natural_frequency(geometry, 1)
        f2 = natural_frequency(geometry, 2)
        assert f2 / f1 == pytest.approx(6.2669, rel=1e-3)

    def test_scaling_t_over_l_squared(self, geometry):
        f1 = natural_frequency(geometry)
        double_l = geometry.scaled(length_factor=2.0)
        assert natural_frequency(double_l) == pytest.approx(f1 / 4.0)
        double_t = geometry.scaled(thickness_factor=2.0)
        assert natural_frequency(double_t) == pytest.approx(2.0 * f1)

    def test_width_independent(self, geometry):
        wide = geometry.scaled(width_factor=3.0)
        assert natural_frequency(wide) == pytest.approx(natural_frequency(geometry))


class TestAnalyzeModes:
    def test_count_and_order(self, geometry):
        modes = analyze_modes(geometry, 3)
        assert [m.number for m in modes] == [1, 2, 3]
        assert modes[0].frequency < modes[1].frequency < modes[2].frequency

    def test_stiffness_consistency(self, geometry):
        mode = analyze_modes(geometry, 1)[0]
        omega = 2.0 * math.pi * mode.frequency
        assert mode.effective_stiffness == pytest.approx(
            mode.effective_mass * omega**2
        )

    def test_mode1_stiffness_near_static(self, geometry):
        # k_eff(mode 1) ~ 1.03 k_static for a cantilever
        from repro.mechanics.beam import spring_constant

        mode = analyze_modes(geometry, 1)[0]
        assert mode.effective_stiffness == pytest.approx(
            spring_constant(geometry), rel=0.05
        )

    def test_invalid_count(self, geometry):
        with pytest.raises(GeometryError):
            analyze_modes(geometry, 0)


class TestParticipation:
    def test_uniform_load_participation_mode1(self):
        # integral(phi)/integral(phi^2) = 0.3915/0.25 ~ 1.566 for mode 1
        p = modal_participation_of_uniform_load(1)
        assert p == pytest.approx(1.566, rel=0.01)

    def test_higher_modes_couple_weakly(self):
        p1 = abs(modal_participation_of_uniform_load(1))
        p2 = abs(modal_participation_of_uniform_load(2))
        p3 = abs(modal_participation_of_uniform_load(3))
        assert p2 < p1
        assert p3 < p2
