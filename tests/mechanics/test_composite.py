"""Transformed-section mechanics of multilayer stacks."""

import pytest

from repro.errors import GeometryError
from repro.materials import get_material
from repro.mechanics import Layer, LayerStack
from repro.units import um


@pytest.fixture()
def silicon_layer():
    return Layer(material=get_material("silicon"), thickness=um(5))


@pytest.fixture()
def oxide_layer():
    return Layer(material=get_material("silicon_dioxide"), thickness=um(1))


class TestSingleLayer:
    def test_neutral_axis_at_midplane(self, silicon_layer):
        stack = LayerStack([silicon_layer])
        assert stack.neutral_axis == pytest.approx(2.5e-6)

    def test_rigidity_matches_et3_over_12(self, silicon_layer):
        stack = LayerStack([silicon_layer])
        e = silicon_layer.material.youngs_modulus
        t = silicon_layer.thickness
        assert stack.flexural_rigidity_per_width == pytest.approx(e * t**3 / 12.0)

    def test_effective_modulus_recovers_material(self, silicon_layer):
        stack = LayerStack([silicon_layer])
        assert stack.effective_youngs_modulus == pytest.approx(
            silicon_layer.material.youngs_modulus
        )

    def test_effective_density_recovers_material(self, silicon_layer):
        stack = LayerStack([silicon_layer])
        assert stack.effective_density == pytest.approx(
            silicon_layer.material.density
        )


class TestTwoLayers:
    def test_total_thickness(self, silicon_layer, oxide_layer):
        stack = LayerStack([silicon_layer, oxide_layer])
        assert stack.total_thickness == pytest.approx(6e-6)

    def test_neutral_axis_shifts_toward_stiffer(self, silicon_layer, oxide_layer):
        stack = LayerStack([silicon_layer, oxide_layer])
        # silicon (bottom) is stiffer, so NA sits below the geometric mid
        assert stack.neutral_axis < stack.total_thickness / 2.0

    def test_rigidity_exceeds_sum_of_own_axes(self, silicon_layer, oxide_layer):
        stack = LayerStack([silicon_layer, oxide_layer])
        own_axes = sum(
            l.material.youngs_modulus * l.thickness**3 / 12.0
            for l in (silicon_layer, oxide_layer)
        )
        # parallel-axis terms always add
        assert stack.flexural_rigidity_per_width > own_axes

    def test_symmetric_sandwich_neutral_axis_centered(self, oxide_layer):
        si = Layer(material=get_material("silicon"), thickness=um(4))
        stack = LayerStack([oxide_layer, si, oxide_layer])
        assert stack.neutral_axis == pytest.approx(stack.total_thickness / 2.0)

    def test_mass_per_area_additive(self, silicon_layer, oxide_layer):
        stack = LayerStack([silicon_layer, oxide_layer])
        expected = 2329.0 * 5e-6 + 2200.0 * 1e-6
        assert stack.mass_per_area == pytest.approx(expected)

    def test_interfaces(self, silicon_layer, oxide_layer):
        stack = LayerStack([silicon_layer, oxide_layer])
        assert stack.interfaces() == pytest.approx([0.0, 5e-6, 6e-6])


class TestResidualStress:
    def test_symmetric_stack_no_moment(self):
        ox = Layer(material=get_material("silicon_dioxide"), thickness=um(1))
        si = Layer(material=get_material("silicon"), thickness=um(4))
        stack = LayerStack([ox, si, ox])
        assert stack.residual_moment_per_width == pytest.approx(0.0, abs=1e-12)

    def test_single_layer_no_moment(self):
        si = Layer(material=get_material("silicon"), thickness=um(5))
        assert LayerStack([si]).residual_moment_per_width == pytest.approx(0.0)

    def test_compressive_top_oxide_curls(self):
        si = Layer(material=get_material("silicon"), thickness=um(5))
        ox = Layer(material=get_material("silicon_dioxide"), thickness=um(1))
        stack = LayerStack([si, ox])
        # compressive film above the NA -> negative moment -> curvature
        assert stack.residual_curvature() != 0.0

    def test_residual_curvature_scales_with_stress(self):
        si = Layer(material=get_material("silicon"), thickness=um(5))
        ox = Layer(material=get_material("silicon_dioxide"), thickness=um(1))
        kappa = LayerStack([si, ox]).residual_curvature()
        ox_material = get_material("silicon_dioxide")
        assert kappa * ox_material.intrinsic_stress >= 0.0 or kappa != 0.0


class TestUtilities:
    def test_scaled(self, silicon_layer, oxide_layer):
        stack = LayerStack([silicon_layer, oxide_layer])
        doubled = stack.scaled(2.0)
        assert doubled.total_thickness == pytest.approx(12e-6)
        # rigidity scales as t^3
        assert doubled.flexural_rigidity_per_width == pytest.approx(
            8.0 * stack.flexural_rigidity_per_width
        )

    def test_with_layer_on_top(self, silicon_layer):
        gold = Layer(material=get_material("gold"), thickness=um(0.05))
        stack = LayerStack([silicon_layer]).with_layer_on_top(gold)
        assert len(stack) == 2
        assert stack.layers[-1].material.name == "gold"

    def test_empty_stack_rejected(self):
        with pytest.raises(GeometryError):
            LayerStack([])

    def test_describe_mentions_all_layers(self, silicon_layer, oxide_layer):
        text = LayerStack([silicon_layer, oxide_layer]).describe()
        assert "silicon" in text
        assert "silicon_dioxide" in text
