"""Cantilever geometry and derived scalars."""

import pytest

from repro.errors import GeometryError, UnitError
from repro.materials import get_material
from repro.mechanics import CantileverGeometry, Layer, LayerStack
from repro.units import um


class TestConstruction:
    def test_uniform_constructor(self, geometry):
        assert geometry.length == pytest.approx(500e-6)
        assert geometry.width == pytest.approx(100e-6)
        assert geometry.thickness == pytest.approx(5e-6)

    def test_material_by_name(self):
        g = CantileverGeometry.uniform(um(300), um(50), um(2), "silicon_nitride")
        assert g.stack.layers[0].material.name == "silicon_nitride"

    def test_negative_length_rejected(self):
        with pytest.raises(UnitError):
            CantileverGeometry.uniform(-um(500), um(100), um(5))

    def test_stubby_beam_rejected(self):
        # L < 2t violates beam theory
        with pytest.raises(GeometryError):
            CantileverGeometry.uniform(um(8), um(100), um(5))


class TestDerivedScalars:
    def test_planform_area(self, geometry):
        assert geometry.planform_area == pytest.approx(500e-6 * 100e-6)

    def test_cross_section(self, geometry):
        assert geometry.cross_section_area == pytest.approx(100e-6 * 5e-6)

    def test_mass(self, geometry):
        expected = 2329.0 * 500e-6 * 100e-6 * 5e-6
        assert geometry.mass == pytest.approx(expected)

    def test_mass_per_length(self, geometry):
        assert geometry.mass_per_length == pytest.approx(
            geometry.mass / geometry.length
        )

    def test_flexural_rigidity_formula(self, geometry):
        e = get_material("silicon").youngs_modulus
        i = 100e-6 * (5e-6) ** 3 / 12.0
        assert geometry.flexural_rigidity == pytest.approx(e * i)

    def test_is_wide(self, geometry):
        assert geometry.is_wide  # w = 20 t
        narrow = CantileverGeometry.uniform(um(500), um(10), um(5))
        assert not narrow.is_wide


class TestScaling:
    def test_scaled_dimensions(self, geometry):
        g2 = geometry.scaled(length_factor=2.0, thickness_factor=0.5)
        assert g2.length == pytest.approx(2.0 * geometry.length)
        assert g2.thickness == pytest.approx(0.5 * geometry.thickness)
        assert g2.width == pytest.approx(geometry.width)

    def test_scaled_rejects_nonpositive(self, geometry):
        with pytest.raises(UnitError):
            geometry.scaled(length_factor=0.0)

    def test_original_unchanged(self, geometry):
        before = geometry.length
        geometry.scaled(length_factor=3.0)
        assert geometry.length == before
