"""Drive-waveform synthesis."""

import numpy as np
import pytest

from repro.actuation import burst, instantaneous_frequency, linear_chirp, tone
from repro.errors import SignalError

FS = 200e3


class TestTone:
    def test_amplitude_and_length(self):
        s = tone(1e3, 0.5, 0.1, FS)
        assert s.peak() == pytest.approx(0.5, rel=1e-3)
        assert len(s) == 20000


class TestChirp:
    def test_frequency_sweeps(self):
        s = linear_chirp(1e3, 5e3, 1.0, 0.1, FS)
        f_inst = instantaneous_frequency(s)
        # each reading averages one period, so the first sits slightly
        # above the start frequency
        assert f_inst[0] == pytest.approx(1e3, rel=0.10)
        assert f_inst[-1] == pytest.approx(5e3, rel=0.05)

    def test_monotone_sweep(self):
        s = linear_chirp(1e3, 5e3, 1.0, 0.1, FS)
        f_inst = instantaneous_frequency(s)
        smooth = np.convolve(f_inst, np.ones(5) / 5, mode="valid")
        # allow the period-quantization jitter (~fs/period^2) near 5 kHz
        assert np.all(np.diff(smooth) > -30.0)

    def test_above_nyquist_rejected(self):
        with pytest.raises(SignalError):
            linear_chirp(1e3, 150e3, 1.0, 0.1, FS)


class TestBurst:
    def test_silence_after_on_time(self):
        s = burst(1e3, 1.0, on_time=0.02, total_time=0.05, sample_rate=FS)
        tail = s.slice_time(0.03, 0.05)
        assert tail.peak() == 0.0

    def test_active_during_on_time(self):
        s = burst(1e3, 1.0, on_time=0.02, total_time=0.05, sample_rate=FS)
        head = s.slice_time(0.0, 0.02)
        assert head.peak() == pytest.approx(1.0, rel=1e-2)

    def test_invalid_times(self):
        with pytest.raises(SignalError):
            burst(1e3, 1.0, on_time=0.05, total_time=0.02, sample_rate=FS)


class TestInstantaneousFrequency:
    def test_constant_tone(self):
        s = tone(2e3, 1.0, 0.05, FS)
        f = instantaneous_frequency(s)
        assert np.median(f) == pytest.approx(2e3, rel=1e-3)
        assert np.all(np.abs(f - 2e3) < 0.05 * 2e3)

    def test_too_short_returns_empty(self):
        s = tone(100.0, 1.0, 0.001, FS)
        assert len(instantaneous_frequency(s)) == 0
