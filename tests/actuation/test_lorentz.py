"""Lorentz-force actuator: coil electrical limits and force conversion."""

import numpy as np
import pytest

from repro.actuation import ActuationCoil, LorentzActuator, PermanentMagnet
from repro.errors import CircuitError


@pytest.fixture()
def coil(geometry):
    return ActuationCoil(geometry=geometry, turns=2)


@pytest.fixture()
def actuator(coil):
    return LorentzActuator(coil, PermanentMagnet(field=0.25))


class TestCoilElectrical:
    def test_trace_length(self, coil, geometry):
        per_turn = 2.0 * geometry.length + geometry.width
        assert coil.trace_length == pytest.approx(2 * per_turn)

    def test_resistance_low_tens_of_ohms(self, coil):
        # "the low-resistance coil" of the paper
        assert 5.0 < coil.resistance < 50.0

    def test_resistance_scales_with_turns(self, geometry):
        one = ActuationCoil(geometry=geometry, turns=1)
        three = ActuationCoil(geometry=geometry, turns=3)
        assert three.resistance == pytest.approx(3.0 * one.resistance)

    def test_electromigration_limit(self, coil):
        assert coil.max_current == pytest.approx(2e9 * 4e-6 * 1e-6)

    def test_drive_power(self, coil):
        i = 1e-3
        assert coil.drive_power(i) == pytest.approx(i**2 * coil.resistance)

    def test_zero_turns_rejected(self, geometry):
        with pytest.raises(CircuitError):
            ActuationCoil(geometry=geometry, turns=0)


class TestForce:
    def test_force_per_current(self, coil):
        magnet = PermanentMagnet(field=0.25)
        # F/I = n B w
        assert coil.force_per_current(magnet) == pytest.approx(
            2 * 0.25 * coil.geometry.width
        )

    def test_force_linear_below_limit(self, coil):
        magnet = PermanentMagnet()
        f1 = coil.tip_force(1e-3, magnet)
        f2 = coil.tip_force(2e-3, magnet)
        assert f2 == pytest.approx(2.0 * f1)

    def test_force_clips_at_current_limit(self, coil):
        magnet = PermanentMagnet()
        f_max = coil.tip_force(coil.max_current, magnet)
        f_over = coil.tip_force(10.0 * coil.max_current, magnet)
        assert f_over == pytest.approx(f_max)

    def test_force_sign_follows_current(self, coil):
        magnet = PermanentMagnet()
        assert coil.tip_force(-1e-3, magnet) == pytest.approx(
            -coil.tip_force(1e-3, magnet)
        )

    def test_array_input(self, coil):
        magnet = PermanentMagnet()
        f = coil.tip_force(np.asarray([0.0, 1e-3]), magnet)
        assert f.shape == (2,)
        assert f[0] == 0.0


class TestActuator:
    def test_force_per_volt(self, actuator):
        expected = actuator.coil.force_per_current(actuator.magnet) / (
            actuator.coil.resistance
        )
        assert actuator.force_per_volt == pytest.approx(expected)

    def test_voltage_to_force(self, actuator):
        v = 0.05
        assert float(actuator.tip_force_from_voltage(v)) == pytest.approx(
            actuator.force_per_volt * v
        )

    def test_max_force_nanonewtons(self, actuator):
        # hundreds of nN: ample to drive nm-scale resonant motion
        assert 1e-8 < actuator.max_force < 1e-5

    def test_voltage_clipping(self, actuator):
        v_huge = 100.0
        assert float(actuator.tip_force_from_voltage(v_huge)) == pytest.approx(
            actuator.max_force
        )
