"""Autonomous operation: the chip decides by itself.

The paper's closing promise is that monolithic integration "enables
autonomous device operation".  This example is that device's firmware,
running on the simulated chip:

1. a titration calibrates the dose-response curve (K_D, R_max) once;
2. in the field, the CUSUM detector watches the referenced output and
   announces binding onset without an operator;
3. the fitted isotherm converts the settled response into a
   concentration estimate for the unknown sample.

Run:  python examples/autonomous_detection.py
"""

import numpy as np

from repro import AssayProtocol, FunctionalizedSurface, StaticCantileverSensor, get_analyte
from repro.analysis import cusum_detect, fit_baseline, fit_dose_response
from repro.core.presets import reference_cantilever
from repro.units import nM

device = reference_cantilever()
crp = get_analyte("crp")
surface = FunctionalizedSurface(crp, device.geometry)
sensor = StaticCantileverSensor(surface)
sensor.calibrate_offset()

# ---------------------------------------------------------------------------
# 1. factory calibration: titrate and fit the dose-response curve
# ---------------------------------------------------------------------------

calibration_concentrations = [nM(c) for c in (0.1, 0.3, 1.0, 3.0, 10.0, 100.0)]
responses = []
for c in calibration_concentrations:
    # CRP kinetics are slow (tau ~ 1/k_off ~ 80 min at low C): calibrate
    # to equilibrium or the isotherm fit inherits a kinetic bias
    protocol = AssayProtocol.injection(c, baseline=120, exposure=25000, wash=1.0)
    run = sensor.run_assay(protocol, sample_interval=60.0, include_noise=False)
    responses.append(run.output_voltage[-2] - run.output_voltage[0])

fit = fit_dose_response(np.asarray(calibration_concentrations), np.asarray(responses))
from repro.constants import AVOGADRO

print("factory calibration (CRP titration):")
print(f"  fitted K_D    : {fit.k_d / (AVOGADRO * 1e3) * 1e9:.2f} nM "
      f"(true {crp.dissociation_constant_molar * 1e9:.2f} nM)")
print(f"  fitted R_max  : {fit.max_response * 1e3:.1f} mV")
print(f"  fit residual  : {fit.residual_rms * 1e3:.2f} mV rms")

# ---------------------------------------------------------------------------
# 2. field operation: unknown sample arrives mid-record
# ---------------------------------------------------------------------------

unknown_c = nM(0.5)   # the firmware does not know this number
protocol = AssayProtocol.injection(unknown_c, baseline=600, exposure=20000, wash=1.0)
trace = sensor.run_assay(protocol, sample_interval=20.0, seed=13)

baseline = fit_baseline(trace.times, trace.output_voltage, window=500.0)
detection = cusum_detect(trace.times, trace.output_voltage, baseline, sigmas=6.0)

print("field record (unknown sample):")
print(f"  baseline noise: {baseline.noise_rms * 1e3:.2f} mV rms, "
      f"drift {baseline.slope * 1e6:+.1f} uV/s")
if detection.detected:
    print(f"  BINDING DETECTED at t = {detection.onset_time:.0f} s "
          f"(injection was at t = 600 s)")
else:
    print("  no binding detected")

# ---------------------------------------------------------------------------
# 3. quantification: invert the isotherm for the concentration
# ---------------------------------------------------------------------------

# settled step = mean of the final plateau minus the baseline-window
# mean.  (Do NOT extrapolate the fitted baseline slope over hours: its
# noise-limited uncertainty, ~2 uV/s here, integrates to tens of mV.)
plateau = np.mean(trace.output_voltage[-60:])
pre = np.mean(trace.output_voltage[trace.times <= 500.0])
settled_response = abs(plateau - pre)
estimated_c = fit.concentration_from_response(
    min(settled_response, fit.max_response * 0.999)
)
estimated_nm = estimated_c / (AVOGADRO * 1e3) * 1e9
true_nm = unknown_c / (AVOGADRO * 1e3) * 1e9
print("quantification:")
print(f"  settled response    : {settled_response * 1e3:.1f} mV")
print(f"  estimated conc.     : {estimated_nm:.2f} nM (true {true_nm:.2f} nM)")
print(f"  relative error      : {abs(estimated_nm - true_nm) / true_nm * 100:.0f} % "
      "(isotherm inversion amplifies response noise by 1/(1-theta))")
