"""Design-space exploration: from process knobs to sensor performance.

The library models the whole chain — process, mechanics, transduction,
circuits — and describes any device variant with one typed spec, so
design questions become one-line *spec sweeps*: pick a dotted path, give
it a value grid, and every grid point is a complete, validated device
description.  This example answers three questions the paper's designers
faced:

1. How does the n-well depth (the etch-stop knob) trade static
   sensitivity against resonant frequency?
2. What cantilever length optimizes the in-liquid mass LOD at a fixed
   counter gate time?
3. Does a candidate layout pass the post-CMOS DRC deck, and what does
   the backside mask cost in die area?

Run:  python examples/design_exploration.py
"""

from repro.analysis import run_spec_sweep
from repro.config import (
    REFERENCE_RESONANT_SENSOR,
    REFERENCE_STATIC_SENSOR,
    build,
    build_cantilever,
)
from repro.fabrication import cantilever_layout, post_cmos_rule_deck
from repro.mechanics import natural_frequency
from repro.mechanics.surface_stress import tip_deflection
from repro.units import um

# ---------------------------------------------------------------------------
# 1. n-well depth: beam thickness is a pure process knob
# ---------------------------------------------------------------------------

def nwell_tradeoff(spec):
    device = build_cantilever(spec.cantilever, spec.process)
    return {
        "f1_kHz": natural_frequency(device.geometry) / 1e3,
        "defl_nm_at_5mN/m": abs(tip_deflection(device.geometry, 5e-3)) * 1e9,
        "KOH_h": device.process.koh_time / 3600.0,
    }


table = run_spec_sweep(
    REFERENCE_STATIC_SENSOR,
    "process.nwell_depth_um",
    [2.0, 3.0, 4.0, 5.0, 6.0],
    nwell_tradeoff,
    parameter_name="nwell_um",
    workers=1,
)
print("1. etch-stop depth trade-off (500 x 100 um beam):")
print(table.format_table())
print("   -> thin beams bend more (static wins), thick beams resonate "
      "higher (resonant wins)\n")

# ---------------------------------------------------------------------------
# 2. beam length vs in-liquid mass LOD
# ---------------------------------------------------------------------------

def length_tradeoff(spec):
    sensor = build(spec)
    return {
        "f_wet_kHz": sensor.fluid_mode.frequency / 1e3,
        "Q_wet": sensor.fluid_mode.quality_factor,
        "resp_mHz_per_pg": abs(sensor.mass_responsivity()) * 1e-15 * 1e3,
        "lod_pg_10s_gate": sensor.minimum_detectable_mass(10.0) * 1e15,
    }


table = run_spec_sweep(
    REFERENCE_RESONANT_SENSOR,  # reference liquid is water
    "cantilever.length_um",
    [200.0, 300.0, 400.0, 500.0, 700.0],
    length_tradeoff,
    parameter_name="length_um",
    workers=1,
)
print("2. beam length vs in-water mass resolution (10 s counter gate):")
print(table.format_table())
best = min(table.rows(), key=lambda r: r[4])
print(f"   -> best LOD at L = {best[0]:.0f} um: {best[4]:.0f} pg\n")

# ---------------------------------------------------------------------------
# 3. DRC and die-area cost of the backside mask
# ---------------------------------------------------------------------------

beam = REFERENCE_STATIC_SENSOR.cantilever
layout = cantilever_layout(um(beam.length_um), um(beam.width_um))
violations = post_cmos_rule_deck().check(layout)
opening = layout.bounding_box("backside_etch")
beam_area = um(beam.length_um) * um(beam.width_um)
opening_area = opening.area
print("3. physical verification of the three post-CMOS masks:")
print(f"   DRC violations : {len(violations)}")
print(f"   beam area      : {beam_area * 1e12:8.0f} um^2")
print(f"   backside window: {opening_area * 1e12:8.0f} um^2 "
      f"({opening_area / beam_area:.0f}x the beam: the 54.7-degree "
      "sidewalls dominate the die budget)")
