"""Temperature-compensated resonant sensing with a dual-oscillator chip.

Runs two Fig. 5 loops on one simulated die — a streptavidin-capture
sensing beam and a blocked reference beam — under a wandering cell
temperature, and shows the frequency-*ratio* readout rejecting the
thermal drift that corrupts the raw counter trace.

Run:  python examples/dual_oscillator.py
"""

import math

import numpy as np

from repro import AssayProtocol, FunctionalizedSurface, get_analyte, get_liquid
from repro.core import ResonantArrayChip
from repro.core.presets import reference_geometry
from repro.units import nM

# 1. Build the chip: sensing + 2%-detuned blocked reference in PBS.
surface = FunctionalizedSurface(get_analyte("streptavidin"), reference_geometry())
chip = ResonantArrayChip(surface, get_liquid("pbs"))
print("dual-oscillator chip:")
print(f"  sensing beam   : {chip.sensing.fluid_mode.frequency:9.1f} Hz "
      f"(Q = {chip.sensing.fluid_mode.quality_factor:.2f})")
print(f"  reference beam : {chip.reference.fluid_mode.frequency:9.1f} Hz "
      "(blocked surface)")
print(f"  shared TCF     : {chip.tcf * 1e6:+.1f} ppm/K "
      f"(matching floor {chip.tcf_mismatch * 1e9:.0f} ppb/K)")

# 2. Both loops really close and lock (short live measurement).
f_s, f_r = chip.measure_frequencies(gate_time=0.02, gates=2)
print(f"  live lock      : sensing {f_s:.0f} Hz, reference {f_r:.0f} Hz")

# 3. Assay under a +/-1 K slow thermal wobble (20-minute period).
protocol = AssayProtocol.injection(nM(100), baseline=600, exposure=2400, wash=600)
wobble = lambda t: 1.0 * math.sin(2.0 * math.pi * t / 1200.0)
result = chip.run_compensated_assay(protocol, wobble, gate_time=30.0)

raw_thermal_swing = abs(chip.tcf) * 1.0 * result.sensing_frequency[0]
true_shift_frac = float(result.true_binding_ratio[-1] - 1.0)
print("assay under a +/-1 K thermal wobble:")
print(f"  thermal swing on the raw counter : +/-{raw_thermal_swing * 1e3:.0f} mHz")
print(f"  true binding shift               : "
      f"{true_shift_frac * result.sensing_frequency[0] * 1e3:+.0f} mHz "
      f"({true_shift_frac:+.2e} fractional)")
print(f"  ratio-readout shift              : "
      f"{result.compensated_shift_fraction:+.2e} fractional")

# 4. Print the two traces side by side.
print(f"{'t [min]':>8s} {'dT [K]':>8s} {'raw f_s [Hz]':>14s} "
      f"{'ratio - 1 [ppm]':>16s}")
stride = 13  # co-prime with the 40-gate wobble period: samples all phases
for i in range(0, len(result.times), stride):
    print(f"{result.times[i] / 60.0:8.1f} {result.temperature[i]:8.2f} "
          f"{result.sensing_frequency[i]:14.3f} "
          f"{(result.ratio[i] / result.ratio[0] - 1.0) * 1e6:16.3f}")

raw_error = np.std(
    result.sensing_frequency - np.mean(result.sensing_frequency)
)
print(f"\nverdict: the raw trace wanders {raw_error * 1e3:.0f} mHz rms with "
      "temperature; the ratio trace shows the binding step at the "
      "counter-quantization floor.")
