"""DNA detection with the resonant cantilever in liquid (Fig. 2 + Fig. 5).

Weighs 20-mer DNA oligos hybridizing to a probe layer: the cantilever
oscillates in PBS inside the closed feedback loop, the Lorentz coil
drives it, the PMOS bridge senses it, and the digital counter tracks
the resonant frequency as mass binds.

The example shows all the operating machinery of the Fig. 5 system:
fluid loading, loop auto-gain, Barkhausen startup check,
describing-function amplitude prediction vs simulation, counter
readout, and the binding-induced frequency shift.

Run:  python examples/dna_resonant.py
"""

import numpy as np

from repro import AssayProtocol, FunctionalizedSurface, ResonantCantileverSensor
from repro.biochem import dna_oligo
from repro.core.presets import reference_cantilever
from repro.feedback import analyze, predict_amplitude
from repro.materials import get_liquid
from repro.units import nM

# 1. Device + chemistry: DNA probes on the reference cantilever, in PBS.
device = reference_cantilever()
target = dna_oligo(20)
surface = FunctionalizedSurface(analyte=target, geometry=device.geometry)
sensor = ResonantCantileverSensor(surface, get_liquid("pbs"))

print("resonant sensor in PBS:")
print(f"  vacuum resonance    : {sensor.fluid_mode.vacuum_frequency / 1e3:8.2f} kHz")
print(f"  fluid-loaded        : {sensor.fluid_mode.frequency / 1e3:8.2f} kHz "
      f"(Q = {sensor.fluid_mode.quality_factor:.2f})")
print(f"  mass responsivity   : "
      f"{sensor.mass_responsivity() * 1e-15 * 1e3:8.2f} mHz/pg")

# 2. Close the loop and verify startup (Barkhausen + time domain).
loop = sensor.build_loop()
fs = 1.0 / loop.resonator.timestep
bark = analyze(loop, fs)
pred = predict_amplitude(loop, fs)
print("feedback loop (Fig. 5):")
print(f"  VGA setting         : {loop.vga.gain_db:.1f} dB "
      f"(auto-ranged for Q = {loop.resonator.quality_factor:.2f})")
print(f"  loop gain at f0     : {bark.loop_gain_magnitude:.2f} "
      f"({'starts' if bark.will_oscillate else 'DEAD'})")
print(f"  predicted amplitude : {pred.tip_amplitude * 1e9:.0f} nm tip")

record = loop.run(duration=0.1)
print(f"  simulated amplitude : {record.steady_amplitude() * 1e9:.0f} nm tip")

# 3. Track a 50 nM hybridization with the counter (10 s gates).
protocol = AssayProtocol.injection(nM(50), baseline=300, exposure=2400, wash=600)
result = sensor.run_tracking_assay(protocol, gate_time=10.0)

bound_pg = result.added_mass[-1] * 1e15
true_shift = result.true_frequency[-1] - result.true_frequency[0]
print("hybridization assay (50 nM, 40 min exposure):")
print(f"  final coverage      : {result.coverage[-1] * 100:6.1f} %")
print(f"  bound DNA mass      : {bound_pg:6.1f} pg "
      f"({surface.bound_molecules(result.coverage[-1]):.2e} molecules)")
print(f"  true freq shift     : {true_shift:+7.3f} Hz")
print(f"  counter resolution  : {1.0 / result.gate_time:7.3f} Hz")
if abs(true_shift) < 1.0 / result.gate_time:
    print("  -> the bare-oligo shift sits BELOW the counter resolution:")
    print("     weighing monolayers in liquid is hard (fluid loading cuts")
    print("     df/dm ~30x).  The standard fix is mass amplification.")

# 4. Mass amplification: streptavidin-coated microbead labels.
#    Each 1 um polystyrene bead weighs ~0.55 pg — tens of thousands of
#    DNA strands' worth — so a sandwich assay with bead labels lifts the
#    shift far above the counter grid.
from repro.biochem import Analyte, run_assay

bead_label = Analyte(
    name="bead_1um",
    molecular_mass=0.55e-15,           # 1 um polystyrene sphere [kg]
    k_on=target.k_on * 50.0,           # multivalent capture
    k_off=1e-5,                        # effectively irreversible
    surface_stress_full_coverage=-1e-3,
    full_coverage_density=2e10,        # ~1 bead per (7 um)^2
)
bead_surface = FunctionalizedSurface(analyte=bead_label, geometry=device.geometry)
bead_sensor = ResonantCantileverSensor(bead_surface, get_liquid("pbs"))
bead_protocol = AssayProtocol.injection(nM(0.01), baseline=300, exposure=1800, wash=300)
bead_result = bead_sensor.run_tracking_assay(bead_protocol, gate_time=10.0)

beads = bead_surface.bound_molecules(bead_result.coverage[-1])
print("bead-amplified sandwich assay:")
print(f"  bound beads         : {beads:8.0f} "
      f"({bead_result.added_mass[-1] * 1e15:.0f} pg)")
print(f"  true freq shift     : "
      f"{bead_result.true_frequency[-1] - bead_result.true_frequency[0]:+7.3f} Hz")
print(f"  measured shift      : {bead_result.total_shift:+7.3f} Hz "
      f"(resolution {1.0 / bead_result.gate_time:.1f} Hz)")

# 5. Frequency trace around the bead injection.
print("frequency trace (bead assay, every 30th gate):")
for i in range(0, len(bead_result.times), 30):
    t = bead_result.times[i]
    print(f"  t = {t / 60.0:5.1f} min   "
          f"f = {bead_result.measured_frequency[i]:10.2f} Hz   "
          f"coverage = {bead_result.coverage[i] * 100:5.1f} %")
