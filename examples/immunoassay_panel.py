"""Blood-panel screening on the 4-cantilever array chip.

The paper motivates the work with "blood analysis for antibodies or
other proteins" in daily healthcare.  This example runs that scenario:
one chip, four cantilevers — anti-CRP and anti-PSA capture beams plus
two blocked reference beams — scanned by the analog multiplexer into
the shared Fig. 4 readout, with thermal drift injected and cancelled by
referencing.

Run:  python examples/immunoassay_panel.py
"""

import numpy as np

from repro import AssayProtocol
from repro.analysis import limit_of_detection
from repro.config import ChannelSpec, ChipSpec, build
from repro.units import nM

# 1. Describe the chip as one spec — two assays + two references, with a
#    realistic 50 uV/s common thermal drift that referencing must remove
#    — and build it.  Channels name their analyte by registry key;
#    analyte=None marks a blocked reference beam.
spec = ChipSpec(
    channels=(
        ChannelSpec(analyte="crp", label="anti-CRP"),
        ChannelSpec(analyte="psa", label="anti-PSA"),
        ChannelSpec(analyte=None, label="reference-1"),
        ChannelSpec(analyte=None, label="reference-2"),
    ),
    temperature_drift_v_per_s=50e-6,
)
chip = build(spec)
residuals = chip.calibrate()
print("chip calibrated; per-channel residual offsets [mV]:",
      [f"{r * 1e3:+.2f}" for r in residuals])

# 2. Scan the raw bridges through the mux (what the shared chain sees).
muxed, slots = chip.scan_bridges(dwell_time=5e-3, duration=0.08)
means = chip.mux.demultiplex_means(muxed, slots)
print("mux scan of raw bridge offsets [mV]:",
      {f"ch{c}": f"{np.mean(v) * 1e3:+.2f}" for c, v in sorted(means.items())})

# 3. Run a 20 nM sample injection across the whole array.
protocol = AssayProtocol.injection(nM(20), baseline=300, exposure=1800, wash=600)
result = chip.run_array_assay(protocol, sample_interval=10.0)

print(f"\n{'channel':>14s} {'raw step [mV]':>14s} {'referenced [mV]':>16s}")
for ch in (0, 1):
    raw = result.channel_outputs[ch]
    ref = result.referenced(ch)
    print(f"{result.channel_labels[ch]:>14s} "
          f"{(raw[-1] - raw[0]) * 1e3:>+14.2f} "
          f"{(ref[-1] - ref[0]) * 1e3:>+16.2f}")
for ch in (2, 3):
    raw = result.channel_outputs[ch]
    print(f"{result.channel_labels[ch]:>14s} "
          f"{(raw[-1] - raw[0]) * 1e3:>+14.2f} {'(reference)':>16s}")

# 4. Estimate the concentration limit of detection for the CRP channel.
sensor = chip.sensors[0]
per_coverage = (
    sensor.output_for_stress(sensor.surface.saturation_surface_stress)
    - sensor.output_for_stress(0.0)
)
from repro.analysis import concentration_responsivity

resp = concentration_responsivity(sensor.surface, per_coverage, 0.0)
lod = limit_of_detection(resp, sensor.output_noise_rms, "molecules/m^3")
from repro.constants import AVOGADRO

lod_molar = lod.lod / (AVOGADRO * 1e3)
print(f"\nCRP channel: 3-sigma concentration LOD ~ {lod_molar * 1e12:.1f} pM")
