"""Quickstart: detect an antibody with a CMOS cantilever biosensor.

Starts from the paper's reference device *spec* (one typed, serializable
description of the whole system), builds it through the full fabrication
model, runs a 10 nM immunoassay on the static readout chain (Fig. 4),
and prints the detection result.  Any field of the spec can be changed
with a dotted-path override — the same syntax the CLI's ``--set`` flag
uses (``repro assay --set cantilever.length_um=350``).

Run:  python examples/quickstart.py
"""

from repro import AssayProtocol
from repro.config import REFERENCE_STATIC_SENSOR, build, build_cantilever
from repro.units import nM, to_mN_per_m

# 1. The device as published, as data.  Tweak anything by dotted path,
#    e.g. REFERENCE_STATIC_SENSOR.with_overrides({"cantilever.length_um": 350}).
spec = REFERENCE_STATIC_SENSOR
print("device spec:")
print(f"  beam     : {spec.cantilever.length_um:.0f} x "
      f"{spec.cantilever.width_um:.0f} um, n-well etch stop at "
      f"{spec.process.nwell_depth_um:.0f} um")
print(f"  bridge   : {spec.bridge.kind}, {spec.bridge.bias_voltage_v:.1f} V bias")
print(f"  readout  : chopper at {spec.readout.chop_frequency_hz / 1e3:.0f} kHz, "
      f"gain {spec.readout.first_stage_gain:.0f} x {spec.readout.gain2:.0f} "
      f"x {spec.readout.gain3:.0f}")

# 2. Fabricate: 0.8 um CMOS + post-CMOS micromachining releases the beam
#    (thickness set by the n-well etch stop).
device = build_cantilever(spec.cantilever, spec.process)
print("fabricated cantilever:")
print(f"  geometry : {device.geometry.length * 1e6:.0f} x "
      f"{device.geometry.width * 1e6:.0f} x "
      f"{device.geometry.thickness * 1e6:.1f} um")
print(f"  KOH etch : {device.process.koh_time / 3600:.1f} h "
      f"(electrochemical etch stop at the n-well)")

# 3. Build the whole sensor from the spec — functionalized surface,
#    piezoresistive bridge, Fig. 4 chain — and auto-zero the offset DAC.
sensor = build(spec)
print(f"  probe sites: {sensor.surface.site_count:.3g} "
      f"(saturation mass {sensor.surface.saturation_mass * 1e15:.0f} pg)")
residual = sensor.calibrate_offset()
print("readout chain:")
print(f"  DC gain {sensor.dc_gain:.0f} V/V, output noise "
      f"{sensor.output_noise_rms * 1e3:.2f} mV rms, "
      f"residual offset {residual * 1e3:.2f} mV")

# 4. Run a 10 nM IgG injection assay (5 min baseline, 30 min sample,
#    10 min wash) and read the output step.
protocol = AssayProtocol.injection(nM(10))
result = sensor.run_assay(protocol, sample_interval=5.0)

step = result.output_step()
stress = result.surface_stress[-1]
print("assay result (10 nM IgG):")
print(f"  final coverage      : {result.coverage[-1] * 100:.1f} %")
print(f"  surface stress      : {to_mN_per_m(stress):+.2f} mN/m")
print(f"  output step         : {step * 1e3:+.1f} mV "
      f"({abs(step) / sensor.output_noise_rms:.0f}x the noise floor)")
verdict = "DETECTED" if abs(step) > 3 * sensor.output_noise_rms else "not detected"
print(f"  verdict             : {verdict}")
