"""Quickstart: detect an antibody with a CMOS cantilever biosensor.

Builds the paper's reference device through the full fabrication model,
functionalizes it for IgG capture, runs a 10 nM immunoassay on the
static readout chain (Fig. 4), and prints the detection result.

Run:  python examples/quickstart.py
"""

from repro import AssayProtocol, FunctionalizedSurface, StaticCantileverSensor, get_analyte
from repro.core.presets import reference_cantilever
from repro.units import nM, to_mN_per_m, to_nm

# 1. Fabricate: 0.8 um CMOS + post-CMOS micromachining releases a
#    500 x 100 x 5 um silicon beam (thickness set by the n-well etch stop).
device = reference_cantilever()
print("fabricated cantilever:")
print(f"  geometry : {device.geometry.length * 1e6:.0f} x "
      f"{device.geometry.width * 1e6:.0f} x "
      f"{device.geometry.thickness * 1e6:.1f} um")
print(f"  KOH etch : {device.process.koh_time / 3600:.1f} h "
      f"(electrochemical etch stop at the n-well)")

# 2. Functionalize the top surface with anti-IgG probes.
surface = FunctionalizedSurface(analyte=get_analyte("igg"), geometry=device.geometry)
print(f"  probe sites: {surface.site_count:.3g} "
      f"(saturation mass {surface.saturation_mass * 1e15:.0f} pg)")

# 3. Assemble the static sensor (piezoresistive bridge + Fig. 4 chain)
#    and auto-zero the offset DAC.
sensor = StaticCantileverSensor(surface)
residual = sensor.calibrate_offset()
print("readout chain:")
print(f"  DC gain {sensor.dc_gain:.0f} V/V, output noise "
      f"{sensor.output_noise_rms * 1e3:.2f} mV rms, "
      f"residual offset {residual * 1e3:.2f} mV")

# 4. Run a 10 nM IgG injection assay (5 min baseline, 30 min sample,
#    10 min wash) and read the output step.
protocol = AssayProtocol.injection(nM(10))
result = sensor.run_assay(protocol, sample_interval=5.0)

step = result.output_step()
stress = result.surface_stress[-1]
print("assay result (10 nM IgG):")
print(f"  final coverage      : {result.coverage[-1] * 100:.1f} %")
print(f"  surface stress      : {to_mN_per_m(stress):+.2f} mN/m")
print(f"  output step         : {step * 1e3:+.1f} mV "
      f"({abs(step) / sensor.output_noise_rms:.0f}x the noise floor)")
verdict = "DETECTED" if abs(step) > 3 * sensor.output_noise_rms else "not detected"
print(f"  verdict             : {verdict}")
