#!/usr/bin/env python3
"""Kill-anything-anytime chaos check (``make chaos-check``).

Runs every seeded chaos schedule in
:mod:`repro.service.chaos` — a real ``repro serve`` subprocess plus
``repro worker`` nodes per schedule, injured by fault plans shipped
through the environment (or a literal ``kill -9``):

* ``kill`` — SIGKILL a worker mid-chunk, resume with two fresh ones;
* ``crashpoint`` — die between cache-write and chunk completion;
* ``brownout`` — remote cache tier errors until the breaker trips;
* ``transport`` — refused / hung / 5xx HTTP absorbed by retries;
* ``lease_skew`` — collapsed lease TTL + a vanished heartbeat;
* ``store_contention`` — SQLITE_BUSY storms, CAS races, lost acks.

Each schedule must end with the job ``done``, its chunk table
exactly-once ``done``, the result table ``np.array_equal`` to the
clean serial sweep, and the per-worker stats proving zero recomputed
points.  Exit code 0 means the fabric survives all of it on this box.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def main() -> int:
    sys.path.insert(0, str(SRC))
    from repro.service.chaos import run_chaos_suite

    reports = run_chaos_suite(
        seed=2026, echo=lambda msg: print(f"chaos-check: {msg}")
    )
    failed = [r for r in reports if not r.passed]
    for report in reports:
        verdict = "PASS" if report.passed else f"FAIL  {report.error}"
        print(f"chaos-check: {report.schedule:<18s} "
              f"{report.duration_s:6.1f}s  {verdict}")
    if failed:
        print(f"chaos-check: {len(failed)}/{len(reports)} schedule(s) FAILED")
        return 1
    print(f"chaos-check: PASS ({len(reports)} schedules)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
