#!/usr/bin/env python3
"""Smoke-check the simulation service end to end (``make serve-check``).

Boots a real ``repro serve`` subprocess on an ephemeral port with a
throwaway store/cache, then over plain HTTP:

1. probes ``/healthz`` and requires ``ok``;
2. submits a tiny sweep and polls it to completion;
3. fetches the result table and sanity-checks its shape;
4. submits the same grid as a second tenant and requires the dedup
   link plus an all-cache-hits completion;
5. shuts the server down and requires a clean exit.

Exit code 0 means the serve/submit/results path works on this box.
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def main() -> int:
    sys.path.insert(0, str(SRC))
    from repro.service import JobSpec, ServiceClient
    from repro.config import REFERENCE_RESONANT_SENSOR

    workdir = Path(tempfile.mkdtemp(prefix="repro-serve-check-"))
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", "--port", "0",
            "--db", str(workdir / "jobs.sqlite"),
            "--cache-dir", str(workdir / "cache"),
        ],
        cwd=REPO,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        line = server.stdout.readline()
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if not match:
            print(f"serve-check: no listening line, got {line!r}")
            return 1
        url = match.group(1)
        print(f"serve-check: server up at {url}")
        client = ServiceClient(url, timeout=30)

        health = client.health()
        assert health["ok"], f"unhealthy at boot: {health}"
        print("serve-check: /healthz ok "
              f"(pump_alive={health['service']['pump_alive']})")

        # transport vitals: outbound counters in the engine snapshot,
        # inbound counters + inflight bounds in the service section
        counter_keys = ("requests", "retries", "errors",
                        "deadline_sheds", "backpressure_rejections")
        outbound = health["transport"]
        assert all(isinstance(outbound[k], int) for k in counter_keys), (
            f"malformed outbound transport section: {outbound}"
        )
        assert isinstance(outbound["breakers"], dict)
        inbound = health["service"]["transport"]
        assert all(isinstance(inbound[k], int) for k in counter_keys), (
            f"malformed service transport section: {inbound}"
        )
        assert inbound["max_inflight"] >= 1
        assert 0 <= inbound["inflight"] <= inbound["max_inflight"]
        from repro.service import health_snapshot

        local = health_snapshot()["transport"]
        assert local["requests"] >= 1, (
            f"local snapshot missed this client's traffic: {local}"
        )
        print("serve-check: transport vitals present "
              f"(client requests={local['requests']})")

        base = REFERENCE_RESONANT_SENSOR.to_dict()
        spec = JobSpec(
            base=base, path="cantilever.length_um",
            values=(150.0, 200.0, 250.0), duration=0.004, tenant="smoke-a",
        )
        record = client.submit(spec)
        job_id = record["job_id"]
        final = client.wait(job_id, timeout=120)
        phase = final["state"]["phase"]
        assert phase == "done", f"job {job_id} ended {phase}: {final}"
        assert final["progress"]["failed"] == 0
        print(f"serve-check: job {job_id} done "
              f"({final['progress']['completed']} points)")

        table = client.results(job_id)
        assert table["parameters"] == [150.0, 200.0, 250.0]
        assert table["columns"], "result table has no columns"
        for name, column in table["columns"].items():
            assert len(column) == 3, f"column {name} has {len(column)} rows"
        print(f"serve-check: results ok (columns: {sorted(table['columns'])})")

        twin = client.submit(JobSpec(
            base=base, path="cantilever.length_um",
            values=(150.0, 200.0, 250.0), duration=0.004, tenant="smoke-b",
        ))
        assert twin["dedup_of"] == job_id, (
            f"expected dedup against {job_id}, got {twin['dedup_of']!r}"
        )
        twin_final = client.wait(twin["job_id"], timeout=120)
        assert twin_final["state"]["phase"] == "done"
        assert (twin_final["progress"]["cache_hits"]
                == twin_final["progress"]["total"]), (
            f"dedup follower recomputed: {twin_final['progress']}"
        )
        print(f"serve-check: dedup ok (job {twin['job_id']} all cache hits)")

        # after real traffic the server-side admission counter must move
        after = client.health()["service"]["transport"]
        assert after["requests"] >= 4, (
            f"server admitted {after['requests']} requests, expected the "
            f"submit/status/results traffic to be counted"
        )
        print(f"serve-check: server admission counter ok "
              f"(requests={after['requests']}, "
              f"peak_inflight={after['peak_inflight']})")
    finally:
        server.terminate()
        try:
            server.wait(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()
        shutil.rmtree(workdir, ignore_errors=True)
    print("serve-check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
