#!/usr/bin/env python3
"""Crash-and-resume check for the sweep fabric (``make fabric-check``).

Drives the real distributed path — a SQLite job store on disk and
``repro worker`` subprocesses — through the failure the fabric exists
to survive:

1. submits a 16-point closed-loop fabric job and claims it;
2. starts one worker with ``--points-limit 5``: it hard-exits
   (``os._exit``) mid-chunk with the lease still held, leaving 5
   checksummed points on disk;
3. waits out the lease and resumes with **two** concurrent workers,
   which must split the remaining chunks between them and compute
   exactly the missing points — every pre-crash point must be served
   from the cache, proved per worker by ``cache_info()`` store counts
   in the ``--stats-json`` dumps;
4. assembles the final table in-process with a zero-miss cache and
   requires it ``np.array_equal`` to the plain serial sweep.

Exit code 0 means kill-and-resume works on this box with zero
recomputed points.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

POINTS = 16
CRASH_AFTER = 5
CHUNK_SIZE = 4
DURATION = 0.004
PATH = "cantilever.length_um"
LEASE_SECONDS = 3.0


def worker_argv(workdir: Path, job_id: str, **extra: object) -> list[str]:
    argv = [
        sys.executable, "-m", "repro.cli", "worker",
        "--db", str(workdir / "jobs.sqlite"),
        "--cache-dir", str(workdir / "cache"),
        "--job-id", job_id,
        "--lease-seconds", str(LEASE_SECONDS),
    ]
    for flag, value in extra.items():
        argv += [f"--{flag.replace('_', '-')}", str(value)]
    return argv


def main() -> int:
    sys.path.insert(0, str(SRC))
    import numpy as np

    from repro.analysis import LoopSweepTask, run_spec_sweep
    from repro.config import REFERENCE_RESONANT_SENSOR
    from repro.engine import TieredCache
    from repro.engine.fabric import (
        CRASH_EXIT_CODE,
        run_fabric_sweep,
        submit_fabric_job,
    )
    from repro.service import open_job_store

    workdir = Path(tempfile.mkdtemp(prefix="repro-fabric-check-"))
    env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"}
    values = [round(170.0 + 0.5 * i, 3) for i in range(POINTS)]
    try:
        store = open_job_store(workdir / "jobs.sqlite")
        record = submit_fabric_job(
            store, REFERENCE_RESONANT_SENSOR, PATH, values,
            duration=DURATION, chunk_size=CHUNK_SIZE,
        )
        store.claim(record.job_id)
        print(f"fabric-check: job {record.job_id} submitted "
              f"({POINTS} points, {POINTS // CHUNK_SIZE} chunks)")

        # phase 1: a worker dies mid-chunk, lease still held
        crash = subprocess.run(
            worker_argv(workdir, record.job_id, points_limit=CRASH_AFTER),
            cwd=REPO, env=env, capture_output=True, text=True, timeout=300,
        )
        assert crash.returncode == CRASH_EXIT_CODE, (
            f"crash worker exited {crash.returncode}, expected "
            f"{CRASH_EXIT_CODE}:\n{crash.stderr}"
        )
        survivors = sum(1 for _ in (workdir / "cache").rglob("*.pkl"))
        assert survivors == CRASH_AFTER, (
            f"{survivors} points survived the crash, expected {CRASH_AFTER}"
        )
        counts = store.chunk_counts(record.job_id)
        assert "leased" in counts, f"no orphaned lease after crash: {counts}"
        print(f"fabric-check: worker killed mid-chunk "
              f"({survivors} points survive, chunks {counts})")

        # phase 2: two fresh workers resume once the orphan lease expires
        time.sleep(LEASE_SECONDS + 0.5)
        procs = [
            subprocess.Popen(
                worker_argv(workdir, record.job_id, idle_exit=3,
                            stats_json=workdir / f"stats-{i}.json"),
                cwd=REPO, env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE, text=True,
            )
            for i in range(2)
        ]
        for proc in procs:
            _, stderr = proc.communicate(timeout=300)
            assert proc.returncode == 0, (
                f"resume worker exited {proc.returncode}:\n{stderr}"
            )
        stats = [
            json.loads((workdir / f"stats-{i}.json").read_text())
            for i in range(2)
        ]
        computed = sum(s["stats"]["points_computed"] for s in stats)
        assert computed == POINTS - survivors, (
            f"recompute detected: workers computed {computed}, the crash "
            f"left only {POINTS - survivors} points missing"
        )
        for i, s in enumerate(stats):
            # the checksummed cache is the only write path, so each
            # worker's store count must equal its computed count
            assert s["cache"]["stores"] == s["stats"]["points_computed"], (
                f"worker {i} cache stores != points computed: {s}"
            )
        assert store.chunk_counts(record.job_id) == {
            "done": POINTS // CHUNK_SIZE,
        }
        print(f"fabric-check: resumed with 2 workers, computed "
              f"{computed}/{POINTS} (zero recomputes), all chunks done")

        # assemble: a zero-miss coordinator cache, bit-exact vs serial
        cache = TieredCache(workdir / "cache")
        result = run_fabric_sweep(
            REFERENCE_RESONANT_SENSOR, PATH, values,
            db=workdir / "jobs.sqlite", cache_dir=workdir / "cache",
            duration=DURATION, workers=0, chunk_size=CHUNK_SIZE, cache=cache,
        )
        info = cache.cache_info()
        # the only tolerated miss/store pair is finalize probing for the
        # result blob and then writing it; every point read must hit
        assert info.misses <= 1 and info.stores == info.misses, (
            f"assembly recomputed points: {info}"
        )
        reference = run_spec_sweep(
            REFERENCE_RESONANT_SENSOR, PATH, values,
            LoopSweepTask(duration=DURATION), workers=0, backend="serial",
        )
        for name in reference.columns:
            assert np.array_equal(
                np.asarray(reference.columns[name]),
                np.asarray(result.columns[name]),
            ), f"column {name} deviates from the serial reference"
        print("fabric-check: table bit-identical to the serial sweep")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print("fabric-check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
