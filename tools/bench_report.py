"""Machine-readable FIG5 performance report (``make bench-json``).

Runs the closed-loop backend-throughput experiment plus the three FIG5
bench experiments and writes ``BENCH_fig5.json``: samples/sec per
backend, the fused/numba speedups over the reference path, and the
wall time of each bench — the numbers the README performance table and
the perf-trajectory tracking across PRs are built from.

Usage::

    PYTHONPATH=src python tools/bench_report.py [--output BENCH_fig5.json]
                                                [--duration 0.12] [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from repro.core.presets import reference_cantilever  # noqa: E402
from repro.engine import cc_available, kernel_info, numba_available  # noqa: E402

from bench_fig5_feedback_loop import (  # noqa: E402
    backend_speedup_experiment,
    startup_experiment,
    tracking_experiment,
    vga_adaptation_experiment,
)

BENCH_EXPERIMENTS = {
    "fig5_startup_and_lock": startup_experiment,
    "fig5_vga_adaptation": vga_adaptation_experiment,
    "fig5_binding_tracking": tracking_experiment,
}


def build_report(duration: float, repeats: int, quick: bool) -> dict:
    device = reference_cantilever()

    backends = backend_speedup_experiment(
        device, duration=duration, repeats=repeats
    )

    benches = {}
    if not quick:
        for name, experiment in BENCH_EXPERIMENTS.items():
            t0 = time.perf_counter()
            experiment(device)
            benches[name] = round(time.perf_counter() - t0, 4)

    info = kernel_info()
    by_backend = {r["backend"]: r for r in backends}
    return {
        "report": "FIG5 closed-loop performance",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numba_available": numba_available(),
        "cc_available": cc_available(),
        "loop_duration_s": duration,
        "backends": [
            {
                "backend": r["backend"],
                "engine": r["engine"],
                "samples": r["samples"],
                "wall_s": round(r["wall_s"], 5),
                "samples_per_sec": round(r["samples_per_sec"]),
                "kernel_samples_per_sec": round(r["kernel_samples_per_sec"]),
                "speedup_vs_reference": round(r["speedup"], 2),
            }
            for r in backends
        ],
        "fused_speedup": round(by_backend["fused"]["speedup"], 2),
        "bench_wall_s": benches,
        "kernel_runs": dict(info.runs),
        "kernel_fallbacks": info.fallbacks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO / "BENCH_fig5.json"),
        help="report path (default BENCH_fig5.json at the repo root)",
    )
    parser.add_argument(
        "--duration", type=float, default=0.12,
        help="simulated seconds per backend timing run (default 0.12)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per backend, best-of (default 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the full FIG5 bench wall-time section",
    )
    args = parser.parse_args(argv)

    report = build_report(args.duration, args.repeats, args.quick)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.output}")
    for r in report["backends"]:
        print(f"  {r['backend']:>10s} ({r['engine']:>7s}): "
              f"{r['samples_per_sec']:>12,} samp/s  "
              f"{r['speedup_vs_reference']:6.1f}x")
    for name, wall in report["bench_wall_s"].items():
        print(f"  {name:>26s}: {wall:.2f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
