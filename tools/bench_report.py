"""Machine-readable performance reports (``make bench-json`` / ``bench-batch``).

Default mode runs the closed-loop backend-throughput experiment plus the
three FIG5 bench experiments and writes ``BENCH_fig5.json``: samples/sec
per backend, the fused/numba speedups over the reference path, and the
wall time of each bench — the numbers the README performance table and
the perf-trajectory tracking across PRs are built from.

``--sweep`` instead writes ``BENCH_sweep.json``: the batched-kernel
sweep report — a 64-point resonance curve timed serial-fused vs batched
(points/sec, speedup, bit-identical flag), a closed-loop spec sweep
serial-fused vs ``kernel-batch``, the C-level thread-scaling curve
(annotated and truncated to one row on a 1-CPU box, where multi-thread
rows measure nothing), the columnar row family: a pre-lowered
16-instance closed-loop batch timed serial-fused vs the row engine vs
the columnar SoA engine, with the agreement flags (bit-identity for
row, the documented RTOL/ATOL_SCALE tolerance plus max ulp distance
for columnar), and the fabric scaling curve: the chunk-leasing worker
fabric at 1/2/4 leased workers (points/sec, per-tier cache counters,
bit-identity vs serial), truncated to one row on a 1-CPU box with the
same skip-note convention as the thread curve.

Usage::

    PYTHONPATH=src python tools/bench_report.py [--output BENCH_fig5.json]
                                                [--duration 0.12] [--quick]
    PYTHONPATH=src python tools/bench_report.py --sweep [--points 64]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from repro.core.presets import reference_cantilever  # noqa: E402
from repro.engine import cc_available, kernel_info, numba_available  # noqa: E402

from bench_fig5_feedback_loop import (  # noqa: E402
    backend_speedup_experiment,
    startup_experiment,
    tracking_experiment,
    vga_adaptation_experiment,
)

BENCH_EXPERIMENTS = {
    "fig5_startup_and_lock": startup_experiment,
    "fig5_vga_adaptation": vga_adaptation_experiment,
    "fig5_binding_tracking": tracking_experiment,
}


def build_report(duration: float, repeats: int, quick: bool) -> dict:
    device = reference_cantilever()

    backends = backend_speedup_experiment(
        device, duration=duration, repeats=repeats
    )

    benches = {}
    if not quick:
        for name, experiment in BENCH_EXPERIMENTS.items():
            t0 = time.perf_counter()
            experiment(device)
            benches[name] = round(time.perf_counter() - t0, 4)

    info = kernel_info()
    by_backend = {r["backend"]: r for r in backends}
    return {
        "report": "FIG5 closed-loop performance",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numba_available": numba_available(),
        "cc_available": cc_available(),
        "loop_duration_s": duration,
        "backends": [
            {
                "backend": r["backend"],
                "engine": r["engine"],
                "samples": r["samples"],
                "wall_s": round(r["wall_s"], 5),
                "samples_per_sec": round(r["samples_per_sec"]),
                "kernel_samples_per_sec": round(r["kernel_samples_per_sec"]),
                "speedup_vs_reference": round(r["speedup"], 2),
            }
            for r in backends
        ],
        "fused_speedup": round(by_backend["fused"]["speedup"], 2),
        "bench_wall_s": benches,
        "kernel_runs": dict(info.runs),
        "kernel_fallbacks": info.fallbacks,
    }


def _reference_wet_resonator():
    """The reference resonant sensor's in-liquid bring-up resonator."""
    from repro.config import REFERENCE_RESONANT_SENSOR, build

    return build(REFERENCE_RESONANT_SENSOR).build_resonator()


def _best_of(repeats: int, fn):
    """(best wall seconds, last result) of ``repeats`` timed calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _fabric_scaling_section(n_cpu: int) -> dict:
    """Points/sec of the chunk-leasing fabric at 1/2/4 leased workers.

    Every worker count runs against a fresh job db and cache directory —
    a warm cache would serve points instead of computing them and fake
    the scaling curve.  The baseline is the plain in-process serial
    sweep over the same grid; each fabric row carries the coordinator
    cache's per-tier counters (worker-process counters live in the
    worker and die with it) and the bit-identical flag, because a
    fabric that scales by drifting from the serial answer scales
    nothing.
    """
    import tempfile

    import numpy as np

    from repro.analysis import LoopSweepTask, run_spec_sweep
    from repro.config import REFERENCE_RESONANT_SENSOR
    from repro.engine import TieredCache
    from repro.engine.fabric import run_fabric_sweep

    points = 16
    duration = 0.004
    path = "cantilever.length_um"
    values = [float(v) for v in np.linspace(170.0, 260.0, points)]

    t0 = time.perf_counter()
    serial = run_spec_sweep(
        REFERENCE_RESONANT_SENSOR, path, values,
        LoopSweepTask(duration=duration), backend="serial", workers=1,
    )
    serial_wall = time.perf_counter() - t0

    if n_cpu == 1:
        worker_counts = [1]
        fabric_note = (
            "cpu_count == 1: multi-worker rows skipped (workers would "
            "time-slice one core; rows would only measure process spawn "
            "overhead, not scaling)"
        )
    else:
        worker_counts = [w for w in (1, 2, 4) if w <= n_cpu] or [1]
        fabric_note = None

    rows = []
    for workers in worker_counts:
        with tempfile.TemporaryDirectory() as td:
            base = Path(td)
            cache = TieredCache(base / "cache")
            t0 = time.perf_counter()
            result = run_fabric_sweep(
                REFERENCE_RESONANT_SENSOR, path, values,
                db=base / "jobs.sqlite", cache_dir=base / "cache",
                duration=duration, workers=workers,
                chunk_size=max(1, points // max(2 * workers, 1)),
                cache=cache,
            )
            wall = time.perf_counter() - t0
        identical = all(
            np.array_equal(np.asarray(serial.columns[k]),
                           np.asarray(result.columns[k]))
            for k in serial.columns
        )
        info = cache.cache_info()
        rows.append({
            "workers": workers,
            "wall_s": round(wall, 5),
            "points_per_sec": round(points / wall, 2),
            "speedup_vs_serial": round(serial_wall / wall, 2),
            "bit_identical": bool(identical),
            "coordinator_cache_tiers": [t.as_dict() for t in info.tiers],
        })

    return {
        "points": points,
        "loop_duration_s": duration,
        "serial_wall_s": round(serial_wall, 5),
        "serial_points_per_sec": round(points / serial_wall, 2),
        "note": fabric_note,
        "rows": rows,
        "overhead_note": (
            "fabric rows include worker-process spawn, sqlite chunk "
            "leasing, and checksummed cache writes — overhead the "
            "fabric pays to buy crash-resume and multi-node scale-out, "
            "not to win single-node microbenchmarks"
        ),
    }


def build_sweep_report(points: int, loop_points: int, repeats: int) -> dict:
    """The batched-kernel sweep report (``BENCH_sweep.json``)."""
    import os

    import numpy as np

    from repro.analysis import LoopSweepTask, run_spec_sweep, swept_sine_response
    from repro.config import REFERENCE_RESONANT_SENSOR
    from repro.engine import kernel_batch_threads, reset_kernel_info

    # -- 64-point resonance curve: serial fused vs one batched call ----------
    resonator = _reference_wet_resonator()
    f0 = resonator.natural_frequency
    frequencies = np.linspace(0.6 * f0, 1.4 * f0, points)
    force = 1e-9

    serial_wall, serial_amps = _best_of(
        repeats,
        lambda: swept_sine_response(
            resonator, frequencies, force, backend="reference"
        ),
    )
    reset_kernel_info()
    batch_wall, batch_amps = _best_of(
        repeats,
        lambda: swept_sine_response(resonator, frequencies, force, backend="auto"),
    )
    curve_info = kernel_info()
    identical = bool(np.array_equal(serial_amps, batch_amps))

    # -- thread-scaling curve (C-level pthreads across instances) ------------
    scaling = []
    n_cpu = os.cpu_count() or 1
    if n_cpu == 1:
        # a 1-CPU box cannot scale C-level threads: multi-thread rows
        # only measure pthread overhead and read as a meaningless curve
        thread_counts = [1]
        scaling_note = (
            "cpu_count == 1: multi-thread rows skipped (no cores to "
            "scale across; rows would only measure pthread overhead)"
        )
    else:
        thread_counts = sorted({1, 2, 4, min(8, n_cpu)})
        scaling_note = None
    for t in thread_counts:
        wall, _ = _best_of(
            repeats,
            lambda t=t: swept_sine_response(
                resonator, frequencies, force, backend="auto", threads=t
            ),
        )
        scaling.append({
            "threads": t,
            "wall_s": round(wall, 5),
            "points_per_sec": round(points / wall, 1),
        })

    # -- closed-loop spec sweep: serial fused vs kernel-batch ----------------
    task = LoopSweepTask(duration=0.01)
    lengths = [float(v) for v in np.linspace(170.0, 260.0, loop_points)]

    def sweep_with(backend):
        return run_spec_sweep(
            REFERENCE_RESONANT_SENSOR, "cantilever.length_um", lengths,
            task, backend=backend, workers=1 if backend == "serial" else None,
        )

    loop_serial_wall, loop_serial = _best_of(
        repeats, lambda: sweep_with("serial")
    )
    reset_kernel_info()
    loop_batch_wall, loop_batch = _best_of(
        repeats, lambda: sweep_with("kernel-batch")
    )
    loop_info = kernel_info()
    loop_identical = bool(all(
        loop_serial.columns[k] == loop_batch.columns[k]
        for k in loop_serial.columns
    ))
    # when auto picks the columnar engine the columns agree under its
    # tolerance contract, not bit-for-bit: report the worst relative
    # error across all metric columns alongside the exact flag
    loop_max_rel = 0.0
    for k in loop_serial.columns:
        a = np.asarray(loop_serial.columns[k], dtype=float)
        b = np.asarray(loop_batch.columns[k], dtype=float)
        scale = np.maximum(np.abs(a), 1e-300)
        loop_max_rel = max(loop_max_rel, float(np.max(np.abs(a - b) / scale)))

    # -- columnar row family: pre-lowered closed-loop kernels ----------------
    # The whole-pipeline sweep above shares its dominant cost (noise
    # synthesis + lowering, ~2/3 of the wall per instance) between both
    # paths, so it cannot show what the batch *kernel* buys.  This
    # family lowers the same closed-loop sweep once and times only the
    # kernel execution: serial fused vs the row engine vs the columnar
    # SoA engine.
    from repro.core import ResonantCantileverSensor
    from repro.engine import KernelBatch
    from repro.engine import kernel_columnar as columnar

    col_points = loop_points
    col_lengths = np.linspace(170.0, 260.0, col_points)
    # the golden-suite batch duration (tests/engine): long enough that
    # every instance clears the decline threshold, short enough that
    # the working set stays cache-friendly
    col_duration = 0.006

    def make_loops():
        out = []
        for length in col_lengths:
            spec = REFERENCE_RESONANT_SENSOR.with_overrides(
                {"cantilever.length_um": float(length)}
            )
            out.append(ResonantCantileverSensor.from_spec(spec).build_loop())
        return out

    preps = [
        loop._prepare_run(col_duration, None) for loop in make_loops()
    ]
    ns = [p.n for p in preps]
    noises = [p.bridge_noise for p in preps]

    def fresh_kernels():
        # a lowered kernel shares state with its loop's filters and a
        # run writes final state back, so every timed run prepares and
        # lowers freshly built loops (outside the timed region); noise
        # and coefficients are deterministic per spec, so ns/noises
        # from the first prep set stay valid
        loops = make_loops()
        fresh = [loop._prepare_run(col_duration, None) for loop in loops]
        return [
            loop._lower_kernel(p.signed_coefficient)
            for loop, p in zip(loops, fresh)
        ]

    def run_engine(engine):
        kernels = fresh_kernels()
        if engine == "serial":
            t0 = time.perf_counter()
            result = [
                k.run(n, noise, backend="fused")
                for k, n, noise in zip(kernels, ns, noises)
            ]
            return time.perf_counter() - t0, result
        batch = KernelBatch(kernels, ns, noises)
        t0 = time.perf_counter()
        result = batch.run(engine=engine)
        return time.perf_counter() - t0, result

    # kernel-only walls are a few ms and the columnar engine streams a
    # multi-MB working set, so co-tenant memory pressure can double a
    # single wall: interleave the engines round-robin (all three sample
    # the same machine states) and take best-of, with the rounds spread
    # across a multi-second window (contention comes in bursts — spaced
    # sampling gives every engine a shot at a quiet slice of the
    # machine, where back-to-back repeats would all land in one burst)
    col_repeats = max(repeats, 12)
    col_round_gap_s = 1.5
    run_engine("columnar")  # warm: engine load + specialized build
    walls = dict.fromkeys(("serial", "row", "columnar"), float("inf"))
    outputs = {}
    for rnd in range(col_repeats):
        if rnd:
            time.sleep(col_round_gap_s)
        for engine in walls:
            wall, result = run_engine(engine)
            if wall < walls[engine]:
                walls[engine], outputs[engine] = wall, result
    col_serial_wall, col_serial = walls["serial"], outputs["serial"]
    col_row_wall, col_row = walls["row"], outputs["row"]
    col_wall, col_records = walls["columnar"], outputs["columnar"]

    waveforms = ("displacement", "bridge_voltage", "limiter_input",
                 "limiter_output", "drive_voltage")
    row_identical = all(
        np.array_equal(getattr(s, w), getattr(r, w))
        for s, r in zip(col_serial, col_row) for w in waveforms
    )
    col_within = True
    col_max_ulp = 0
    for s, r in zip(col_serial, col_records):
        for w in waveforms:
            a = np.asarray(getattr(s, w))
            b = np.asarray(getattr(r, w))
            atol = columnar.ATOL_SCALE * float(np.abs(a).max(initial=0.0))
            if not np.allclose(b, a, rtol=columnar.RTOL, atol=atol):
                col_within = False
            col_max_ulp = max(col_max_ulp, columnar.max_ulp_distance(a, b))
    columnar_family = {
        "instances": col_points,
        "loop_duration_s": col_duration,
        "samples_per_instance": int(np.mean(ns)),
        "serial_fused_wall_s": round(col_serial_wall, 5),
        "row_batch_wall_s": round(col_row_wall, 5),
        "columnar_wall_s": round(col_wall, 5),
        "row_speedup": round(col_serial_wall / col_row_wall, 2),
        "columnar_speedup": round(col_serial_wall / col_wall, 2),
        "row_bit_identical": bool(row_identical),
        "columnar_engine": col_records[0].info.engine,
        "columnar_within_tolerance": bool(col_within),
        "columnar_max_ulp_distance": int(col_max_ulp),
        "rtol": columnar.RTOL,
        "atol_scale": columnar.ATOL_SCALE,
        "sampling": {
            "rounds": col_repeats,
            "round_gap_s": col_round_gap_s,
            "strategy": "best-of, engines interleaved, rounds spaced",
        },
    }

    # -- fabric scaling: leased worker processes over a shared store ---------
    fabric_scaling = _fabric_scaling_section(n_cpu)

    return {
        "report": "batched multi-instance kernel sweeps",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": n_cpu,
        "cc_available": cc_available(),
        "numba_available": numba_available(),
        "default_batch_threads": kernel_batch_threads(),
        "resonance_curve": {
            "points": points,
            "serial_fused_wall_s": round(serial_wall, 5),
            "batched_wall_s": round(batch_wall, 5),
            "serial_points_per_sec": round(points / serial_wall, 1),
            "batched_points_per_sec": round(points / batch_wall, 1),
            "speedup": round(serial_wall / batch_wall, 2),
            "waveforms_identical": identical,
            "batch_runs": curve_info.batch_runs,
            "batch_instances": curve_info.batch_instances,
            "fallbacks": curve_info.fallbacks,
        },
        "thread_scaling": {
            "cpu_count": n_cpu,
            "note": scaling_note,
            "rows": scaling,
        },
        "closed_loop_columnar_kernel": columnar_family,
        "closed_loop_sweep": {
            "points": loop_points,
            "loop_duration_s": task.duration,
            "serial_fused_wall_s": round(loop_serial_wall, 5),
            "kernel_batch_wall_s": round(loop_batch_wall, 5),
            "serial_points_per_sec": round(loop_points / loop_serial_wall, 2),
            "batched_points_per_sec": round(loop_points / loop_batch_wall, 2),
            "speedup": round(loop_serial_wall / loop_batch_wall, 2),
            "columns_identical": loop_identical,
            "columns_max_rel_error": loop_max_rel,
            "batch_columnar_runs": loop_info.batch_columnar_runs,
            "batch_runs": loop_info.batch_runs,
            "batch_declined": loop_info.batch_declined,
            "batch_instances": loop_info.batch_instances,
            "fallbacks": loop_info.fallbacks,
            "note": (
                "whole-pipeline wall: the batch path pre-lowers once "
                "per program shape and memoizes per-(seed, duration) "
                "noise blocks, so the shared setup cost is amortized "
                "across the grid and the batch now wins end to end — "
                "see closed_loop_columnar_kernel for the kernel-only "
                "comparison"
            ),
        },
        "fabric_scaling": fabric_scaling,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=None,
        help="report path (default BENCH_fig5.json, or BENCH_sweep.json "
             "with --sweep, at the repo root)",
    )
    parser.add_argument(
        "--duration", type=float, default=0.12,
        help="simulated seconds per backend timing run (default 0.12)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per backend, best-of (default 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the full FIG5 bench wall-time section",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="write the batched-sweep report (BENCH_sweep.json) instead",
    )
    parser.add_argument(
        "--points", type=int, default=64,
        help="resonance-curve points for --sweep (default 64)",
    )
    parser.add_argument(
        "--loop-points", type=int, default=16, dest="loop_points",
        help="closed-loop sweep points for --sweep (default 16)",
    )
    args = parser.parse_args(argv)

    if args.sweep:
        output = args.output or str(REPO / "BENCH_sweep.json")
        report = build_sweep_report(args.points, args.loop_points, args.repeats)
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")
        curve = report["resonance_curve"]
        print(f"  resonance curve ({curve['points']} pts): "
              f"{curve['serial_points_per_sec']:,.0f} -> "
              f"{curve['batched_points_per_sec']:,.0f} pts/s  "
              f"{curve['speedup']:.1f}x  "
              f"identical={curve['waveforms_identical']}")
        scaling = report["thread_scaling"]
        if scaling["note"]:
            print(f"  thread scaling: {scaling['note']}")
        for s in scaling["rows"]:
            print(f"  threads={s['threads']}: {s['points_per_sec']:,.0f} pts/s")
        ck = report["closed_loop_columnar_kernel"]
        print(f"  columnar kernel ({ck['instances']} instances): "
              f"row {ck['row_speedup']:.2f}x  "
              f"columnar {ck['columnar_speedup']:.2f}x "
              f"({ck['columnar_engine']}, "
              f"within_tolerance={ck['columnar_within_tolerance']}, "
              f"max_ulp={ck['columnar_max_ulp_distance']})")
        loop = report["closed_loop_sweep"]
        print(f"  closed-loop sweep ({loop['points']} pts): "
              f"{loop['serial_points_per_sec']:,.2f} -> "
              f"{loop['batched_points_per_sec']:,.2f} pts/s  "
              f"{loop['speedup']:.1f}x  "
              f"identical={loop['columns_identical']}")
        fabric = report["fabric_scaling"]
        if fabric["note"]:
            print(f"  fabric scaling: {fabric['note']}")
        print(f"  fabric serial baseline ({fabric['points']} pts): "
              f"{fabric['serial_points_per_sec']:,.2f} pts/s")
        for row in fabric["rows"]:
            print(f"  fabric workers={row['workers']}: "
                  f"{row['points_per_sec']:,.2f} pts/s  "
                  f"identical={row['bit_identical']}")
        return 0

    output = args.output or str(REPO / "BENCH_fig5.json")
    report = build_report(args.duration, args.repeats, args.quick)
    Path(output).write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {output}")
    for r in report["backends"]:
        print(f"  {r['backend']:>10s} ({r['engine']:>7s}): "
              f"{r['samples_per_sec']:>12,} samp/s  "
              f"{r['speedup_vs_reference']:6.1f}x")
    for name, wall in report["bench_wall_s"].items():
        print(f"  {name:>26s}: {wall:.2f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
