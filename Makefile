# Development targets for the repro library.

PYTHON ?= python3

.PHONY: install test bench examples docs all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		$(PYTHON) $$ex || exit 1; \
	done

docs:
	$(PYTHON) tools/gen_api_docs.py > docs/API.md
	@echo "docs/API.md regenerated"

all: test bench examples

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .benchmarks src/*.egg-info
