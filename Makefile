# Development targets for the repro library.

PYTHON ?= python3

.PHONY: install test lint serve-check fabric-check chaos-check bench bench-json bench-batch bench-smoke kernel-check vector-check spec-check fault-check examples docs all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Lint with ruff (config in pyproject.toml).  Environments without ruff
# fall back to a bytecode-compile syntax gate so the target always
# means *something* rather than silently passing.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests tools; \
	else \
		echo "lint: ruff not installed; falling back to compileall syntax gate"; \
		$(PYTHON) -m compileall -q src tests tools && echo "lint: syntax ok"; \
	fi

# Boot a real `repro serve` on an ephemeral port, submit a tiny sweep
# over HTTP, and assert completion + cross-tenant dedup.
serve-check:
	PYTHONPATH=src $(PYTHON) tools/serve_check.py

# Kill a fabric worker subprocess mid-grid (os._exit, lease still
# held), resume with two fresh workers against the real SQLite store,
# and assert zero recomputed points (per-tier cache counters) plus a
# bit-identical final table.
fabric-check:
	PYTHONPATH=src $(PYTHON) tools/fabric_check.py

# Kill-anything-anytime chaos harness: six seeded fault schedules, each
# against a real `repro serve` + `repro worker` subprocesses (SIGKILL
# mid-chunk, remote-tier brownout, transport faults, lease skew, store
# contention, crash-between-cache-and-complete).  Every schedule must
# end bit-identical to the clean serial sweep with zero recomputes.
chaos-check:
	PYTHONPATH=src $(PYTHON) tools/chaos_check.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Machine-readable FIG5 performance report: samples/sec per closed-loop
# backend + bench wall times, written to BENCH_fig5.json.
bench-json:
	PYTHONPATH=src $(PYTHON) tools/bench_report.py

# Batched-sweep report: 64-point resonance curve serial vs batched,
# closed-loop spec sweep serial-fused vs kernel-batch, and the C-level
# thread-scaling curve, written to BENCH_sweep.json.
bench-batch:
	PYTHONPATH=src $(PYTHON) tools/bench_report.py --sweep

# Fused-kernel golden suite: every backend must reproduce the reference
# closed-loop waveforms bit-for-bit across the reference specs, and
# non-lowerable chains must fall back cleanly.  Tier-1.
kernel-check:
	PYTHONPATH=src $(PYTHON) -m pytest tests/engine/test_kernel_equivalence.py tests/engine/test_kernel_lowering.py -q

# Columnar SoA engine golden suite, both legs: once with the compiler
# present (compiled engine + specialized megakernels) and once with CC
# pointed at a *nonexistent* binary under a fresh TMPDIR (no cached .so
# can hide the failure), which drives every batch through the NumPy
# twin.  Note CC=/bin/false would not do: the probe only checks that
# the compiler exists, so a present-but-broken CC exercises the build
# *failure* path, not the no-compiler path.
vector-check:
	PYTHONPATH=src $(PYTHON) -m pytest tests/engine/test_kernel_columnar.py -q
	@echo "-- no-compiler pass: CC=no-such-compiler, NumPy twin must carry the suite --"
	CC=no-such-compiler TMPDIR=$$(mktemp -d) PYTHONPATH=src $(PYTHON) -m pytest \
		tests/engine/test_kernel_columnar.py -q

# Fast parallel-path check: the three engine-ported benches on tiny
# grids, 2 workers, cache on (cold then warm — the warm runs must report
# all hits).  The same coverage runs inside tier-1 via tests/engine/.
bench-smoke:
	rm -rf .repro_cache_smoke
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ext_process_variation.py --smoke --workers 2 --cache-dir .repro_cache_smoke
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ext_resonance_curve.py --smoke --workers 2 --cache-dir .repro_cache_smoke
	PYTHONPATH=src $(PYTHON) benchmarks/bench_abl_placement.py --smoke --workers 2 --cache-dir .repro_cache_smoke
	@echo "-- warm re-run (expect cache hits, no stores) --"
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ext_process_variation.py --smoke --workers 2 --cache-dir .repro_cache_smoke
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ext_resonance_curve.py --smoke --workers 2 --cache-dir .repro_cache_smoke
	PYTHONPATH=src $(PYTHON) benchmarks/bench_abl_placement.py --smoke --workers 2 --cache-dir .repro_cache_smoke
	rm -rf .repro_cache_smoke

# Spec-layer check: JSON round-trip + hash stability of every reference
# spec, then a CLI `--set` override smoke.  The same coverage runs inside
# tier-1 via tests/config/.
spec-check:
	PYTHONPATH=src $(PYTHON) -m repro.config.check
	PYTHONPATH=src $(PYTHON) -m repro.cli info \
		--set cantilever.length_um=350 --set bridge.mismatch_sigma=0.001 \
		> /dev/null
	@echo "spec-check: CLI --set override smoke ok"

# Resilience suite: every injected fault either recovers bit-identically
# or comes back as a flagged degraded channel.  The second pass breaks
# the C compiler (CC=/bin/false) under a fresh TMPDIR (so no cached .so
# can hide the failure) and re-runs the golden equivalence suites: the
# fallback chain must still reproduce every waveform bit-for-bit.
fault-check:
	PYTHONPATH=src $(PYTHON) -m pytest tests/engine/test_resilience.py tests/engine/test_cache.py -q
	@echo "-- no-compiler pass: CC=/bin/false, fallback chain must stay bit-identical --"
	CC=/bin/false TMPDIR=$$(mktemp -d) PYTHONPATH=src $(PYTHON) -m pytest \
		tests/engine/test_kernel_equivalence.py tests/engine/test_kernel_batch.py -q \
		--deselect tests/engine/test_kernel_equivalence.py::TestFusedEngines::test_cc_engine_selected_when_compiler_present \
		--deselect tests/engine/test_kernel_equivalence.py::TestFusedEngines::test_codegen_engine_matches \
		--deselect tests/engine/test_kernel_batch.py::TestClosedLoopBatch::test_batch_runs_compiled_engine \
		--deselect tests/engine/test_kernel_batch.py::TestAutoResolution::test_resolution_order
	@echo "fault-check: all injected faults recovered or flagged"

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		$(PYTHON) $$ex || exit 1; \
	done

docs:
	PYTHONPATH=src $(PYTHON) tools/gen_api_docs.py > docs/API.md
	@echo "docs/API.md regenerated"

all: test vector-check bench-smoke fabric-check chaos-check bench examples

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .benchmarks src/*.egg-info
